"""Worker-model persistence across campaigns (Theorem 1 in practice).

The paper's Section 4.2: "the workers who have previously answered tasks
may come again in the future. Thus we need to maintain workers' previous
answering performance" — DOCS stores each worker's (quality, weight)
vectors in a database and merges new evidence with Theorem 1.

This example runs two campaigns by different "requesters" over the same
worker pool, persisting worker statistics in SQLite between them, and
shows that the second campaign starts with informed quality estimates
instead of cold defaults.

Run:  python examples/persistent_workers.py
"""

import tempfile

import numpy as np

from repro.core.truth_inference import TruthInference
from repro.core.types import group_answers_by_worker
from repro.crowd import WorkerPool, WorkerPoolConfig, collect_answers
from repro.datasets import make_dataset
from repro.platform.sqlite_storage import SqliteWorkerQualityStore


def run_requester_campaign(dataset, pool, store, seed):
    """One requester's campaign: collect answers, infer, persist."""
    answers = collect_answers(
        dataset.tasks, pool, answers_per_task=8, seed=seed
    )
    # Warm-start from whatever the store already knows.
    initial = {
        worker_id: store.blended_quality(worker_id)
        for worker_id in store.known_workers()
    }
    result = TruthInference().infer(
        dataset.tasks, answers, initial_qualities=initial
    )
    # Persist each worker's batch statistics with the Theorem 1 merge.
    for worker_id, quality in result.worker_qualities.items():
        store.merge(worker_id, quality, result.worker_weights[worker_id])
    return result.accuracy(dataset.tasks)


def main() -> None:
    with tempfile.NamedTemporaryFile(suffix=".db") as handle:
        from repro.core.dve import DomainVectorEstimator
        from repro.linking import EntityLinker

        first = make_dataset("item", seed=2, tasks_per_domain=30)
        second_preview = make_dataset("4d", seed=4, tasks_per_domain=30)
        # The crowd's expertise spans the domains both requesters use.
        active = tuple(
            {d.taxonomy_index for d in first.domains}
            | {d.taxonomy_index for d in second_preview.domains}
        )
        pool = WorkerPool.generate(
            WorkerPoolConfig(
                num_workers=30,
                num_domains=26,
                active_domains=active,
                expertise_domains=(2, 3),
                seed=1,
            )
        )
        store = SqliteWorkerQualityStore(26, handle.name)
        est = DomainVectorEstimator(
            EntityLinker(first.kb), first.taxonomy.size
        )
        for task in first.tasks:
            task.domain_vector = est.estimate(task.text)
        acc1 = run_requester_campaign(first, pool, store, seed=3)
        print(f"requester 1 (item) accuracy: {acc1:.1%}")
        print(f"workers persisted: {len(list(store.known_workers()))}")

        # Requester 2 arrives later with the 4D tasks; the same crowd
        # shows up, and their per-domain quality survives in the store.
        second = make_dataset("4d", seed=4, tasks_per_domain=30)
        est2 = DomainVectorEstimator(
            EntityLinker(second.kb), second.taxonomy.size
        )
        for task in second.tasks:
            task.domain_vector = est2.estimate(task.text)

        # Scarce answers are where a warm start pays: with only 3
        # answers per task, cold EM has little to learn worker quality
        # from, while the store already knows who the experts are.
        scarce_answers = collect_answers(
            second.tasks, pool, answers_per_task=3, seed=5
        )
        cold = TruthInference().infer(second.tasks, scarce_answers)
        warm_initial = {
            wid: store.blended_quality(wid)
            for wid in store.known_workers()
        }
        warm = TruthInference().infer(
            second.tasks,
            scarce_answers,
            initial_qualities=warm_initial,
        )
        print(
            f"requester 2 (4d, 3 answers/task) accuracy cold: "
            f"{cold.accuracy(second.tasks):.1%}  "
            f"warm from store: {warm.accuracy(second.tasks):.1%}"
        )

        # Inspect a worker's stored profile in a domain requester 1
        # actually exercised (Sports is shared by both datasets).
        sports = first.taxonomy.index_of("Sports")
        by_worker = group_answers_by_worker(scarce_answers)
        best_sports = max(
            by_worker, key=lambda w: pool.true_quality(w)[sports]
        )
        stored = store.blended_quality(best_sports)
        true = pool.true_quality(best_sports)
        print(
            f"worker {best_sports}: stored Sports quality "
            f"{stored[sports]:.2f} (true {true[sports]:.2f})"
        )


if __name__ == "__main__":
    main()
