"""Quickstart: run a full DOCS campaign on a generated dataset.

Builds the 4-Domain dataset, runs the complete pipeline — DVE over the
synthetic knowledge base, golden-task selection, online assignment with
a simulated crowd, incremental + periodic truth inference — and prints
the resulting accuracy against ground truth.

Run:  python examples/quickstart.py
"""

from repro.datasets import make_dataset
from repro.system import DocsConfig, run_campaign


def main() -> None:
    dataset = make_dataset("4d", seed=7)
    print(f"Dataset: {dataset.summary()}")

    result = run_campaign(
        dataset,
        config=DocsConfig(golden_count=20, rerun_interval=100),
        answers_per_task=10,
        hit_size=3,
        seed=7,
    )

    report = result.report
    print(f"Collected answers : {report.total_answers}")
    print(f"Golden pre-tests  : {report.golden_answers}")
    print(f"HITs issued       : {len(report.hit_log)}")
    print(f"Total spend       : ${report.hit_log.total_spend():.2f}")
    print(f"Worst assignment  : {report.max_assign_seconds * 1e3:.2f} ms")
    print(f"Accuracy          : {result.accuracy():.1%}")

    # Inspect a few inferred truths against ground truth.
    print("\nSample of inferred truths:")
    for task in dataset.tasks[:5]:
        verdict = "ok " if result.truths[task.task_id] == task.ground_truth else "MISS"
        print(
            f"  [{verdict}] ({task.text[:60]:60s}) "
            f"inferred={result.truths[task.task_id]} "
            f"truth={task.ground_truth}"
        )


if __name__ == "__main__":
    main()
