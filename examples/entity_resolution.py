"""Entity resolution with a custom domain set and knowledge base.

The paper's introduction motivates crowdsourcing with entity resolution:
"do these two records refer to the same real-world entity?". This example
shows the *library* usage pattern for a bespoke workload:

1. define your own taxonomy (product categories instead of the 26 Yahoo
   domains),
2. register the catalogue entities as KB concepts (with deliberately
   ambiguous names — the hard part of ER),
3. publish record-pair comparison tasks, and
4. run DVE + TI over a simulated specialist crowd.

Run:  python examples/entity_resolution.py
"""

import numpy as np

from repro.baselines import make_truth_method
from repro.baselines.base import GoldenContext
from repro.core.dve import DomainVectorEstimator
from repro.core.golden import select_golden_tasks
from repro.core.types import Task
from repro.crowd import WorkerPool, WorkerPoolConfig, collect_answers
from repro.kb import Concept, DomainTaxonomy, KnowledgeBase
from repro.linking import EntityLinker
from repro.utils.rng import make_rng


def build_catalogue_kb(taxonomy: DomainTaxonomy) -> KnowledgeBase:
    """A small product catalogue. 'Aurora' names a phone, a speaker and
    a laptop — same surface form, three categories: exactly the
    ambiguity entity resolution must untangle."""
    kb = KnowledgeBase(taxonomy)
    phones, audio, laptops = 0, 1, 2
    entries = [
        Concept(0, "Aurora X1", frozenset({phones}),
                ("smartphone", "screen", "battery", "camera"), 4.0),
        Concept(1, "Aurora", frozenset({phones}),
                ("smartphone", "charger", "pixel"), 3.0),
        Concept(2, "Aurora", frozenset({audio}),
                ("speaker", "stereo", "headphone"), 2.0),
        Concept(3, "Aurora", frozenset({laptops}),
                ("laptop", "keyboard", "compiler"), 1.5),
        Concept(4, "Borealis Pro", frozenset({laptops}),
                ("laptop", "keyboard", "screen"), 3.0),
        Concept(5, "Borealis", frozenset({audio}),
                ("speaker", "earbud", "stereo"), 2.5),
        Concept(6, "Cascade Mini", frozenset({phones}),
                ("smartphone", "battery", "screen"), 2.0),
        Concept(7, "Cascade", frozenset({audio}),
                ("speaker", "remote", "stereo"), 1.0),
    ]
    for concept in entries:
        kb.add_concept(concept)
    return kb


def make_er_tasks(kb: KnowledgeBase, rng) -> list:
    """Record-pair tasks: 'same product?' with two choices.

    Each task compares two listings from one category; the surrounding
    words ("stereo speaker", "battery") are the context DVE uses to
    resolve the ambiguous names.
    """
    templates = [
        ("Does the listing {a} with the stereo speaker refer to the "
         "same product as {b}?", 1),       # audio-flavoured context
        ("Is the smartphone record {a} the same device as the battery "
         "listing for {b}?", 0),           # phone-flavoured context
        ("Do the laptop spec sheet {a} and the keyboard bundle {b} "
         "describe one product?", 2),      # laptop-flavoured context
    ]
    tasks = []
    for task_id in range(90):
        template, domain = templates[task_id % len(templates)]
        names = sorted(
            {c.name for c in kb.concepts_in_domain(domain)}
        )
        a, b = rng.choice(names, size=2, replace=False)
        tasks.append(
            Task(
                task_id=task_id,
                text=template.format(a=a, b=b),
                num_choices=2,
                ground_truth=int(rng.integers(1, 3)),
                true_domain=domain,
            )
        )
    return tasks


def main() -> None:
    rng = make_rng(42)
    taxonomy = DomainTaxonomy(("Phones", "Audio", "Laptops"))
    kb = build_catalogue_kb(taxonomy)
    print(f"Catalogue KB: {kb}")
    print(f"Ambiguous names: {[a for a, _ in kb.ambiguous_aliases()]}")

    tasks = make_er_tasks(kb, rng)
    estimator = DomainVectorEstimator(EntityLinker(kb), taxonomy.size)
    detected = 0
    for task in tasks:
        task.domain_vector = estimator.estimate(task.text)
        detected += int(np.argmax(task.domain_vector)) == task.true_domain
    print(
        f"DVE category detection: {detected}/{len(tasks)} "
        f"({detected / len(tasks):.0%})"
    )

    pool = WorkerPool.generate(
        WorkerPoolConfig(num_workers=20, num_domains=3, seed=1)
    )
    answers = collect_answers(tasks, pool, answers_per_task=7, seed=2)

    golden_idx = select_golden_tasks(
        [t.domain_vector for t in tasks], 9
    )
    golden_ids = [tasks[i].task_id for i in golden_idx]
    golden = GoldenContext(
        golden_ids,
        {tid: tasks[tid].ground_truth for tid in golden_ids},
    )

    for name in ("MV", "DOCS"):
        method = make_truth_method(name)
        accuracy = method.accuracy(tasks, answers, golden)
        print(f"{name:5s} resolution accuracy: {accuracy:.1%}")


if __name__ == "__main__":
    main()
