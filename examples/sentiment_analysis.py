"""Sentiment analysis: multi-choice labelling with domain experts.

The paper's other motivating workload (Section 1): label the sentiment
of short review snippets. Reviews mention KB entities (films, cars,
restaurants), so a movie buff labels film reviews more reliably than car
reviews — the domain-aware worker model pays off even though every task
shares the same three choices (positive / neutral / negative).

This example runs the Figure 5-style comparison (MV / ZC / DS / DOCS) on
the generated review workload.

Run:  python examples/sentiment_analysis.py
"""

import numpy as np

from repro.baselines import make_truth_method
from repro.baselines.base import GoldenContext
from repro.core.dve import DomainVectorEstimator
from repro.core.golden import select_golden_tasks
from repro.core.types import Task
from repro.crowd import WorkerPool, WorkerPoolConfig, collect_answers
from repro.datasets.base import behavior_mixture, sample_concepts
from repro.kb import SyntheticKBConfig, build_synthetic_kb
from repro.kb.taxonomy import default_taxonomy
from repro.linking import EntityLinker
from repro.utils.rng import make_rng

REVIEW_FRAMES = (
    "The reviewer says {a} was a letdown compared to {b}. Overall tone?",
    "Glowing write-up of {a}: 'never seen anything like it'. Sentiment?",
    "Mixed notes on {a}: great start, weak finish. Sentiment?",
    "'{a} ruined my evening' — classify this review.",
    "Five stars for {a}, the reviewer plans to return. Sentiment?",
)

REVIEW_DOMAINS = (
    "Entertainment & Music",
    "Cars & Transportation",
    "Dining Out",
)

CHOICES = 3  # positive / neutral / negative


def main() -> None:
    rng = make_rng(11)
    taxonomy = default_taxonomy()
    kb = build_synthetic_kb(
        SyntheticKBConfig(
            concepts_per_domain=40, ambiguity_rate=0.3, seed=3
        ),
        taxonomy=taxonomy,
    )
    domain_indices = [taxonomy.index_of(d) for d in REVIEW_DOMAINS]

    tasks = []
    for task_id in range(240):
        domain = domain_indices[task_id % len(domain_indices)]
        frame = REVIEW_FRAMES[int(rng.integers(0, len(REVIEW_FRAMES)))]
        slots = frame.count("{a}") + frame.count("{b}")
        concepts = sample_concepts(kb, domain, slots, rng)
        mapping = dict(zip(("a", "b"), (c.name for c in concepts)))
        tasks.append(
            Task(
                task_id=task_id,
                text=frame.format(**mapping),
                num_choices=CHOICES,
                ground_truth=int(rng.integers(1, CHOICES + 1)),
                true_domain=domain,
                behavior_domains=behavior_mixture(
                    concepts, domain, taxonomy.size
                ),
            )
        )

    estimator = DomainVectorEstimator(EntityLinker(kb), taxonomy.size)
    for task in tasks:
        task.domain_vector = estimator.estimate(task.text)
    detected = np.mean(
        [
            int(np.argmax(t.domain_vector)) == t.true_domain
            for t in tasks
        ]
    )
    print(f"Review-domain detection: {detected:.0%}")

    pool = WorkerPool.generate(
        WorkerPoolConfig(
            num_workers=40,
            num_domains=taxonomy.size,
            active_domains=tuple(domain_indices),
            seed=4,
        )
    )
    answers = collect_answers(tasks, pool, answers_per_task=8, seed=5)

    golden_idx = select_golden_tasks(
        [t.domain_vector for t in tasks], 15
    )
    golden_ids = [tasks[i].task_id for i in golden_idx]
    golden = GoldenContext(
        golden_ids,
        {tid: tasks[tid].ground_truth for tid in golden_ids},
    )

    print("\nSentiment labelling accuracy by method:")
    for name in ("MV", "ZC", "DS", "DOCS"):
        method = make_truth_method(name)
        accuracy = method.accuracy(tasks, answers, golden)
        print(f"  {name:5s} {accuracy:.1%}")


if __name__ == "__main__":
    main()
