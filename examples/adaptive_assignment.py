"""Adaptive assignment: watch OTA steer tasks to the right workers.

Demonstrates the Online Task Assignment module in isolation:

- a sports expert and a film expert request HITs alternately;
- the benefit function (entropy reduction, Theorems 2-4) routes each
  worker to the tasks where their expertise resolves the most
  ambiguity;
- once a task's truth is confident, its benefit collapses and the
  budget flows to still-ambiguous tasks.

Run:  python examples/adaptive_assignment.py
"""

import numpy as np

from repro.core.assignment import TaskAssigner, task_benefit
from repro.core.incremental import IncrementalTruthInference
from repro.core.quality_store import WorkerQualityStore
from repro.core.types import Answer, Task
from repro.crowd.answer_model import sample_answer
from repro.crowd.worker_pool import WorkerProfile
from repro.utils.rng import make_rng

SPORTS, FILMS = 0, 1
DOMAIN_NAMES = {SPORTS: "sports", FILMS: "films"}


def make_tasks(rng, per_domain=8):
    tasks = []
    for i in range(2 * per_domain):
        domain = SPORTS if i % 2 == 0 else FILMS
        r = np.zeros(2)
        r[domain] = 1.0
        tasks.append(
            Task(
                task_id=i,
                text=f"{DOMAIN_NAMES[domain]} question #{i}",
                num_choices=2,
                domain_vector=r,
                ground_truth=int(rng.integers(1, 3)),
                true_domain=domain,
            )
        )
    return tasks


def main() -> None:
    rng = make_rng(5)
    tasks = make_tasks(rng)

    store = WorkerQualityStore(num_domains=2)
    inference = IncrementalTruthInference(store)
    for task in tasks:
        inference.register_task(task)

    # Two specialists with mirrored expertise, known to the store (as
    # if estimated from golden tasks).
    workers = {
        "sports_fan": WorkerProfile(
            "sports_fan", np.array([0.95, 0.55])
        ),
        "movie_goer": WorkerProfile(
            "movie_goer", np.array([0.55, 0.95])
        ),
    }
    for worker_id, profile in workers.items():
        store.set(worker_id, profile.quality, np.full(2, 10.0))

    assigner = TaskAssigner(hit_size=4)
    print("Round-by-round assignments (k = 4):\n")
    for round_number in range(1, 5):
        for worker_id, profile in workers.items():
            answered = {
                tid
                for tid, history in (
                    (t.task_id, inference.answered_workers(t.task_id))
                    for t in tasks
                )
                if any(w == worker_id for w, _ in history)
            }
            # Assign straight off the arena's persistent buffers (the
            # serving path); a task id -> state mapping works too.
            chosen = assigner.assign(
                inference.arena,
                store.quality_or_default(worker_id),
                answered_by_worker=answered,
            )
            domains = [
                DOMAIN_NAMES[tasks[tid].true_domain] for tid in chosen
            ]
            print(
                f"round {round_number}: {worker_id:10s} -> tasks "
                f"{chosen}  ({', '.join(domains)})"
            )
            for tid in chosen:
                choice = sample_answer(tasks[tid], profile, rng)
                inference.submit(Answer(worker_id, tid, choice))
        print()

    confident = [
        (tid, state.s.max())
        for tid, state in inference.states().items()
    ]
    resolved = sum(1 for _, top in confident if top > 0.9)
    correct = sum(
        1
        for tid, state in inference.states().items()
        if state.inferred_truth() == tasks[tid].ground_truth
    )
    print(f"Tasks with confident truths (>0.9): {resolved}/{len(tasks)}")
    print(f"Correct inferred truths: {correct}/{len(tasks)}")

    # Benefit collapse demo: answering a task repeatedly drains it.
    state = inference.state(0)
    quality = store.quality_or_default("sports_fan")
    print(
        f"\nBenefit of task 0 for sports_fan after "
        f"{len(inference.answered_workers(0))} answers: "
        f"{task_benefit(state, quality):.4f} "
        f"(fresh task ~{np.log(2):.3f} max)"
    )


if __name__ == "__main__":
    main()
