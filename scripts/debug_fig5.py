"""Dev helper: run the Figure 5 comparison on one dataset quickly."""

import sys
import time

import numpy as np

from repro.baselines import make_truth_method
from repro.baselines.base import GoldenContext
from repro.core.dve import DomainVectorEstimator
from repro.core.golden import select_golden_tasks
from repro.crowd import WorkerPool, WorkerPoolConfig, collect_answers
from repro.datasets import make_dataset
from repro.linking import EntityLinker


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "4d"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    ds = make_dataset(name, seed=seed)
    est = DomainVectorEstimator(EntityLinker(ds.kb), ds.taxonomy.size)
    for t in ds.tasks:
        t.domain_vector = est.estimate(t.text)
    active = tuple(d.taxonomy_index for d in ds.domains)
    pool = WorkerPool.generate(
        WorkerPoolConfig(
            num_workers=50,
            num_domains=ds.taxonomy.size,
            active_domains=active,
            seed=seed + 4,
        )
    )
    answers = collect_answers(ds.tasks, pool, answers_per_task=10, seed=seed + 5)
    gidx = select_golden_tasks([t.domain_vector for t in ds.tasks], 20)
    gids = [ds.tasks[i].task_id for i in gidx]
    golden = GoldenContext(
        gids, {tid: ds.task_by_id(tid).ground_truth for tid in gids}
    )
    for method_name in ["MV", "ZC", "DS", "IC", "FC", "DOCS"]:
        method = make_truth_method(method_name)
        t0 = time.time()
        acc = method.accuracy(ds.tasks, answers, golden)
        print(f"{method_name:5s} acc={acc:.3f} time={time.time()-t0:.2f}s")


if __name__ == "__main__":
    main()
