"""Documentation gate: link integrity + runnable README quickstarts.

Checks, over ``README.md`` and every ``docs/*.md``:

1. every relative markdown link (``[text](target)``) resolves to an
   existing file (fragments are stripped; http(s)/mailto/anchor links
   are skipped);
2. every ``python`` code fence in ``README.md`` runs cleanly as-is
   with ``PYTHONPATH=src`` — the quickstarts are executable
   documentation, not prose;
3. load-bearing sections exist where other docs and error messages
   point readers: the snapshot/compaction lifecycle in
   ``docs/architecture.md``, the shared ``worker_store`` contract in
   ``docs/api.md``, and the resume numbers in ``docs/performance.md``.

Exit code 0 when everything passes; 1 with a per-finding report
otherwise. Run from the repository root (CI does)::

    python scripts/check_docs.py
"""

from __future__ import annotations

import pathlib
import re
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
#: [text](target) — target captured without closing paren or whitespace.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
#: Schemes that are not filesystem links.
EXTERNAL = ("http://", "https://", "mailto:")

#: Sections other docs / error messages / the CLI point readers at;
#: their disappearance would orphan those references silently.
REQUIRED_SECTIONS: dict[str, tuple[str, ...]] = {
    "docs/architecture.md": (
        "## Durability",
        "### Compacted snapshots",
        "### Journal truncation",
        "### Index-carrying snapshots",
        "snapshot_answer_index",
        "## Analytics plane",
        "USING COVERING INDEX",
        "## Failure model & recovery",
        "### Graceful degradation",
        "FaultInjector",
        "## Serving plane",
        "AssignmentIndex",
        "## Parallel serving plane",
        "SharedStateArena",
        "ServingPool",
        "## Service plane",
        "RequestScheduler",
        "Retry-After",
        "/healthz",
        "## Engine plane",
        "CAP_HOT_STATE",
        "DocsEngine",
    ),
    "docs/api.md": (
        "worker_store",
        "## `repro.engines` — the engine registry",
        "make_engine",
        "register_engine",
        "UNINFORMED_DEFAULT_CHOICE",
        "bench_engines",
        "DocsConfig.engine",
        "snapshot",
        "resume",
        "serve_index",
        "durability_status",
        "check-db",
        "## `repro.analytics` — SQL-pushdown requester analytics",
        "repro analyze",
        "snapshot_carry_index",
        "restore_path",
        "analytics/{query}",
        "RetryPolicy",
        "SchemaVersionError",
        "## HTTP service",
        "repro serve",
        "### Endpoints",
        "### HTTP error mapping",
        "429",
    ),
    "docs/performance.md": (
        "## Resume",
        "snapshot",
        "### Index-carrying snapshots vs archive size",
        "index-carry",
        "## Analytics plane: SQL pushdown vs Python reference",
        "## Serve plane",
        "AssignmentIndex",
        "## Parallel serving plane",
        "ServingPool",
        "## Service plane: open-loop HTTP latency",
        "bench_service",
    ),
}


def check_required_sections(files: list[pathlib.Path]) -> list[str]:
    problems = []
    by_rel = {str(f.relative_to(REPO)): f for f in files}
    for rel, needles in REQUIRED_SECTIONS.items():
        doc = by_rel.get(rel)
        if doc is None:
            problems.append(f"{rel}: required documentation file missing")
            continue
        text = doc.read_text()
        for needle in needles:
            if needle not in text:
                problems.append(
                    f"{rel}: required section/term {needle!r} not found"
                )
    return problems


def doc_files() -> list[pathlib.Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_links(files: list[pathlib.Path]) -> list[str]:
    problems = []
    for doc in files:
        for target in LINK.findall(doc.read_text()):
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(REPO)}: broken link -> {target}"
                )
    return problems


def check_quickstarts(readme: pathlib.Path) -> list[str]:
    problems = []
    snippets = FENCE.findall(readme.read_text())
    if not snippets:
        return [f"{readme.relative_to(REPO)}: no python quickstart found"]
    for index, snippet in enumerate(snippets, start=1):
        with tempfile.TemporaryDirectory() as scratch:
            result = subprocess.run(
                [sys.executable, "-c", snippet],
                cwd=scratch,  # quickstarts must not depend on the cwd
                env={
                    "PYTHONPATH": str(REPO / "src"),
                    "PATH": "/usr/bin:/bin",
                },
                capture_output=True,
                text=True,
                timeout=600,
            )
        if result.returncode != 0:
            problems.append(
                f"README quickstart #{index} failed "
                f"(exit {result.returncode}):\n{result.stderr.strip()}"
            )
        else:
            out = result.stdout.strip()
            tail = out.splitlines()[-1] if out else "(no output)"
            print(f"quickstart #{index} ok: {tail}")
    return problems


def main() -> int:
    files = doc_files()
    print(f"checking {len(files)} documentation file(s)")
    problems = check_links(files)
    problems += check_required_sections(files)
    problems += check_quickstarts(REPO / "README.md")
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print(
            "docs ok: links resolve, required sections present, "
            "quickstarts run"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
