"""Legacy setup shim for environments without the ``wheel`` package."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of DOCS: Domain-Aware Crowdsourcing System "
        "(VLDB 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
)
