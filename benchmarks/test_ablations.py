"""Ablation benches for the design choices DESIGN.md calls out.

1. Assignment criterion: entropy benefit (DOCS) vs domain match only
   (D-Max) vs uncertainty only (AskIt!-style) — isolates the three
   factors Section 5 combines.
2. Domain source: explicit KB domain vectors vs latent-topic vectors for
   the *same* TI backend.
3. Incremental TI vs full iterative re-runs: quality/latency trade
   (Section 4.2's stated trade-off).
4. Golden-count selection: the paper's greedy vs naive proportional
   rounding.
"""

import time

import numpy as np
import pytest

from repro.baselines.base import GoldenContext
from repro.baselines.docs_truth import DocsTruth
from repro.core.golden import (
    enumerate_golden_counts,
    kl_objective,
    select_golden_counts,
)
from repro.core.incremental import IncrementalTruthInference
from repro.core.quality_store import WorkerQualityStore
from repro.core.truth_inference import TruthInference
from repro.experiments.fig8 import run_ota_comparison
from repro.topics.lda import LatentDirichletAllocation
from repro.utils.math import normalize


@pytest.fixture(scope="module")
def ota_4d():
    return run_ota_comparison("4d", seed=7)


def test_ablation_assignment_criteria(ota_4d, record_table, benchmark):
    """DOCS's benefit combines what D-Max (domain only) and AskIt!
    (uncertainty only) each capture alone."""
    rows = ["Ablation: assignment criterion (4D, accuracy %)"]
    for engine in ("AskIt!", "D-Max", "DOCS"):
        rows.append(f"  {engine:10s} {ota_4d.accuracy[engine]:6.1f}")
    record_table("ablation_assignment", "\n".join(rows))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert ota_4d.accuracy["DOCS"] >= ota_4d.accuracy["AskIt!"]
    assert ota_4d.accuracy["DOCS"] >= ota_4d.accuracy["D-Max"] - 1.0


def test_ablation_kb_vs_latent_domains(
    contexts, record_table, benchmark
):
    """Swap DOCS's KB domain vectors for LDA topic vectors and re-run
    the same TI: the KB's explicit domains must not lose."""
    context = contexts("4d")
    method = DocsTruth()
    kb_accuracy = 100 * method.accuracy(
        context.dataset.tasks, context.answers, context.golden
    )

    lda = LatentDirichletAllocation(num_topics=4, iterations=60, seed=5)
    theta = lda.fit([t.text for t in context.dataset.tasks]).document_topics
    originals = [t.domain_vector for t in context.dataset.tasks]
    try:
        for task, topic_vector in zip(context.dataset.tasks, theta):
            padded = np.full(context.dataset.taxonomy.size, 1e-9)
            padded[: topic_vector.size] = topic_vector
            task.domain_vector = normalize(padded)
        latent_accuracy = 100 * method.accuracy(
            context.dataset.tasks, context.answers, context.golden
        )
    finally:
        for task, original in zip(context.dataset.tasks, originals):
            task.domain_vector = original

    record_table(
        "ablation_kb_vs_latent",
        "Ablation: domain source for TI (4D, accuracy %)\n"
        f"  KB domain vectors    {kb_accuracy:6.1f}\n"
        f"  LDA topic vectors    {latent_accuracy:6.1f}",
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert kb_accuracy >= latent_accuracy - 2.0


def test_ablation_incremental_vs_full(contexts, record_table, benchmark):
    """Section 4.2's trade-off, three ways: incremental-only (instant
    updates, lowest quality), the deployed hybrid (incremental with a
    full re-run every z = 100 submissions), and full iterative TI.
    All three start from the same golden-task initialisation, as DOCS
    does."""
    context = contexts("item")
    tasks = context.dataset.tasks
    answers = context.answers
    gt = context.dataset.ground_truths()
    m = context.dataset.taxonomy.size

    from repro.experiments.fig4 import _golden_qualities

    golden_init = _golden_qualities(context, context.golden)

    def fresh_incremental():
        store = WorkerQualityStore(m)
        for worker_id, quality in golden_init.items():
            store.set(worker_id, quality, np.ones(m))
        engine = IncrementalTruthInference(store)
        for task in tasks:
            engine.register_task(task)
        return engine

    def score(truths):
        return 100 * np.mean(
            [truths[t.task_id] == gt[t.task_id] for t in tasks]
        )

    # Incremental only.
    engine = fresh_incremental()
    started = time.perf_counter()
    for answer in answers:
        engine.submit(answer)
    incremental_seconds = time.perf_counter() - started
    acc_inc = score(
        {
            tid: state.inferred_truth()
            for tid, state in engine.states().items()
        }
    )

    # Hybrid: incremental + full re-run every z = 100 submissions.
    engine = fresh_incremental()
    ti = TruthInference()
    seen = []
    for answer in answers:
        engine.submit(answer)
        seen.append(answer)
        if len(seen) % 100 == 0:
            result = ti.infer(
                tasks, seen, initial_qualities=golden_init
            )
            engine.resync_from_full_inference(
                result.probabilistic_truths,
                result.truth_matrices,
                result.worker_qualities,
                result.worker_weights,
            )
    acc_hybrid = score(
        {
            tid: state.inferred_truth()
            for tid, state in engine.states().items()
        }
    )

    # Full iterative TI.
    started = time.perf_counter()
    full = ti.infer(tasks, answers, initial_qualities=golden_init)
    full_seconds = time.perf_counter() - started
    acc_full = score(full.truths())

    per_answer_us = 1e6 * incremental_seconds / len(answers)
    record_table(
        "ablation_incremental",
        "Ablation: incremental vs hybrid vs full TI (Item)\n"
        f"  incremental only  acc {acc_inc:5.1f}%  "
        f"({per_answer_us:7.1f} us/answer)\n"
        f"  hybrid (z = 100)  acc {acc_hybrid:5.1f}%\n"
        f"  full iterative    acc {acc_full:5.1f}%  "
        f"({full_seconds:7.3f} s/run)",
        volatile=(r"\(\s*[\d.]+ (?:us/answer|s/run)\)",),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # The deployed hybrid recovers (nearly) full quality; pure
    # incremental trades quality for constant-time updates (the paper's
    # own caveat: "may not achieve as high quality as the iterative
    # one").
    assert acc_hybrid >= acc_full - 6.0
    assert acc_full >= acc_inc - 2.0


def test_ablation_golden_rounding(record_table, benchmark):
    """The paper's greedy vs naive largest-remainder rounding vs the
    enumerated optimum, across random instances."""
    rng = np.random.default_rng(13)
    greedy_gaps, naive_gaps = [], []
    for _ in range(30):
        m = int(rng.integers(3, 7))
        n_prime = int(rng.integers(5, 13))
        tau = rng.dirichlet(np.ones(m))
        _, optimal = enumerate_golden_counts(tau, n_prime)

        greedy = select_golden_counts(tau, n_prime)
        greedy_gaps.append(kl_objective(greedy, tau, n_prime) - optimal)

        floors = np.floor(tau * n_prime).astype(int)
        remainder = n_prime - floors.sum()
        order = np.argsort(-(tau * n_prime - floors))
        naive = floors.copy()
        naive[order[:remainder]] += 1
        naive_gaps.append(kl_objective(naive, tau, n_prime) - optimal)

    record_table(
        "ablation_golden_rounding",
        "Ablation: golden-count rounding (mean KL gap to optimum)\n"
        f"  paper greedy       {np.mean(greedy_gaps):8.5f}\n"
        f"  largest remainder  {np.mean(naive_gaps):8.5f}",
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert np.mean(greedy_gaps) <= np.mean(naive_gaps) + 1e-9
