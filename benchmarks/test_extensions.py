"""Benches for the paper's future-work extensions implemented here.

- **Stable point / budget saving** (Section 6.3: "We will study the
  estimation of stable point in future"): confidence-based task
  retirement and the budget it releases at near-equal accuracy.
- **Correlated concepts** (Section 3: "We will consider the issues of
  correlation among concepts in the future"): coherence-aware linking
  vs the independent baseline on domain detection.
- **Multi-domain metrics** (Section 6.2: "it might be interesting to
  develop metrics on evaluating how a method can compute a task's
  multiple domains correctly"): soft-detection quality against the
  behavioural mixtures.
"""

import numpy as np
import pytest

from repro.core.dve import DomainVectorEstimator
from repro.core.stopping import ConfidenceStoppingRule, savings_report
from repro.core.truth_inference import TruthInference
from repro.experiments.multidomain import (
    evaluate_multidomain,
    format_multidomain,
)
from repro.linking.coherence import CoherentEntityLinker


def test_extension_budget_saving(contexts, record_table, benchmark):
    """The stable-point trade-off curve: stricter confidence thresholds
    save less budget but concede less accuracy."""
    thresholds = (0.9, 0.95, 0.99)
    lines = [
        "Extension: confidence-based stopping (min 3 answers) — "
        "budget/accuracy trade-off"
    ]
    lines.append(
        f"{'dataset':>8s}{'thresh':>8s}{'saved %':>9s}"
        f"{'acc full':>10s}{'acc stop':>10s}"
    )
    curves = {}
    for name in ("item", "4d"):
        context = contexts(name)
        curve = []
        for threshold in thresholds:
            report = savings_report(
                context.dataset.tasks,
                context.answers,
                ConfidenceStoppingRule(
                    threshold=threshold, min_answers=3
                ),
                TruthInference(),
            )
            curve.append(report)
            lines.append(
                f"{name:>8s}{threshold:8.2f}"
                f"{100 * report.saved_fraction:9.1f}"
                f"{100 * report.accuracy_full:10.1f}"
                f"{100 * report.accuracy_stopped:10.1f}"
            )
        curves[name] = curve
    record_table("extension_budget_saving", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for curve in curves.values():
        savings = [r.saved_fraction for r in curve]
        accuracies = [r.accuracy_stopped for r in curve]
        # Stricter threshold -> less saving, more accuracy (monotone
        # trade-off), and every point keeps a real saving.
        assert savings == sorted(savings, reverse=True)
        assert accuracies == sorted(accuracies)
        assert savings[-1] > 0.02
        # The strictest point concedes little accuracy.
        assert curve[-1].accuracy_stopped >= (
            curve[-1].accuracy_full - 0.06
        )


def test_extension_coherent_linking(contexts, record_table, benchmark):
    """Coherence-aware linking vs independent linking on detection."""
    rows = ["Extension: coherent vs independent linking (detection %)"]
    rows.append(f"{'dataset':>8s}{'indep':>8s}{'coherent':>10s}")
    gains = {}
    for name in ("4d", "qa"):
        context = contexts(name)
        dataset = context.dataset
        independent = DomainVectorEstimator(
            context.linker, dataset.taxonomy.size
        )
        coherent = DomainVectorEstimator(
            CoherentEntityLinker(context.linker, coherence_weight=1.5),
            dataset.taxonomy.size,
        )

        def accuracy(estimator):
            hits = 0
            for task in dataset.tasks:
                vector = estimator.estimate(task.text)
                hits += int(np.argmax(vector)) == task.true_domain
            return 100 * hits / dataset.num_tasks

        acc_ind = accuracy(independent)
        acc_coh = accuracy(coherent)
        gains[name] = acc_coh - acc_ind
        rows.append(f"{name:>8s}{acc_ind:8.1f}{acc_coh:10.1f}")
    record_table("extension_coherent_linking", "\n".join(rows))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Coherence must not hurt detection anywhere.
    assert all(gain >= -1.0 for gain in gains.values())


def test_extension_multidomain_metrics(contexts, record_table, benchmark):
    results = []
    for name in ("item", "4d", "qa", "sfv"):
        context = contexts(name)
        results.append(evaluate_multidomain(context.dataset))
    record_table(
        "extension_multidomain", format_multidomain(results)
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for result in results:
        assert result.mean_js < 0.35     # soft detection is close
        assert result.top2_recall > 0.8  # real domains are found
