"""Figure 7: golden-task selection — optimality and scalability."""

import numpy as np
import pytest

from repro.core.golden import select_golden_counts
from repro.experiments.fig7 import (
    format_golden_comparison,
    format_golden_scalability,
    run_golden_comparison,
    run_golden_scalability,
)


@pytest.fixture(scope="module")
def comparison():
    return run_golden_comparison(
        n_primes=tuple(range(1, 21)), num_domains=10, seed=7
    )


def test_fig7a_report(comparison, record_table, benchmark):
    # greedy(s)/enum(s) are wall-clock noise; gamma (last column) is
    # the deterministic quantity the file should diff on. The mask
    # swallows the columns' padding too: enum times span orders of
    # magnitude, so the float width (and with it the padding) varies
    # run to run.
    record_table(
        "fig7a_golden_comparison",
        format_golden_comparison(comparison),
        volatile=(r"(?m)(?<=\d)\s+\d+\.\d+\s+\d+\.\d+(?=\s+\d+\.\d+$)",),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_greedy_is_near_optimal(comparison):
    """Paper: average gamma within 0.1%."""
    mean_gamma = float(np.mean([p.gamma for p in comparison]))
    assert mean_gamma < 0.01


def test_enumeration_grows_fast(comparison):
    """Enumeration time grows steeply with n'; greedy stays flat."""
    small = next(p for p in comparison if p.n_prime == 5)
    large = next(p for p in comparison if p.n_prime == 20)
    assert large.enumeration_seconds > 20 * max(
        small.enumeration_seconds, 1e-5
    )
    assert large.greedy_seconds < 0.05


def test_fig7b_scalability(record_table, benchmark):
    points = run_golden_scalability(
        n_primes=(1000, 4000, 7000, 10000),
        domain_counts=(10, 20, 50),
        seed=8,
    )
    record_table(
        "fig7b_golden_scalability",
        format_golden_scalability(points),
        volatile=(r"(?m)\s+\d+\.\d+\s*$",),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Time is flat in n' for fixed m (paper: independent of n').
    for m in (10, 20, 50):
        series = [p.seconds for p in points if p.num_domains == m]
        assert max(series) < 0.4


def test_bench_greedy_selection(benchmark):
    """Micro-kernel: the greedy Eq. 11 solver at m = 26."""
    rng = np.random.default_rng(9)
    tau = rng.dirichlet(np.ones(26))
    counts = benchmark(select_golden_counts, tau, 20)
    assert counts.sum() == 20
