"""Figure 3: domain-detection accuracy — IC(LDA) / FC(TwitterLDA) / DOCS.

The reproduced pattern: near-parity on Item (rigid templates suit topic
models), DOCS >= 90% with a clear lead on 4D/QA/SFV where surface text
misleads.
"""

import pytest

from repro.experiments.fig3 import (
    format_domain_detection,
    run_domain_detection,
)

DATASETS = ("item", "4d", "qa", "sfv")
TOPIC_ITERATIONS = 60


@pytest.fixture(scope="module")
def fig3_results(contexts):
    return {
        name: run_domain_detection(
            contexts(name), topic_iterations=TOPIC_ITERATIONS
        )
        for name in DATASETS
    }


def test_fig3_report(fig3_results, record_table, benchmark):
    rendered = "\n\n".join(
        format_domain_detection(result)
        for result in fig3_results.values()
    )
    overall = ["Figure 3(e): overall domain detection accuracy (%)"]
    overall.append(f"{'dataset':>8s}{'IC(LDA)':>12s}{'FC(TLDA)':>12s}{'DOCS':>10s}")
    for name, result in fig3_results.items():
        overall.append(
            f"{name:>8s}{result.overall['IC(LDA)']:12.1f}"
            f"{result.overall['FC(TwitterLDA)']:12.1f}"
            f"{result.overall['DOCS']:10.1f}"
        )
    record_table(
        "fig3_domain_detection", rendered + "\n\n" + "\n".join(overall)
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_docs_high_everywhere(fig3_results):
    """DOCS detects >= 90% on every dataset (paper: >= 95% on 4D,
    ~100% on Item)."""
    for result in fig3_results.values():
        assert result.overall["DOCS"] >= 90.0


def test_docs_leads_on_heterogeneous_datasets(fig3_results):
    """On 4D/QA/SFV the KB beats both topic models (Figure 3(b-d))."""
    for name in ("4d", "qa", "sfv"):
        result = fig3_results[name]
        assert result.overall["DOCS"] > result.overall["IC(LDA)"]
        assert result.overall["DOCS"] > result.overall["FC(TwitterLDA)"]


def test_topic_models_competitive_on_item(fig3_results):
    """Item is the control: rigid templates keep the topic models in
    the game (paper: ~100% for all three)."""
    result = fig3_results["item"]
    best_topic = max(
        result.overall["IC(LDA)"], result.overall["FC(TwitterLDA)"]
    )
    assert best_topic > 70.0


def test_docs_gain_is_large_on_qa_or_sfv(fig3_results):
    """The paper reports >20% overall improvement on QA/SFV."""
    gains = []
    for name in ("qa", "sfv"):
        result = fig3_results[name]
        best_topic = max(
            result.overall["IC(LDA)"],
            result.overall["FC(TwitterLDA)"],
        )
        gains.append(result.overall["DOCS"] - best_topic)
    assert max(gains) > 15.0


def test_bench_dve_detection(contexts, benchmark):
    """Micro-kernel: DOCS's full detection pass over Item."""
    context = contexts("item")

    def detect_all():
        return [
            context.estimator.estimate(task.text)
            for task in context.dataset.tasks
        ]

    vectors = benchmark.pedantic(detect_all, rounds=1, iterations=1)
    assert len(vectors) == context.dataset.num_tasks
