"""Serving-path and ingest-plane benchmarks against their snapshots.

**Serving path** (the arena PR's ≥5x criterion): drives an identical
simulated campaign — workers arrive round-robin, each gets a
benefit-ranked HIT, submits answers, and the full iterative TI re-runs
every ``z`` submissions — through two implementations:

- **arena**: the structure-of-arrays serving path
  (:class:`repro.core.incremental.IncrementalTruthInference` over a
  :class:`repro.core.arena.StateArena`, arena-direct assignment,
  :meth:`TruthInference.infer_from_log` re-runs);
- **legacy**: the pre-arena per-object path, snapshotted verbatim in
  :mod:`repro.core.reference` — per-object incremental updates,
  candidate-list assignment that stacks task state per arrival and
  evaluates the old 4-D benefit tensor, and full-TI re-runs that
  re-index the whole answer list per call.

Both paths make identical HIT selections and draw identical simulated
answers, so their inferred truths must match exactly — checked on every
run. Reported per path: mean/worst assign latency, submit throughput,
mean full-rerun time, and end-to-end wall time.

**Ingest plane** (the staged-pipeline PR's ≥3x criterion at n = 10K):
runs ``prepare`` — entity linking + DVE + task store + arena
registration — over a synthetic KB-linked task workload through:

- **pipeline**: :class:`repro.system.ingest.IngestPipeline` (batch
  linking over a shared candidate cache, vectorised DVE, bulk store,
  one arena block write);
- **legacy**: the pre-pipeline per-task loop — uncached sequential
  ``link``, the Algorithm 1 dictionary DP
  (:func:`repro.core.reference.reference_domain_vector`), per-task
  inserts and arena appends — exactly what ``DocsSystem.prepare`` did
  before the pipeline.

Both must produce numerically identical domain vectors — checked on
every run.

**Durability plane** (the sqlite-journal PR's <10% criterion at
n = 10K): runs the identical arena campaign twice, once writing every
answer to the in-memory :class:`repro.platform.storage.AnswerTable`
(what ``DocsSystem(storage="memory")`` does on submit) and once through
the write-behind :class:`repro.platform.journal.AnswerJournal` into a
real SQLite file (``DocsSystem(storage="sqlite")``), final checkpoint
included. Both runs must infer identical truths, and the journal must
pass its integrity check afterwards.

**Resume plane** (the snapshot PR's ≥5x criterion at n = 10K): runs a
journaled ``DocsSystem`` campaign to completion (final snapshot written
on close), then rebuilds it twice with ``DocsSystem.resume``: once from
the compacted snapshot (load + empty tail), and once by full journal
replay (the snapshot rows are deleted first). Both rebuilds must hold
identical hot state — checked on every run.

**Serve plane** (the AssignmentIndex PR's criteria: ≥5x per-arrival
assign at n = 100K with a warm index, never slower at n = 10K): builds
a campaign-warm arena at n, then measures per-arrival assign latency
for a stable-quality worker while a trickle of answers from other
workers dirties a handful of rows between arrivals — the steady-state
read-heavy serving shape. Each arrival runs through both the
brute-force path (full-pool `arena_benefits` + mask) and the warm
:class:`repro.core.serving.AssignmentIndex` (cached benefit column
repaired on only the dirty rows, lazy top-k frontier); the picks must
be identical on every arrival.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py --smoke   # CI gate
    PYTHONPATH=src python benchmarks/bench_perf.py           # full, writes
                                                             # BENCH_perf.json
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import pathlib
import platform
import sys
import tempfile
import time
from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.arena import AnswerLog
from repro.core.assignment import TaskAssigner
from repro.core.incremental import IncrementalTruthInference
from repro.core.quality_store import WorkerQualityStore
from repro.core.reference import (
    ReferenceIncrementalTruthInference,
    reference_assign,
    reference_domain_vector,
    reference_infer,
)
from repro.core.serving import AssignmentIndex
from repro.core.shared_arena import SharedStateArena
from repro.core.truth_inference import TruthInference
from repro.core.types import Answer, Task
from repro.kb.concept import Concept
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.taxonomy import DomainTaxonomy
from repro.linking import EntityLinker
from repro.platform.sqlite_storage import SqliteSystemDatabase
from repro.platform.storage import AnswerTable, SystemDatabase
from repro.system.ingest import IngestPipeline
from repro.system.parallel import ServingPool
from repro.utils.math import uniform_distribution
from repro.utils.rng import make_rng

NUM_DOMAINS = 20
NUM_CHOICES = 2
NUM_WORKERS = 60
#: Ingest workload shape: how many distinct entity surfaces the tasks
#: mention and how many senses each surface carries (ambiguity drives
#: candidate-set sizes, like the paper's top-c cutoffs).
NUM_SURFACES = 300
VOCABULARY = 600
DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_perf.json"
)


def _make_tasks(n: int, rng) -> List[Task]:
    return [
        Task(
            task_id=i,
            text=f"bench task {i}",
            num_choices=NUM_CHOICES,
            domain_vector=rng.dirichlet(np.ones(NUM_DOMAINS)),
            ground_truth=1,
        )
        for i in range(n)
    ]


def _seed_store(rng) -> Dict[str, np.ndarray]:
    return {
        f"w{j}": rng.uniform(0.4, 0.95, size=NUM_DOMAINS)
        for j in range(NUM_WORKERS)
    }


def _make_ingest_kb(rng) -> KnowledgeBase:
    """A synthetic KB with ambiguous aliases and real context signal."""
    taxonomy = DomainTaxonomy(
        tuple(f"domain{k}" for k in range(NUM_DOMAINS))
    )
    kb = KnowledgeBase(taxonomy)
    concept_id = 0
    for s in range(NUM_SURFACES):
        senses = int(rng.integers(2, 7))
        for _ in range(senses):
            domains = frozenset(
                int(k)
                for k in rng.choice(
                    NUM_DOMAINS,
                    size=int(rng.integers(1, 4)),
                    replace=False,
                )
            )
            description = tuple(
                f"word{w}"
                for w in rng.choice(VOCABULARY, size=10, replace=False)
            )
            kb.add_concept(
                Concept(
                    concept_id=concept_id,
                    name=f"entity{s}",
                    domain_indices=domains,
                    description=description,
                    commonness=float(rng.uniform(0.1, 1.0)),
                )
            )
            concept_id += 1
    return kb


def _make_ingest_tasks(n: int, rng) -> List[Task]:
    """Tasks whose texts mention 2-4 KB entities plus context words."""
    tasks = []
    for i in range(n):
        mentions = rng.choice(
            NUM_SURFACES, size=int(rng.integers(2, 5)), replace=False
        )
        context = rng.choice(VOCABULARY, size=6, replace=False)
        words = [f"entity{m}" for m in mentions] + [
            f"word{c}" for c in context
        ]
        order = rng.permutation(len(words))
        tasks.append(
            Task(
                task_id=i,
                text=" ".join(words[j] for j in order),
                num_choices=NUM_CHOICES,
                ground_truth=1,
            )
        )
    return tasks


def run_prepare(
    path: str, kb: KnowledgeBase, tasks: List[Task], top_c: int = 20
) -> Dict[str, object]:
    """One full offline build (link + DVE + store + register)."""
    store = WorkerQualityStore(NUM_DOMAINS)
    engine = IncrementalTruthInference(store)
    db = SystemDatabase()
    started = time.perf_counter()
    if path == "pipeline":
        pipeline = IngestPipeline(
            db, engine, EntityLinker(kb, top_c=top_c)
        )
        report = pipeline.ingest(tasks)
        stages = {
            "link_s": report.link_seconds,
            "dve_s": report.estimate_seconds,
            "store_s": report.store_seconds,
            "register_s": report.register_seconds,
        }
    else:
        # The pre-pipeline prepare loop: one task at a time, uncached
        # linking, dictionary-DP DVE, per-row inserts.
        linker = EntityLinker(kb, top_c=top_c, candidate_cache=False)
        link_s = dve_s = store_s = register_s = 0.0
        for task in tasks:
            tic = time.perf_counter()
            entities = linker.link(task.text)
            link_s += time.perf_counter() - tic
            tic = time.perf_counter()
            if not entities:
                task.domain_vector = uniform_distribution(NUM_DOMAINS)
            else:
                raw = reference_domain_vector(entities)
                total = raw.sum()
                task.domain_vector = (
                    raw / total
                    if total > 1e-12
                    else uniform_distribution(NUM_DOMAINS)
                )
            dve_s += time.perf_counter() - tic
            tic = time.perf_counter()
            db.insert_task(task)
            store_s += time.perf_counter() - tic
            tic = time.perf_counter()
            engine.register_task(task)
            register_s += time.perf_counter() - tic
        stages = {
            "link_s": link_s,
            "dve_s": dve_s,
            "store_s": store_s,
            "register_s": register_s,
        }
    e2e_seconds = time.perf_counter() - started
    vectors = np.stack([t.domain_vector for t in tasks])
    return {"path": path, "e2e_s": e2e_seconds, **stages,
            "vectors": vectors}


def compare_prepare_at(n: int, seed: int = 11) -> Dict[str, object]:
    """Run both prepare paths on one workload size; verify agreement."""
    results = {}
    for path in ("pipeline", "legacy"):
        # Fresh KB and task objects per path: prepare mutates domain
        # vectors, and the pipeline run warms KB-level caches the
        # legacy baseline must not inherit.
        kb = _make_ingest_kb(make_rng(seed))
        tasks = _make_ingest_tasks(n, make_rng(seed + 1))
        results[path] = run_prepare(path, kb, tasks)
    if not np.allclose(
        results["pipeline"]["vectors"],
        results["legacy"]["vectors"],
        atol=1e-9,
    ):
        raise AssertionError(
            f"n={n}: pipeline and legacy prepare disagree on domain "
            "vectors"
        )
    summary = {
        "num_tasks": n,
        "num_domains": NUM_DOMAINS,
        "speedup_e2e": (
            results["legacy"]["e2e_s"] / results["pipeline"]["e2e_s"]
        ),
    }
    for path in ("pipeline", "legacy"):
        for key in ("e2e_s", "link_s", "dve_s", "store_s", "register_s"):
            summary[f"{key}_{path}"] = results[path][key]
    return summary


def _report_prepare(summary: Dict[str, object]) -> None:
    print(
        f"prepare n={summary['num_tasks']:>6d}  "
        f"link {summary['link_s_legacy']:7.2f} -> "
        f"{summary['link_s_pipeline']:6.2f} s   "
        f"dve {summary['dve_s_legacy']:7.2f} -> "
        f"{summary['dve_s_pipeline']:6.2f} s   "
        f"e2e {summary['e2e_s_legacy']:7.2f} -> "
        f"{summary['e2e_s_pipeline']:6.2f} s   "
        f"({summary['speedup_e2e']:.1f}x)"
    )


def run_campaign(
    path: str,
    tasks: List[Task],
    worker_qualities: Dict[str, np.ndarray],
    answers_per_task: int,
    hit_size: int,
    rerun_every: int,
    seed: int,
    answer_table_factory: Optional[Callable] = None,
    max_submissions: Optional[int] = None,
) -> Dict[str, object]:
    """One full campaign on the chosen implementation path.

    ``answer_table_factory(arena)`` optionally builds an answer store
    that every submit also writes to (mirroring ``DocsSystem.submit``'s
    database insert); its final ``checkpoint()``, if any, is counted in
    the end-to-end time.
    """
    rng = make_rng(seed)
    store = WorkerQualityStore(NUM_DOMAINS)
    for worker_id, quality in worker_qualities.items():
        store.set(worker_id, quality, np.full(NUM_DOMAINS, 2.0))
    golden_init = {w: q.copy() for w, q in worker_qualities.items()}

    if path == "arena":
        engine = IncrementalTruthInference(store)
    else:
        engine = ReferenceIncrementalTruthInference(store)
    for task in tasks:
        engine.register_task(task)
    log = AnswerLog(engine.arena) if path == "arena" else None
    answers: List[Answer] = []

    assigner = TaskAssigner(hit_size=hit_size)
    ti = TruthInference()
    pool = engine.arena if path == "arena" else engine.states()
    answer_table = (
        answer_table_factory(engine.arena)
        if answer_table_factory is not None
        else None
    )

    budget = len(tasks) * answers_per_task
    if max_submissions is not None:
        budget = min(budget, max_submissions)
    answered_by = defaultdict(set)
    assign_times: List[float] = []
    rerun_times: List[float] = []
    submit_seconds = 0.0
    submissions = 0
    arrival = 0
    consecutive_empty = 0
    started_e2e = time.perf_counter()

    while submissions < budget and consecutive_empty <= NUM_WORKERS:
        worker_id = f"w{arrival % NUM_WORKERS}"
        arrival += 1
        quality = store.blended_quality(worker_id)
        k = min(hit_size, budget - submissions)
        tic = time.perf_counter()
        if path == "arena":
            hit = assigner.assign(
                pool, quality,
                answered_by_worker=answered_by[worker_id], k=k,
            )
        else:
            hit = reference_assign(
                pool, quality,
                answered_by_worker=answered_by[worker_id], k=k,
            )
        assign_times.append(time.perf_counter() - tic)
        if not hit:
            consecutive_empty += 1
            continue
        consecutive_empty = 0
        for task_id in hit:
            choice = int(rng.integers(1, NUM_CHOICES + 1))
            answer = Answer(worker_id, task_id, choice)
            if answer_table is not None:
                answer_table.insert(answer)
            tic = time.perf_counter()
            engine.submit(answer)
            submit_seconds += time.perf_counter() - tic
            answered_by[worker_id].add(task_id)
            if log is not None:
                log.append(answer)
            else:
                answers.append(answer)
            submissions += 1
            if submissions % rerun_every == 0:
                tic = time.perf_counter()
                if log is not None:
                    result = ti.infer_from_log(
                        log, initial_qualities=golden_init
                    )
                    engine.resync_from_arena_result(result)
                else:
                    result = reference_infer(
                        tasks, answers, initial_qualities=golden_init
                    )
                    engine.resync_from_full_inference(
                        result.probabilistic_truths,
                        result.truth_matrices,
                        result.worker_qualities,
                        result.worker_weights,
                    )
                rerun_times.append(time.perf_counter() - tic)

    if answer_table is not None and hasattr(answer_table, "checkpoint"):
        answer_table.checkpoint()
    e2e_seconds = time.perf_counter() - started_e2e
    truths = {
        task_id: state.inferred_truth()
        for task_id, state in engine.states().items()
    }
    return {
        "path": path,
        "submissions": submissions,
        "arrivals": arrival,
        "reruns": len(rerun_times),
        "assign_mean_ms": 1e3 * float(np.mean(assign_times)),
        "assign_max_ms": 1e3 * float(np.max(assign_times)),
        "submit_per_s": (
            submissions / submit_seconds if submit_seconds else 0.0
        ),
        "rerun_mean_s": (
            float(np.mean(rerun_times)) if rerun_times else 0.0
        ),
        "e2e_s": e2e_seconds,
        "truths": truths,
    }


def compare_at(
    n: int,
    answers_per_task: int,
    hit_size: int,
    rerun_every: int,
    seed: int = 7,
    max_submissions: Optional[int] = None,
) -> Dict[str, object]:
    """Run both paths on one workload size; verify identical inference.

    ``max_submissions`` caps the campaign length: at n = 100K a full
    2-answers-per-task legacy campaign would run for hours, so the
    large point drives both paths through an identical *partial*
    campaign over the full-size pool (per-arrival costs are what scale
    with n; the cap is recorded in the summary).
    """
    rng = make_rng(seed)
    tasks = _make_tasks(n, rng)
    worker_qualities = _seed_store(rng)
    results = {}
    for path in ("arena", "legacy"):
        results[path] = run_campaign(
            path,
            tasks,
            worker_qualities,
            answers_per_task=answers_per_task,
            hit_size=hit_size,
            rerun_every=rerun_every,
            seed=seed + 1,
            max_submissions=max_submissions,
        )
    if results["arena"]["truths"] != results["legacy"]["truths"]:
        raise AssertionError(
            f"n={n}: arena and legacy paths disagree on inferred truths"
        )
    if results["arena"]["submissions"] != results["legacy"]["submissions"]:
        raise AssertionError(
            f"n={n}: campaign shapes diverged between paths"
        )
    summary = {
        "num_tasks": n,
        "num_domains": NUM_DOMAINS,
        "num_choices": NUM_CHOICES,
        "answers_per_task": answers_per_task,
        "hit_size": hit_size,
        "rerun_every": rerun_every,
        "submissions": results["arena"]["submissions"],
        "max_submissions": max_submissions,
        "speedup_e2e": (
            results["legacy"]["e2e_s"] / results["arena"]["e2e_s"]
        ),
    }
    for path in ("arena", "legacy"):
        for key in (
            "assign_mean_ms",
            "assign_max_ms",
            "submit_per_s",
            "rerun_mean_s",
            "e2e_s",
            "reruns",
        ):
            summary[f"{key}_{path}"] = results[path][key]
    return summary


def compare_durability_at(
    n: int,
    answers_per_task: int,
    hit_size: int,
    rerun_every: int,
    seed: int = 7,
    batch_size: int = 256,
) -> Dict[str, object]:
    """Measure the sqlite journal's overhead on the serving path.

    Identical arena campaigns, one writing answers to the in-memory
    table, one through the write-behind journal into a real file (final
    checkpoint included). Verifies identical truths and a valid journal.
    """
    rng = make_rng(seed)
    tasks = _make_tasks(n, rng)
    worker_qualities = _seed_store(rng)
    results = {}
    with tempfile.TemporaryDirectory() as tmp:
        db_holder: List[SqliteSystemDatabase] = []

        def memory_factory(arena):
            return AnswerTable()

        def sqlite_factory(arena):
            db = SqliteSystemDatabase(
                str(pathlib.Path(tmp) / "bench.db"),
                journal_batch_size=batch_size,
            )
            db.answers.bind_row_resolver(arena.global_row)
            db_holder.append(db)
            return db.answers

        for mode, factory in (
            ("memory", memory_factory),
            ("sqlite", sqlite_factory),
        ):
            results[mode] = run_campaign(
                "arena",
                tasks,
                worker_qualities,
                answers_per_task=answers_per_task,
                hit_size=hit_size,
                rerun_every=rerun_every,
                seed=seed + 1,
                answer_table_factory=factory,
            )
        db = db_holder[0]
        journal_rows = len(db.journal)
        db.journal.validate()
        db.close()
    if results["memory"]["truths"] != results["sqlite"]["truths"]:
        raise AssertionError(
            f"n={n}: journaled and in-memory campaigns disagree on truths"
        )
    if journal_rows != results["sqlite"]["submissions"]:
        raise AssertionError(
            f"n={n}: journal holds {journal_rows} rows for "
            f"{results['sqlite']['submissions']} submissions"
        )
    overhead = (
        results["sqlite"]["e2e_s"] / results["memory"]["e2e_s"] - 1.0
    )
    return {
        "num_tasks": n,
        "batch_size": batch_size,
        "submissions": results["sqlite"]["submissions"],
        "e2e_s_memory": results["memory"]["e2e_s"],
        "e2e_s_sqlite": results["sqlite"]["e2e_s"],
        "overhead_pct": 100.0 * overhead,
    }


def compare_resume_at(
    n: int,
    answers_per_task: int,
    rerun_every: int,
    seed: int = 7,
    batch_size: int = 256,
) -> Dict[str, object]:
    """Measure snapshot-load resume vs full journal replay.

    One journaled campaign is written (precomputed domain vectors, no
    golden pre-test — replay cost is the serving plane: per-answer
    incremental TI plus the every-z full re-runs), then resumed twice:
    from its close-time snapshot, and — after deleting the snapshot
    rows — by replaying every journal event. Both resumed systems must
    hold identical task states and worker qualities.
    """
    import sqlite3

    from repro.datasets.base import CrowdDataset, DatasetDomain
    from repro.kb.taxonomy import DomainTaxonomy
    from repro.system import DocsConfig, DocsSystem

    rng = make_rng(seed)
    tasks = _make_tasks(n, rng)
    taxonomy = DomainTaxonomy(
        tuple(f"domain{k}" for k in range(NUM_DOMAINS))
    )
    dataset = CrowdDataset(
        name="bench-resume",
        tasks=tasks,
        kb=KnowledgeBase(taxonomy),
        domains=[DatasetDomain("bench", "domain0", 0)],
        task_labels=["bench"] * n,
    )
    config = DocsConfig(
        golden_count=0,
        rerun_interval=rerun_every,
        journal_batch_size=batch_size,
        snapshot_every_batches=0,  # one snapshot, written on close
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = str(pathlib.Path(tmp) / "resume.db")
        system = DocsSystem(config, storage="sqlite", path=path)
        system.prepare(dataset)
        submissions = 0
        for task in tasks:
            for j in range(answers_per_task):
                worker = f"w{(task.task_id + j) % NUM_WORKERS}"
                choice = 1 + (task.task_id * 3 + j) % NUM_CHOICES
                system.submit(Answer(worker, task.task_id, choice))
                submissions += 1
        system.close()

        tic = time.perf_counter()
        fast = DocsSystem.resume(path, config=config)
        snapshot_seconds = time.perf_counter() - tic
        if fast.resume_info["snapshot_seq"] is None:
            raise AssertionError(
                f"n={n}: close() left no usable snapshot to resume from"
            )

        conn = sqlite3.connect(path)
        for table in (
            "snapshot_meta", "snapshot_groups", "snapshot_workers",
            "snapshot_answer_index",
        ):
            conn.execute(f"DELETE FROM {table}")
        conn.commit()
        conn.close()
        tic = time.perf_counter()
        slow = DocsSystem.resume(path, config=config)
        replay_seconds = time.perf_counter() - tic
        if slow.resume_info["snapshot_seq"] is not None:
            raise AssertionError(
                f"n={n}: replay path unexpectedly found a snapshot"
            )

        for task in tasks:
            f_state = fast._incremental.state(task.task_id)
            s_state = slow._incremental.state(task.task_id)
            if not np.array_equal(f_state.s, s_state.s) or (
                not np.array_equal(f_state.M, s_state.M)
            ):
                raise AssertionError(
                    f"n={n}: snapshot and replay resume disagree on "
                    f"task {task.task_id}"
                )
        f_workers = sorted(fast.quality_store.known_workers())
        if f_workers != sorted(slow.quality_store.known_workers()):
            raise AssertionError(
                f"n={n}: snapshot and replay resume know different "
                "workers"
            )
        for worker in f_workers:
            if not np.array_equal(
                fast.quality_store.get(worker).quality,
                slow.quality_store.get(worker).quality,
            ):
                raise AssertionError(
                    f"n={n}: snapshot and replay resume disagree on "
                    f"worker {worker}"
                )
        fast.close()
        slow.close()
    return {
        "num_tasks": n,
        "submissions": submissions,
        "rerun_every": rerun_every,
        "batch_size": batch_size,
        "snapshot_load_s": snapshot_seconds,
        "full_replay_s": replay_seconds,
        "speedup_resume": replay_seconds / snapshot_seconds,
    }


def _build_archived_campaign(
    path: str,
    n_tasks: int,
    archived: int,
    tail: int,
    carry_index: bool,
    seed: int = 7,
):
    """Write a campaign file with ``archived`` answers behind the
    snapshot watermark and ``tail`` live journal rows after it.

    The archived prefix enters the journal, the answer table, and the
    arena log directly — skipping per-answer TI, whose cost is not what
    the resume benchmark measures; the snapshot written by
    ``checkpoint()`` captures exactly this state, so it is
    self-consistent. The tail runs through real ``submit`` calls. The
    file is then abandoned un-closed (journal flushed), so resume must
    replay the tail rather than find a close-time snapshot covering it.

    The tasks the tail lands on keep a **fixed** archived-answer
    density (2 per task) at every archive size; the rest of the
    archive spreads over the other tasks. Replaying a tail answer
    re-weights every prior answerer of its task — serving-path work a
    live campaign pays identically — so holding the tail's history
    density constant isolates what the sweep is after: how resume cost
    itself scales with the archived-answer count.

    Returns the :class:`DocsConfig` to resume with.
    """
    from repro.datasets.base import CrowdDataset, DatasetDomain
    from repro.system import DocsConfig, DocsSystem

    if tail > n_tasks:
        raise ValueError("tail must be <= n_tasks (unique pairs)")
    rng = make_rng(seed)
    tasks = _make_tasks(n_tasks, rng)
    for task in tasks:
        task.true_domain = task.task_id % NUM_DOMAINS
    taxonomy = DomainTaxonomy(
        tuple(f"domain{k}" for k in range(NUM_DOMAINS))
    )
    dataset = CrowdDataset(
        name="bench-archive",
        tasks=tasks,
        kb=KnowledgeBase(taxonomy),
        domains=[DatasetDomain("bench", "domain0", 0)],
        task_labels=["bench"] * n_tasks,
    )
    config = DocsConfig(
        golden_count=0,
        rerun_interval=10**9,  # no full re-runs; fixed-tail cost only
        journal_batch_size=1024,
        snapshot_every_batches=0,
        truncate_journal=True,
        snapshot_carry_index=carry_index,
    )
    system = DocsSystem(config, storage="sqlite", path=path)
    system.prepare(dataset)

    # Every answerer is known to the quality store in a real campaign
    # (its first submit merges it in); the snapshot's worker table must
    # carry the synthetic answerers too, or tail replay would touch
    # unknown workers while refreshing prior answers.
    store = system.quality_store
    for worker_id, quality in _seed_store(rng).items():
        store.set(worker_id, quality, np.full(NUM_DOMAINS, 2.0))

    answers = system.database.answers
    log = system._log
    tail_density = 2
    rest = archived - tail * tail_density
    if rest < 0:
        raise ValueError("archived must cover the tail tasks' density")
    per_task, extra = divmod(rest, n_tasks - tail)
    if per_task + 1 > NUM_WORKERS:
        raise ValueError("archived too large for unique worker pairs")
    for task in tasks:
        if task.task_id < tail:
            count = tail_density
        else:
            count = per_task + (
                1 if task.task_id - tail < extra else 0
            )
        for j in range(count):
            worker = f"w{(task.task_id + j) % NUM_WORKERS}"
            choice = 1 + (task.task_id * 3 + j) % NUM_CHOICES
            answer = Answer(worker, task.task_id, choice)
            answers.insert(answer)
            log.append(answer)
    system.checkpoint()  # snapshot + archive the prefix

    for i in range(tail):
        choice = 1 + (i * 5 + 1) % NUM_CHOICES
        system.submit(Answer(f"t{i % NUM_WORKERS}", i, choice))
    db = system.database
    db.journal.flush()
    db._conn.close()
    db._closed = True  # simulated kill: no close-time snapshot
    return config


def compare_archived_resume_at(
    n_tasks: int,
    archived_counts: Tuple[int, ...],
    tail: int,
    seed: int = 7,
) -> Dict[str, object]:
    """Resume cost vs archived-answer count at a fixed live tail.

    For each archived size, two identical campaigns are written — one
    whose snapshot carries the serialised answer-log index
    (``snapshot_carry_index=True``), one without — and each is resumed.
    The index-carrying resume must take the ``index-carry`` restore
    path (no ``committed_answers_through`` scan) and its cost must stay
    flat as the archive grows; the index-less snapshot falls back to
    ``archive-scan``, whose cost grows with the archive. Both resumed
    systems must hold identical hot state and identical answer views —
    checked on every run.
    """
    from repro.system import DocsSystem

    points: List[Dict[str, object]] = []
    with tempfile.TemporaryDirectory() as tmp:
        for archived in archived_counts:
            point: Dict[str, object] = {
                "num_tasks": n_tasks,
                "archived": archived,
                "tail": tail,
            }
            resumed: Dict[str, object] = {}
            for carry in (True, False):
                label = "carry" if carry else "scan"
                path = str(
                    pathlib.Path(tmp) / f"a{archived}_{label}.db"
                )
                config = _build_archived_campaign(
                    path, n_tasks, archived, tail, carry, seed=seed
                )
                tic = time.perf_counter()
                system = DocsSystem.resume(path, config=config)
                wall = time.perf_counter() - tic
                expected = "index-carry" if carry else "archive-scan"
                got = system.resume_info["restore_path"]
                if got != expected:
                    raise AssertionError(
                        f"archived={archived}: snapshot_carry_index="
                        f"{carry} resumed via {got!r}, expected "
                        f"{expected!r}"
                    )
                point[f"resume_s_{label}"] = wall
                point[f"restore_path_{label}"] = got
                resumed[label] = system
            fast, slow = resumed["carry"], resumed["scan"]
            for task_id in range(n_tasks):
                f_state = fast._incremental.state(task_id)
                s_state = slow._incremental.state(task_id)
                if not np.array_equal(f_state.s, s_state.s) or (
                    not np.array_equal(f_state.M, s_state.M)
                ):
                    raise AssertionError(
                        f"archived={archived}: restore paths disagree "
                        f"on task {task_id}"
                    )
            f_workers = sorted(fast.quality_store.known_workers())
            if f_workers != sorted(slow.quality_store.known_workers()):
                raise AssertionError(
                    f"archived={archived}: restore paths know "
                    "different workers"
                )
            # The lazily-hydrated answer views must read identically
            # to the eagerly rebuilt ones, order included.
            step = max(1, n_tasks // 50)
            for task_id in range(0, n_tasks, step):
                if fast.database.answers.for_task(task_id) != (
                    slow.database.answers.for_task(task_id)
                ):
                    raise AssertionError(
                        f"archived={archived}: answer views diverge "
                        f"on task {task_id}"
                    )
            if len(fast.database.answers) != len(slow.database.answers):
                raise AssertionError(
                    f"archived={archived}: answer counts diverge"
                )
            fast.close()
            slow.close()
            points.append(point)
    first, last = points[0], points[-1]
    summary: Dict[str, object] = {
        "num_tasks": n_tasks,
        "tail": tail,
        "points": points,
        "archive_growth": (
            last["archived"] / first["archived"]
        ),
        "carry_cost_ratio": (
            last["resume_s_carry"] / first["resume_s_carry"]
        ),
        "scan_cost_ratio": (
            last["resume_s_scan"] / first["resume_s_scan"]
        ),
    }
    return summary


def compare_analytics_at(
    n_tasks: int,
    archived: int,
    tail: int,
    seed: int = 7,
) -> Dict[str, object]:
    """SQL-pushdown analytics vs the naive Python reference.

    Builds one archived-plus-tail campaign file, then runs every
    registered analytics query both ways. Hard failures: a result that
    is not bit-identical to the reference, or a query plan touching
    ``answers_archive``/``answers_log`` without a covering index.
    """
    from repro.analytics import QUERY_NAMES, explain_query, run_query
    from repro.analytics.reference import run_reference

    with tempfile.TemporaryDirectory() as tmp:
        path = str(pathlib.Path(tmp) / "analytics.db")
        _build_archived_campaign(
            path, n_tasks, archived, tail, carry_index=True, seed=seed
        )
        db = SqliteSystemDatabase(path, journal_batch_size=256)
        queries: Dict[str, Dict[str, object]] = {}
        try:
            conn = db._conn
            for name in QUERY_NAMES:
                uncovered = [
                    line
                    for line in explain_query(conn, name)
                    if (
                        "answers_archive" in line
                        or "answers_log" in line
                    )
                    and "USING COVERING INDEX" not in line
                ]
                if uncovered:
                    raise AssertionError(
                        f"query {name!r} plan not covered: {uncovered}"
                    )
                tic = time.perf_counter()
                pushed = run_query(conn, name)
                sql_s = time.perf_counter() - tic
                tic = time.perf_counter()
                naive = run_reference(conn, name)
                reference_s = time.perf_counter() - tic
                if pushed != naive:
                    raise AssertionError(
                        f"query {name!r}: SQL result diverged from the "
                        "Python reference"
                    )
                queries[name] = {
                    "rows": len(pushed["rows"]),
                    "sql_s": sql_s,
                    "reference_s": reference_s,
                    "speedup": reference_s / sql_s,
                }
        finally:
            db.close()
    return {
        "num_tasks": n_tasks,
        "archived": archived,
        "tail": tail,
        "answers": archived + tail,
        "queries": queries,
    }


def compare_serve_at(
    n: int,
    seed: int = 7,
    pre_answers: Optional[int] = None,
    arrivals: int = 30,
    answers_per_arrival: int = 10,
    hit_size: int = 20,
) -> Dict[str, object]:
    """Per-arrival assign latency: warm AssignmentIndex vs brute force.

    The workload isolates the steady serving state: a large answered
    pool, one worker with a stable quality vector requesting HITs, and
    a small stream of answers from *other* workers between arrivals
    (each dirties one arena row). The warm index re-evaluates only the
    dirty rows and selects from its frontier; the brute path evaluates
    the whole pool. Every arrival's picks are compared — a mismatch is
    a hard failure, the speedup is only reported for identical picks.
    """
    rng = make_rng(seed)
    tasks = _make_tasks(n, rng)
    store = WorkerQualityStore(NUM_DOMAINS)
    for worker_id, quality in _seed_store(rng).items():
        store.set(worker_id, quality, np.full(NUM_DOMAINS, 2.0))
    engine = IncrementalTruthInference(store)
    engine.register_tasks(tasks)

    # Warm the pool: scattered answers so states and benefits vary.
    # Worker j answers tasks j, j+W, j+2W, ... (no duplicate pairs);
    # capped at half the pool so the measured arrivals still have
    # unanswered (worker, task) pairs to dirty rows with.
    counters = [0] * NUM_WORKERS
    if pre_answers is None:
        pre_answers = min(n // 2, 3000)
    for i in range(pre_answers):
        j = i % NUM_WORKERS
        task_id = counters[j] * NUM_WORKERS + j
        if task_id >= n:
            break
        counters[j] += 1
        engine.submit(
            Answer(
                f"w{j}",
                task_id,
                int(rng.integers(1, NUM_CHOICES + 1)),
            )
        )

    reader_quality = rng.uniform(0.4, 0.95, size=NUM_DOMAINS)
    brute = TaskAssigner(hit_size=hit_size, masked_fraction=0.0)
    served = TaskAssigner(hit_size=hit_size)
    index = AssignmentIndex(engine.arena)
    served.attach_index(index)

    tic = time.perf_counter()
    served.assign(engine.arena, reader_quality)  # cold column build
    cold_seconds = time.perf_counter() - tic

    brute_times: List[float] = []
    index_times: List[float] = []
    for arrival in range(arrivals):
        for i in range(answers_per_arrival):
            j = (arrival * answers_per_arrival + i) % NUM_WORKERS
            task_id = counters[j] * NUM_WORKERS + j
            if task_id >= n:
                continue
            counters[j] += 1
            engine.submit(
                Answer(
                    f"w{j}",
                    task_id,
                    int(rng.integers(1, NUM_CHOICES + 1)),
                )
            )
        # Level the shared cache state: whichever path runs first would
        # otherwise absorb the dirty-row entropy refresh for both.
        engine.arena.refresh_entropies()
        tic = time.perf_counter()
        expect = brute.assign(engine.arena, reader_quality)
        brute_times.append(time.perf_counter() - tic)
        tic = time.perf_counter()
        got = served.assign(engine.arena, reader_quality)
        index_times.append(time.perf_counter() - tic)
        if got != expect:
            raise AssertionError(
                f"n={n}: warm-index picks diverged from brute force at "
                f"arrival {arrival}"
            )
    stats = index.stats()
    if stats["warm_hits"] != arrivals:
        raise AssertionError(
            f"n={n}: expected {arrivals} warm index hits, saw "
            f"{stats['warm_hits']} — the scenario did not measure the "
            "warm path"
        )
    brute_mean = float(np.mean(brute_times))
    index_mean = float(np.mean(index_times))
    return {
        "num_tasks": n,
        "num_domains": NUM_DOMAINS,
        "hit_size": hit_size,
        "arrivals": arrivals,
        "answers_per_arrival": answers_per_arrival,
        "pre_answers": pre_answers,
        "assign_mean_ms_brute": 1e3 * brute_mean,
        "assign_mean_ms_index": 1e3 * index_mean,
        "assign_max_ms_brute": 1e3 * float(np.max(brute_times)),
        "assign_max_ms_index": 1e3 * float(np.max(index_times)),
        "cold_build_ms": 1e3 * cold_seconds,
        "rows_repaired": stats["rows_repaired"],
        "frontier_selections": stats["frontier_selections"],
        "full_selections": stats["full_selections"],
        "speedup_assign": brute_mean / index_mean,
    }


def machine_metadata() -> Dict[str, object]:
    """What this run ran on — parallel speedups are meaningless without
    it (a 1-core container cannot show a 4-worker win)."""
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": np.__version__,
    }


def compare_parallel_at(
    n: int,
    seed: int = 7,
    worker_counts: Tuple[int, ...] = (1, 2, 4),
    num_qualities: int = 8,
    requests_per_pass: int = 24,
    passes: int = 4,
    pre_answers: Optional[int] = None,
    hit_size: int = 20,
) -> Dict[str, object]:
    """Aggregate warm-assign throughput of the serving pool by cores.

    Builds one campaign-warm :class:`SharedStateArena` at n, computes
    the oracle picks for a fixed request batch with a local
    single-process :class:`AssignmentIndex` over the *same* arena, then
    serves the identical batch through a :class:`ServingPool` at each
    worker count. One untimed pass warms every worker's benefit
    columns (requests are dispatched round-robin, and the batch size is
    a multiple of every worker count, so each pass routes each request
    to the same worker); the timed passes measure steady-state
    throughput. Every pick of every pass must be bit-identical to the
    oracle — a mismatch is a hard failure, not a data point.
    """
    for workers in worker_counts:
        if requests_per_pass % workers:
            raise ValueError(
                "requests_per_pass must be a multiple of every worker "
                "count (round-robin warm routing)"
            )
    rng = make_rng(seed)
    tasks = _make_tasks(n, rng)
    store = WorkerQualityStore(NUM_DOMAINS)
    for worker_id, quality in _seed_store(rng).items():
        store.set(worker_id, quality, np.full(NUM_DOMAINS, 2.0))
    arena = SharedStateArena(NUM_DOMAINS)
    try:
        engine = IncrementalTruthInference(store, arena=arena)
        engine.register_tasks(tasks)
        if pre_answers is None:
            pre_answers = min(n // 2, 3000)
        counters = [0] * NUM_WORKERS
        for i in range(pre_answers):
            j = i % NUM_WORKERS
            task_id = counters[j] * NUM_WORKERS + j
            if task_id >= n:
                break
            counters[j] += 1
            engine.submit(
                Answer(
                    f"w{j}",
                    task_id,
                    int(rng.integers(1, NUM_CHOICES + 1)),
                )
            )
        arena.refresh_entropies()

        qualities = [
            rng.uniform(0.4, 0.95, size=NUM_DOMAINS)
            for _ in range(num_qualities)
        ]
        requests = [
            (qualities[i % num_qualities], hit_size, set(), None, n)
            for i in range(requests_per_pass)
        ]
        oracle = AssignmentIndex(arena)
        expected = [oracle.select(*request) for request in requests]

        throughput: Dict[int, float] = {}
        for workers in worker_counts:
            with ServingPool(arena, workers) as pool:
                warm = pool.select_many(requests)
                if warm != expected:
                    raise AssertionError(
                        f"n={n}: {workers}-worker pool picks diverged "
                        "from the single-process oracle (warm pass)"
                    )
                tic = time.perf_counter()
                for run in range(passes):
                    batches = pool.select_many(requests)
                    if batches != expected:
                        raise AssertionError(
                            f"n={n}: {workers}-worker pool picks "
                            f"diverged from the oracle (pass {run})"
                        )
                wall = time.perf_counter() - tic
            throughput[workers] = passes * requests_per_pass / wall
    finally:
        arena.close()

    summary: Dict[str, object] = {
        "num_tasks": n,
        "num_domains": NUM_DOMAINS,
        "hit_size": hit_size,
        "requests_per_pass": requests_per_pass,
        "passes": passes,
        "distinct_qualities": num_qualities,
        "pre_answers": pre_answers,
        "picks_bit_identical": True,
    }
    for workers, value in throughput.items():
        summary[f"assign_per_s_{workers}w"] = value
    base = throughput[worker_counts[0]]
    for workers in worker_counts[1:]:
        summary[f"speedup_{workers}w_vs_{worker_counts[0]}w"] = (
            throughput[workers] / base
        )
    return summary


def compare_parallel_rerun_at(
    n: int,
    answers_per_task: int = 3,
    shards: int = 4,
    repeats: int = 3,
    seed: int = 7,
) -> Dict[str, object]:
    """Sharded full-TI rerun vs the in-process solver, same log.

    The sharded solver must converge in the same iteration count and
    match the in-process result to parallel-reduction rounding.
    """
    rng = make_rng(seed)
    store = WorkerQualityStore(NUM_DOMAINS)
    for worker_id, quality in _seed_store(rng).items():
        store.set(worker_id, quality, np.full(NUM_DOMAINS, 2.0))
    engine = IncrementalTruthInference(store)
    engine.register_tasks(_make_tasks(n, rng))
    log = AnswerLog(engine.arena)
    for task_id in range(n):
        for j in range(answers_per_task):
            worker = f"w{(task_id + j) % NUM_WORKERS}"
            choice = 1 + (task_id * 3 + j) % NUM_CHOICES
            log.append(Answer(worker, task_id, choice))
    ti = TruthInference()

    def timed(shard_count: int):
        times = []
        result = None
        for _ in range(repeats):
            tic = time.perf_counter()
            result = ti.infer_from_log(log, shards=shard_count)
            times.append(time.perf_counter() - tic)
        return result, float(np.min(times))

    base, base_s = timed(0)
    sharded, sharded_s = timed(shards)
    if sharded.iterations != base.iterations:
        raise AssertionError(
            f"n={n}: sharded rerun converged in {sharded.iterations} "
            f"iterations vs {base.iterations} in-process"
        )
    if not np.allclose(sharded.S, base.S, atol=1e-9):
        raise AssertionError(
            f"n={n}: sharded rerun truths diverged from in-process"
        )
    return {
        "num_tasks": n,
        "answers": len(log),
        "shards": shards,
        "iterations": base.iterations,
        "rerun_s_inprocess": base_s,
        "rerun_s_sharded": sharded_s,
        "speedup_rerun": base_s / sharded_s,
    }


def compare_parallel_link_at(
    n: int,
    workers: int = 4,
    seed: int = 11,
) -> Dict[str, object]:
    """Parallel batch linking vs the sequential cached batch path.

    Entity output is a pure function of the text: the parallel batch
    must match the sequential batch entity-for-entity.
    """
    kb = _make_ingest_kb(make_rng(seed))
    texts = [
        task.text for task in _make_ingest_tasks(n, make_rng(seed + 1))
    ]

    sequential_linker = EntityLinker(kb)
    tic = time.perf_counter()
    sequential = sequential_linker.link_batch(texts)
    sequential_s = time.perf_counter() - tic

    parallel_linker = EntityLinker(kb)
    tic = time.perf_counter()
    parallel = parallel_linker.link_batch(texts, workers=workers)
    parallel_s = time.perf_counter() - tic

    for left, right in zip(parallel, sequential):
        if len(left) != len(right) or any(
            a.surface != b.surface
            or a.concept_ids != b.concept_ids
            or not np.array_equal(a.probabilities, b.probabilities)
            for a, b in zip(left, right)
        ):
            raise AssertionError(
                f"n={n}: parallel linking diverged from sequential"
            )
    return {
        "num_texts": n,
        "link_workers": workers,
        "link_s_sequential": sequential_s,
        "link_s_parallel": parallel_s,
        "speedup_link": sequential_s / parallel_s,
    }


def _report_parallel(summary: Dict[str, object]) -> None:
    per_worker = "  ".join(
        f"{key.split('_')[-1]} {summary[key]:7.0f}/s"
        for key in sorted(summary)
        if key.startswith("assign_per_s_")
    )
    speedups = "  ".join(
        f"{key.removeprefix('speedup_')} {summary[key]:.2f}x"
        for key in sorted(summary)
        if key.startswith("speedup_")
    )
    tail = f"{speedups}, picks identical" if speedups else "picks identical"
    print(
        f"parallel n={summary['num_tasks']:>6d}  {per_worker}   ({tail})"
    )


def _report_parallel_rerun(summary: Dict[str, object]) -> None:
    print(
        f"p-rerun n={summary['num_tasks']:>6d}  "
        f"{summary['rerun_s_inprocess']:7.2f} -> "
        f"{summary['rerun_s_sharded']:7.2f} s   "
        f"({summary['speedup_rerun']:.2f}x at "
        f"{summary['shards']} shards)"
    )


def _report_parallel_link(summary: Dict[str, object]) -> None:
    print(
        f"p-link  n={summary['num_texts']:>6d}  "
        f"{summary['link_s_sequential']:7.2f} -> "
        f"{summary['link_s_parallel']:7.2f} s   "
        f"({summary['speedup_link']:.2f}x at "
        f"{summary['link_workers']} workers)"
    )


def _report_serve(summary: Dict[str, object]) -> None:
    print(
        f"serve  n={summary['num_tasks']:>6d}  "
        f"assign {summary['assign_mean_ms_brute']:8.2f} -> "
        f"{summary['assign_mean_ms_index']:7.3f} ms   "
        f"cold {summary['cold_build_ms']:7.2f} ms   "
        f"repaired {summary['rows_repaired']:>5d} rows   "
        f"({summary['speedup_assign']:.1f}x)"
    )


def _report_resume(summary: Dict[str, object]) -> None:
    print(
        f"resume n={summary['num_tasks']:>6d}  "
        f"replay {summary['full_replay_s']:7.2f} s -> "
        f"snapshot {summary['snapshot_load_s']:6.2f} s   "
        f"({summary['speedup_resume']:.1f}x, "
        f"{summary['submissions']} answers)"
    )


def _report_archive_resume(summary: Dict[str, object]) -> None:
    for point in summary["points"]:
        print(
            f"a-resume archived={point['archived']:>7d}  "
            f"tail={point['tail']:>5d}  "
            f"scan {point['resume_s_scan']:7.2f} s -> "
            f"carry {point['resume_s_carry']:6.2f} s"
        )
    print(
        f"a-resume carry cost x{summary['carry_cost_ratio']:.2f} over "
        f"x{summary['archive_growth']:.0f} archive growth "
        f"(scan x{summary['scan_cost_ratio']:.2f})"
    )


def _report_analytics(summary: Dict[str, object]) -> None:
    for name, stats in sorted(summary["queries"].items()):
        print(
            f"analytics {name:<16s} {summary['answers']:>7d} answers  "
            f"reference {stats['reference_s']:7.3f} s -> "
            f"sql {stats['sql_s']:7.3f} s   "
            f"({stats['speedup']:.1f}x, {stats['rows']} rows, "
            "bit-identical)"
        )


def _report_durability(summary: Dict[str, object]) -> None:
    print(
        f"journal n={summary['num_tasks']:>6d}  "
        f"e2e {summary['e2e_s_memory']:7.2f} -> "
        f"{summary['e2e_s_sqlite']:7.2f} s   "
        f"(+{summary['overhead_pct']:.1f}%, "
        f"batch {summary['batch_size']})"
    )


def _report(summary: Dict[str, object]) -> None:
    print(
        f"n={summary['num_tasks']:>6d}  "
        f"assign {summary['assign_mean_ms_legacy']:8.2f} -> "
        f"{summary['assign_mean_ms_arena']:7.2f} ms   "
        f"submit {summary['submit_per_s_legacy']:9.0f} -> "
        f"{summary['submit_per_s_arena']:9.0f} /s   "
        f"rerun {summary['rerun_mean_s_legacy']:7.3f} -> "
        f"{summary['rerun_mean_s_arena']:7.3f} s   "
        f"e2e {summary['e2e_s_legacy']:7.2f} -> "
        f"{summary['e2e_s_arena']:7.2f} s   "
        f"({summary['speedup_e2e']:.1f}x)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, fast correctness + sanity run (CI gate); no JSON",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=DEFAULT_OUT,
        help="full-mode output path (default: repo-root BENCH_perf.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        summary = compare_at(
            300, answers_per_task=2, hit_size=5, rerun_every=150
        )
        _report(summary)
        prepare_summary = compare_prepare_at(300)
        _report_prepare(prepare_summary)
        durability_summary = compare_durability_at(
            300, answers_per_task=2, hit_size=5, rerun_every=150
        )
        _report_durability(durability_summary)
        resume_summary = compare_resume_at(
            300, answers_per_task=2, rerun_every=150
        )
        _report_resume(resume_summary)
        # Index-carrying resume must not grow superlinearly with the
        # archived-answer count at a fixed tail: 10x more archived
        # answers may cost at most half the naive 10x.
        archive_summary = compare_archived_resume_at(
            1000, (2000, 20000), tail=200
        )
        _report_archive_resume(archive_summary)
        superlinear_bar = 0.5 * archive_summary["archive_growth"]
        if archive_summary["carry_cost_ratio"] > superlinear_bar:
            print(
                f"FAIL: index-carry resume cost grew "
                f"x{archive_summary['carry_cost_ratio']:.2f} over a "
                f"x{archive_summary['archive_growth']:.0f} archive — "
                "the snapshot index is not decoupling resume from "
                "archive size",
                file=sys.stderr,
            )
            return 1
        analytics_summary = compare_analytics_at(500, 3000, 200)
        _report_analytics(analytics_summary)
        # The serve regression bar runs at full 10K even in smoke: the
        # warm index must never be slower than brute force there.
        serve_summary = compare_serve_at(10000, arrivals=10)
        _report_serve(serve_summary)
        if serve_summary["speedup_assign"] < 1.0:
            print(
                f"FAIL: warm-index assign at n=10K is "
                f"{serve_summary['speedup_assign']:.2f}x brute force — "
                "slower than the path it replaces",
                file=sys.stderr,
            )
            return 1
        cpu = os.cpu_count() or 1
        if "fork" in multiprocessing.get_all_start_methods():
            # Pick identity vs the single-process oracle is a hard
            # failure inside each compare_* — every smoke run proves
            # the parallel plane correct regardless of core count.
            counts = (1, 2) if cpu >= 2 else (1,)
            parallel_summary = compare_parallel_at(
                2000, worker_counts=counts, passes=2
            )
            _report_parallel(parallel_summary)
            rerun_summary = compare_parallel_rerun_at(1000, shards=2)
            _report_parallel_rerun(rerun_summary)
            link_summary = compare_parallel_link_at(200, workers=2)
            _report_parallel_link(link_summary)
            # Throughput is only gateable with a second core under the
            # pool; the 1-core containers still run the identity proof.
            if cpu >= 2 and (
                parallel_summary["speedup_2w_vs_1w"] < 1.0
            ):
                print(
                    f"FAIL: 2-worker serving pool at "
                    f"{parallel_summary['speedup_2w_vs_1w']:.2f}x "
                    "single-worker throughput on a multi-core host — "
                    "slower than the path it replaces",
                    file=sys.stderr,
                )
                return 1
        print(
            "smoke ok: serving paths agree on truths, prepare paths "
            "agree on domain vectors, journaled campaign agrees with "
            "in-memory, snapshot resume agrees with full replay, "
            "index-carry resume stays decoupled from archive size "
            "with state identical to the archive-scan path, analytics "
            "SQL matches the Python reference bit-for-bit on covered "
            "plans, "
            "warm-index assign beats brute force at n=10K with "
            "identical picks, and the parallel plane (pool picks, "
            "sharded rerun, batch linking) matches its single-process "
            "oracles"
        )
        return 0

    points = []
    for n in (1000, 10000):
        summary = compare_at(
            n, answers_per_task=2, hit_size=10, rerun_every=max(n // 5, 100)
        )
        _report(summary)
        points.append(summary)
    # The 100K point caps the campaign at 2000 submissions: legacy
    # per-arrival costs scale with n, and a full 2-answers-per-task
    # campaign over 100K tasks would run for hours. Both paths drive
    # the identical partial campaign over the full-size pool, which is
    # exactly what per-arrival costs depend on; the cap lands in the
    # summary as ``max_submissions``.
    summary = compare_at(
        100000, answers_per_task=2, hit_size=10, rerun_every=2000,
        max_submissions=2000,
    )
    _report(summary)
    points.append(summary)
    prepare_points = []
    for n in (1000, 10000):
        prepare_summary = compare_prepare_at(n)
        _report_prepare(prepare_summary)
        prepare_points.append(prepare_summary)
    durability_points = []
    for n in (1000, 10000):
        durability_summary = compare_durability_at(
            n, answers_per_task=2, hit_size=10,
            rerun_every=max(n // 5, 100),
        )
        _report_durability(durability_summary)
        durability_points.append(durability_summary)
    resume_points = []
    for n in (1000, 10000):
        # A long campaign (5 answers/task): replay cost scales with
        # campaign length, snapshot load with n — the gap the snapshot
        # exists to open.
        resume_summary = compare_resume_at(
            n, answers_per_task=5, rerun_every=max(n // 5, 100)
        )
        _report_resume(resume_summary)
        resume_points.append(resume_summary)
    # Archive-heavy resume: fixed 20K-task pool and 400-answer tail,
    # archived count swept 50K -> 500K. The index-carrying snapshot
    # must hold resume cost flat across the sweep.
    archive_summary = compare_archived_resume_at(
        20000, (50000, 500000), tail=400
    )
    _report_archive_resume(archive_summary)
    analytics_summary = compare_analytics_at(5000, 100000, 500)
    _report_analytics(analytics_summary)
    serve_points = []
    for n in (1000, 10000, 100000):
        serve_summary = compare_serve_at(n)
        _report_serve(serve_summary)
        serve_points.append(serve_summary)
    parallel_summary = compare_parallel_at(100000)
    _report_parallel(parallel_summary)
    parallel_rerun = compare_parallel_rerun_at(20000, shards=4)
    _report_parallel_rerun(parallel_rerun)
    parallel_link = compare_parallel_link_at(10000, workers=4)
    _report_parallel_link(parallel_link)
    payload = {
        "benchmark": "arena_vs_legacy_serving_path",
        "workload": "synthetic round-robin campaign (see module docstring)",
        "machine": machine_metadata(),
        "points": points,
        "prepare": {
            "benchmark": "ingest_pipeline_vs_legacy_prepare",
            "workload": (
                "synthetic KB-linked tasks: "
                f"{NUM_SURFACES} ambiguous surfaces, 2-4 mentions/task "
                "(see module docstring)"
            ),
            "points": prepare_points,
        },
        "durability": {
            "benchmark": "sqlite_journal_vs_memory_serving_path",
            "workload": (
                "identical arena campaigns; sqlite path spills every "
                "answer through the write-behind journal to a file "
                "(final checkpoint included)"
            ),
            "points": durability_points,
        },
        "resume": {
            "benchmark": "snapshot_load_vs_full_journal_replay",
            "workload": (
                "journaled DocsSystem campaign (precomputed vectors, "
                "5 answers/task) resumed from its close-time snapshot "
                "vs by replaying every journal event"
            ),
            "points": resume_points,
            "archive": {
                "benchmark": (
                    "index_carrying_snapshot_vs_archive_scan_resume"
                ),
                "workload": (
                    "fixed task pool and live tail; archived-answer "
                    "count swept with the snapshot either carrying "
                    "the serialised answer-log index or not; resumed "
                    "states verified identical across both restore "
                    "paths"
                ),
                **{
                    k: archive_summary[k]
                    for k in (
                        "num_tasks", "tail", "points",
                        "archive_growth", "carry_cost_ratio",
                        "scan_cost_ratio",
                    )
                },
            },
        },
        "analytics": {
            "benchmark": "sql_pushdown_vs_python_reference",
            "workload": (
                "archived + tail campaign file; every registered "
                "analytics query run through the covering-index SQL "
                "plane and the naive Python reference, results "
                "verified bit-identical"
            ),
            **{
                k: analytics_summary[k]
                for k in (
                    "num_tasks", "archived", "tail", "answers",
                    "queries",
                )
            },
        },
        "serve": {
            "benchmark": "assignment_index_vs_brute_force_assign",
            "workload": (
                "campaign-warm arena; per-arrival assign for a "
                "stable-quality worker with 10 answers from other "
                "workers dirtying rows between arrivals; picks "
                "verified identical on every arrival"
            ),
            "points": serve_points,
        },
        "parallel": {
            "benchmark": "serving_pool_vs_single_process_oracle",
            "workload": (
                "campaign-warm shared arena at n=100K; a fixed batch "
                "of HIT requests served through the multi-process "
                "ServingPool at 1/2/4 workers, every pick verified "
                "bit-identical to the single-process AssignmentIndex; "
                "plus sharded full-TI rerun vs the in-process solver "
                "and parallel batch linking vs the sequential cached "
                "path"
            ),
            "assign": parallel_summary,
            "rerun": parallel_rerun,
            "link": parallel_link,
        },
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    failed = False
    at_10k = next(p for p in points if p["num_tasks"] == 10000)
    if at_10k["speedup_e2e"] < 5.0:
        print(
            f"WARNING: 10K e2e speedup {at_10k['speedup_e2e']:.1f}x "
            "below the 5x target",
            file=sys.stderr,
        )
        failed = True
    prepare_10k = next(
        p for p in prepare_points if p["num_tasks"] == 10000
    )
    if prepare_10k["speedup_e2e"] < 3.0:
        print(
            f"WARNING: 10K prepare speedup "
            f"{prepare_10k['speedup_e2e']:.1f}x below the 3x target",
            file=sys.stderr,
        )
        failed = True
    durability_10k = next(
        p for p in durability_points if p["num_tasks"] == 10000
    )
    if durability_10k["overhead_pct"] > 10.0:
        print(
            f"WARNING: 10K journal overhead "
            f"{durability_10k['overhead_pct']:.1f}% above the 10% target",
            file=sys.stderr,
        )
        failed = True
    resume_10k = next(
        p for p in resume_points if p["num_tasks"] == 10000
    )
    if resume_10k["speedup_resume"] < 5.0:
        print(
            f"WARNING: 10K resume speedup "
            f"{resume_10k['speedup_resume']:.1f}x below the 5x target",
            file=sys.stderr,
        )
        failed = True
    if archive_summary["carry_cost_ratio"] > 1.2:
        print(
            f"WARNING: index-carry resume cost grew "
            f"x{archive_summary['carry_cost_ratio']:.2f} over a "
            f"x{archive_summary['archive_growth']:.0f} archive sweep "
            "— above the 1.2x flatness target",
            file=sys.stderr,
        )
        failed = True
    serve_100k = next(
        p for p in serve_points if p["num_tasks"] == 100000
    )
    if serve_100k["speedup_assign"] < 5.0:
        print(
            f"WARNING: 100K warm-index assign speedup "
            f"{serve_100k['speedup_assign']:.1f}x below the 5x target",
            file=sys.stderr,
        )
        failed = True
    serve_10k = next(
        p for p in serve_points if p["num_tasks"] == 10000
    )
    if serve_10k["speedup_assign"] < 1.0:
        print(
            f"WARNING: warm-index assign at n=10K is slower than "
            f"brute force ({serve_10k['speedup_assign']:.2f}x)",
            file=sys.stderr,
        )
        failed = True
    # The parallel targets need the cores to exist: a 4-worker pool on
    # a 1-core host serialises on the CPU and can only show queueing
    # overhead. Speedups are recorded honestly either way (alongside
    # the machine metadata); the targets are enforced only on hosts
    # that can physically meet them.
    cpu = os.cpu_count() or 1
    if cpu >= 4:
        if parallel_summary["speedup_4w_vs_1w"] < 3.0:
            print(
                f"WARNING: 4-worker assign speedup "
                f"{parallel_summary['speedup_4w_vs_1w']:.2f}x below "
                "the 3x target",
                file=sys.stderr,
            )
            failed = True
        if parallel_rerun["speedup_rerun"] < 1.8:
            print(
                f"WARNING: 4-shard rerun speedup "
                f"{parallel_rerun['speedup_rerun']:.2f}x below the "
                "1.8x target",
                file=sys.stderr,
            )
            failed = True
        if parallel_link["speedup_link"] < 1.8:
            print(
                f"WARNING: 4-worker linking speedup "
                f"{parallel_link['speedup_link']:.2f}x below the "
                "1.8x target",
                file=sys.stderr,
            )
            failed = True
    if cpu >= 2:
        if parallel_summary["speedup_2w_vs_1w"] < 1.5:
            print(
                f"WARNING: 2-worker assign speedup "
                f"{parallel_summary['speedup_2w_vs_1w']:.2f}x below "
                "the 1.5x target",
                file=sys.stderr,
            )
            failed = True
    else:
        print(
            f"note: host has {cpu} core(s) — parallel speedup targets "
            "need >= 2 cores and were not enforced (identity checks "
            "still ran)",
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
