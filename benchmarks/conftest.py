"""Shared fixtures for the benchmark suite.

Contexts are built once per dataset at paper scale and shared across
benchmark files. Every benchmark renders the same rows/series the paper
reports and appends them to ``benchmarks/results/<name>.txt`` so the
regenerated tables survive pytest's output capturing.
"""

import pathlib

import pytest

from repro.experiments import build_context

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Master seed for all full-scale benchmark runs.
BENCH_SEED = 7


@pytest.fixture(scope="session")
def contexts():
    """Paper-scale contexts for all four datasets (built lazily)."""
    cache = {}

    def get(name: str):
        if name not in cache:
            cache[name] = build_context(name, seed=BENCH_SEED)
        return cache[name]

    return get


@pytest.fixture(scope="session")
def record_table():
    """Writer: persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, content: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(content + "\n")
        # Also echo for -s runs.
        print(f"\n{content}\n")

    return write
