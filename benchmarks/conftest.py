"""Shared fixtures for the benchmark suite.

Contexts are built once per dataset at paper scale and shared across
benchmark files. Every benchmark renders the same rows/series the paper
reports and appends them to ``benchmarks/results/<name>.txt`` so the
regenerated tables survive pytest's output capturing.
"""

import pathlib
import re

import pytest

from repro.experiments import build_context

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Master seed for all full-scale benchmark runs.
BENCH_SEED = 7


@pytest.fixture(scope="session")
def contexts():
    """Paper-scale contexts for all four datasets (built lazily)."""
    cache = {}

    def get(name: str):
        if name not in cache:
            cache[name] = build_context(name, seed=BENCH_SEED)
        return cache[name]

    return get


@pytest.fixture(scope="session")
def record_table():
    """Writer: persist a rendered table under benchmarks/results/.

    Byte-stable across reruns: when ``volatile`` regexes are given,
    their matches (timing columns, which genuinely vary run to run) are
    masked out of both the new table and the file on disk before
    comparing — the file is rewritten only when the *non*-volatile
    content (accuracies, counts, gammas) actually changed, so
    ``git diff`` on benchmarks/results/ shows real regressions, not
    wall-clock noise.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, content: str, volatile=()) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        new_text = content + "\n"

        def mask(text: str) -> str:
            for pattern in volatile:
                text = re.sub(pattern, "#", text)
            return text

        if not path.exists() or mask(path.read_text()) != mask(new_text):
            path.write_text(new_text)
        # Also echo for -s runs.
        print(f"\n{content}\n")

    return write
