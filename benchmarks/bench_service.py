"""Open-loop traffic generator for the HTTP service plane.

Measures what a serving system is judged by: requests/s sustained and
p50/p99 end-to-end latency under **open-loop** load — arrivals fire on
a fixed clock regardless of how fast responses come back, so queueing
delay is visible instead of hidden by a closed loop's self-throttling.

Three phases against one in-process server (real sockets, stdlib
HTTP):

1. **Open loop** — a Poisson-ish fixed-rate mix of assignment requests
   and answer submits from a pool of bootstrapped workers.
2. **Burst** — the scheduler is paused and a concurrent volley lands
   on the bounded queue, provoking 429 + Retry-After deterministically.
3. **Conservation** — after drain + checkpoint, every 2xx-acked answer
   must sit in the journal's committed rows (zero accepted-answer
   loss), and nothing may have answered 5xx at any point.

Results merge into BENCH_perf.json under a "service" section with
host metadata. Usage:

    PYTHONPATH=src python benchmarks/bench_service.py --smoke  # CI gate
    PYTHONPATH=src python benchmarks/bench_service.py          # full run

The smoke gates follow the PR 7 convention: hard correctness gates
(zero 5xx, zero accepted loss, 429s present, >= 1 req/s) always arm;
latency targets arm only on >= 2-core hosts — a 1-core container
timeshares client, event loop, and scheduler threads, so its tail
latency measures the GIL, not the service.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets import make_dataset  # noqa: E402
from repro.service import (  # noqa: E402
    DocsService,
    InThreadServer,
    ServiceConfig,
)

DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"


def machine_metadata() -> Dict[str, object]:
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": np.__version__,
    }


class Client:
    def __init__(self, base_url: str):
        self.base_url = base_url

    def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict, Dict[str, str]]:
        data = (
            json.dumps(body).encode("utf-8")
            if body is not None
            else None
        )
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method
        )
        if data is not None:
            req.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                return (
                    resp.status,
                    json.loads(resp.read()),
                    dict(resp.headers),
                )
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read()), dict(err.headers)


def percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples), q))


def run_bench(
    rate: float,
    duration: float,
    workers: int,
    tasks_per_domain: int,
    queue_limit: int,
    burst_size: int,
) -> Dict[str, object]:
    tmp = tempfile.mkdtemp(prefix="bench-service-")
    app = DocsService(
        ServiceConfig(db_dir=tmp, queue_limit=queue_limit)
    )
    server = InThreadServer(app).start()
    client = Client(server.base_url)
    dataset = make_dataset(
        "4d", seed=17, tasks_per_domain=tasks_per_domain
    )
    try:
        return _run_phases(
            app,
            client,
            dataset,
            rate=rate,
            duration=duration,
            workers=workers,
            tasks_per_domain=tasks_per_domain,
            queue_limit=queue_limit,
            burst_size=burst_size,
        )
    finally:
        server.stop()


def _run_phases(
    app,
    client,
    dataset,
    *,
    rate,
    duration,
    workers,
    tasks_per_domain,
    queue_limit,
    burst_size,
) -> Dict[str, object]:
    # ---- setup: one campaign, a pool of pre-tested workers ---------
    status, created, _ = client.request(
        "POST",
        "/campaigns",
        {
            "name": "bench",
            "dataset": "4d",
            "seed": 17,
            "storage": "sqlite",
            "config": {"golden_count": 4, "hit_size": 4,
                       "rerun_interval": 200},
            "dataset_overrides": {
                "tasks_per_domain": tasks_per_domain
            },
        },
    )
    assert status == 201, created
    worker_ids = [f"bench-w{i}" for i in range(workers)]
    _, golden, _ = client.request("GET", "/campaigns/bench/golden")
    golden_answers = [
        {
            "task_id": task_id,
            "choice": dataset.task_by_id(task_id).ground_truth,
        }
        for task_id in golden["golden_task_ids"]
    ]
    for worker_id in worker_ids:
        status, body, _ = client.request(
            "POST",
            f"/campaigns/bench/workers/{worker_id}/bootstrap",
            {"answers": golden_answers},
        )
        assert status == 200, body

    # Pre-plan each worker's answerable tasks so submits never collide
    # with the at-most-once constraint.
    all_task_ids = [t.task_id for t in dataset.tasks]
    pools = {w: list(all_task_ids) for w in worker_ids}
    pool_lock = threading.Lock()

    results_lock = threading.Lock()
    samples: Dict[str, List[float]] = {"assign": [], "submit": []}
    statuses: Dict[int, int] = {}
    acked_pairs: List[Tuple[str, int]] = []

    def record(kind: str, status: int, elapsed: float, extra=None):
        with results_lock:
            statuses[status] = statuses.get(status, 0) + 1
            if status == 200:
                samples[kind].append(elapsed)
                if kind == "submit" and extra is not None:
                    acked_pairs.append(extra)

    rng = np.random.default_rng(23)

    def one_request(index: int) -> None:
        worker_id = worker_ids[index % len(worker_ids)]
        if rng_choices[index]:
            start = time.perf_counter()
            status, body, _ = client.request(
                "GET",
                f"/campaigns/bench/workers/{worker_id}"
                "/assignment?k=4",
            )
            record("assign", status, time.perf_counter() - start)
        else:
            with pool_lock:
                if not pools[worker_id]:
                    return
                task_id = pools[worker_id].pop()
            payload = {
                "worker_id": worker_id,
                "task_id": task_id,
                "choice": int(1 + (task_id + index) % 2),
            }
            start = time.perf_counter()
            status, body, _ = client.request(
                "POST", "/campaigns/bench/answers", payload
            )
            record(
                "submit",
                status,
                time.perf_counter() - start,
                extra=(worker_id, task_id),
            )
            if status != 200:
                # 429 etc: the task was refused, put it back.
                with pool_lock:
                    pools[worker_id].append(task_id)

    # ---- phase 1: open loop ----------------------------------------
    total = int(rate * duration)
    rng_choices = rng.random(total) < 0.6  # 60% assigns, 40% submits
    interval = 1.0 / rate
    pool = ThreadPoolExecutor(max_workers=32)
    t0 = time.perf_counter()
    futures = []
    for index in range(total):
        target = t0 + index * interval
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        futures.append(pool.submit(one_request, index))
    for future in futures:
        future.result(timeout=120)
    elapsed = time.perf_counter() - t0
    pool.shutdown()

    # ---- phase 2: burst against a paused consumer ------------------
    app.scheduler.pause()
    burst_results: List[int] = []
    burst_lock = threading.Lock()

    def burst_submit(worker_id: str, task_id: int) -> None:
        status, body, _ = client.request(
            "POST",
            "/campaigns/bench/answers",
            {"worker_id": worker_id, "task_id": task_id, "choice": 1},
        )
        with burst_lock:
            burst_results.append(status)
        if status == 200:
            with results_lock:
                acked_pairs.append((worker_id, task_id))
        else:
            with pool_lock:
                pools[worker_id].append(task_id)

    burst_threads = []
    for i in range(burst_size):
        worker_id = worker_ids[i % len(worker_ids)]
        with pool_lock:
            if not pools[worker_id]:
                continue
            task_id = pools[worker_id].pop()
        burst_threads.append(
            threading.Thread(
                target=burst_submit, args=(worker_id, task_id)
            )
        )
    for thread in burst_threads:
        thread.start()
    time.sleep(0.5)
    max_depth_under_burst = app.scheduler.depth()
    app.scheduler.resume_consumer()
    for thread in burst_threads:
        thread.join(timeout=60)
    burst_429 = sum(1 for s in burst_results if s == 429)

    # ---- phase 3: conservation -------------------------------------
    status, body, _ = client.request(
        "POST", "/campaigns/bench/checkpoint"
    )
    assert status == 200, body
    system = app._campaigns["bench"].system
    journal = system.database.journal

    def read_committed():
        rows = journal.committed_answers_through(
            journal.last_committed_seq
        )
        return {(w, t) for _s, _r, t, w, _c in rows}

    committed = app.scheduler.submit_request(
        "control", None, run=read_committed, force=True
    ).result(timeout=60)
    acked = set(acked_pairs)
    lost = acked - committed
    phantom = committed - acked

    metrics = app.scheduler.metrics()
    five_xx = sum(
        count for code, count in statuses.items() if code >= 500
    )
    completed = sum(
        count for code, count in statuses.items() if code < 500
    )
    return {
        "benchmark": "open_loop_http_service",
        "workload": (
            f"{total} open-loop arrivals at {rate:.0f}/s "
            f"(60/40 assign/submit mix, {workers} workers, "
            f"queue_limit={queue_limit}) + a {burst_size}-wide "
            "paused-consumer burst; sqlite campaign, coalesced "
            "journal flushes"
        ),
        "machine": machine_metadata(),
        "offered_rate_per_s": rate,
        "achieved_rate_per_s": completed / elapsed,
        "open_loop_seconds": elapsed,
        "requests": total,
        "status_counts": {str(k): v for k, v in
                          sorted(statuses.items())},
        "responses_5xx": five_xx,
        "assign_p50_ms": percentile(samples["assign"], 50) * 1e3,
        "assign_p99_ms": percentile(samples["assign"], 99) * 1e3,
        "submit_p50_ms": percentile(samples["submit"], 50) * 1e3,
        "submit_p99_ms": percentile(samples["submit"], 99) * 1e3,
        "burst": {
            "size": len(burst_threads),
            "rejected_429": burst_429,
            "depth_under_burst": max_depth_under_burst,
            "queue_limit": queue_limit,
        },
        "queue_max_depth": metrics["max_depth"],
        "scheduler_submit_batches": metrics["batches"]["submit"],
        "acked_answers": len(acked),
        "committed_answers": len(committed),
        "acked_lost": len(lost),
        "phantom_committed": len(phantom),
    }


def gate(summary: Dict[str, object], smoke: bool) -> List[str]:
    failures = []
    if summary["responses_5xx"]:
        failures.append(
            f"{summary['responses_5xx']} responses were 5xx; the "
            "service must degrade, not error"
        )
    if summary["acked_lost"]:
        failures.append(
            f"{summary['acked_lost']} acked answers missing from the "
            "committed journal — accepted-answer loss"
        )
    if summary["burst"]["rejected_429"] < 1:
        failures.append(
            "the paused-consumer burst produced no 429s — "
            "backpressure never engaged"
        )
    if (
        summary["burst"]["depth_under_burst"]
        > summary["burst"]["queue_limit"]
    ):
        failures.append("queue depth exceeded its limit under burst")
    if summary["achieved_rate_per_s"] < 1.0:
        failures.append(
            f"achieved rate {summary['achieved_rate_per_s']:.2f}/s "
            "below the 1 req/s floor"
        )
    cpu = os.cpu_count() or 1
    if cpu >= 2:
        # Latency targets only where client, event loop, and
        # scheduler aren't timesharing one core.
        if summary["assign_p99_ms"] > 500.0:
            failures.append(
                f"assign p99 {summary['assign_p99_ms']:.1f} ms over "
                "the 500 ms target on a multi-core host"
            )
    return failures


def merge_into(out_path: Path, summary: Dict[str, object]) -> None:
    payload: Dict[str, object] = {}
    if out_path.exists():
        payload = json.loads(out_path.read_text())
    payload["service"] = summary
    out_path.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short CI run: ~30s of traffic, gates on, no file write",
    )
    parser.add_argument(
        "--rate", type=float, default=None,
        help="open-loop arrival rate (req/s)",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="open-loop phase length (seconds)",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help="full-mode output path (default: repo BENCH_perf.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        rate = args.rate or 25.0
        duration = args.duration or 30.0
        summary = run_bench(
            rate=rate,
            duration=duration,
            workers=6,
            tasks_per_domain=60,
            queue_limit=32,
            burst_size=64,
        )
    else:
        rate = args.rate or 50.0
        duration = args.duration or 60.0
        summary = run_bench(
            rate=rate,
            duration=duration,
            workers=8,
            tasks_per_domain=150,
            queue_limit=64,
            burst_size=128,
        )

    print(
        f"open loop: {summary['requests']} requests at "
        f"{summary['offered_rate_per_s']:.0f}/s offered, "
        f"{summary['achieved_rate_per_s']:.1f}/s achieved"
    )
    print(
        f"assign latency p50={summary['assign_p50_ms']:.1f} ms "
        f"p99={summary['assign_p99_ms']:.1f} ms; submit "
        f"p50={summary['submit_p50_ms']:.1f} ms "
        f"p99={summary['submit_p99_ms']:.1f} ms"
    )
    print(
        f"burst: {summary['burst']['rejected_429']} x 429 of "
        f"{summary['burst']['size']} (depth "
        f"{summary['burst']['depth_under_burst']}/"
        f"{summary['burst']['queue_limit']})"
    )
    print(
        f"conservation: {summary['acked_answers']} acked == "
        f"{summary['committed_answers']} committed "
        f"(lost={summary['acked_lost']}, "
        f"phantom={summary['phantom_committed']}); "
        f"5xx={summary['responses_5xx']}"
    )

    failures = gate(summary, smoke=args.smoke)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    if not args.smoke:
        merge_into(args.out, summary)
        print(f"merged 'service' section into {args.out}")
    print("service bench ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
