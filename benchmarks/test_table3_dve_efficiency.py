"""Table 3: DVE efficiency — Algorithm 1 vs Enumeration, top-c sweep.

Regenerates the paper's table for all four datasets. The pattern that
must hold: Algorithm 1 completes in seconds everywhere; enumeration's
linking count explodes with the candidate cutoff and the entity-rich
datasets (QA, SFV) exceed the work budget (the reproduction's analogue
of the paper's "> 1 day").
"""

import numpy as np
import pytest

from repro.core.dve import domain_vector
from repro.experiments.table3 import (
    DEFAULT_WORK_BUDGET,
    format_dve_efficiency,
    run_dve_efficiency,
)

DATASETS = ("item", "4d", "qa", "sfv")


@pytest.fixture(scope="module")
def table3_rows(contexts):
    return {
        name: run_dve_efficiency(contexts(name))
        for name in DATASETS
    }


def test_table3_report(table3_rows, record_table, benchmark):
    rendered = "\n\n".join(
        format_dve_efficiency(rows) for rows in table3_rows.values()
    )
    # The two timing columns vary run to run; #linkings (last column)
    # is deterministic and is what the file should diff on.
    record_table(
        "table3_dve_efficiency",
        rendered,
        volatile=(
            r"(?m)(?<=\d)\s+\d+\.\d+\s+(?:\d+\.\d+|> budget)(?=\s+\d+$)",
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for rows in table3_rows.values():
        # Algorithm 1 stays in interactive time on every dataset/cutoff.
        assert all(r.algorithm1_seconds < 120 for r in rows)


def test_enumeration_explodes_with_cutoff(table3_rows):
    """|Omega| grows monotonically with the candidate cutoff."""
    for rows in table3_rows.values():
        by_c = {r.top_c: r.enumeration_linkings for r in rows}
        assert by_c[20] >= by_c[10] >= by_c[3]


def test_entity_rich_datasets_exceed_budget(table3_rows):
    """The entity-rich dataset blows the enumeration budget at the
    default cutoff (the '>1 day' cells of the paper's table), and the
    blow-up ordering follows entity richness: QA >> SFV >> Item/4D."""
    qa_top20 = next(r for r in table3_rows["qa"] if r.top_c == 20)
    assert qa_top20.enumeration_seconds is None
    assert qa_top20.enumeration_linkings > DEFAULT_WORK_BUDGET

    def linkings(name):
        return next(
            r for r in table3_rows[name] if r.top_c == 20
        ).enumeration_linkings

    assert linkings("qa") > 10 * linkings("sfv")
    assert linkings("sfv") > 10 * linkings("item")
    assert linkings("sfv") > 10 * linkings("4d")


def test_bench_algorithm1_single_task(contexts, benchmark):
    """Micro-kernel: Algorithm 1 on one entity-rich QA task."""
    context = contexts("qa")
    linked = max(
        (context.linker.link(t.text) for t in context.dataset.tasks),
        key=lambda entities: sum(e.num_candidates for e in entities),
    )
    result = benchmark(domain_vector, linked)
    assert result.sum() <= 1.0 + 1e-9


def test_bench_algorithm1_full_item(contexts, benchmark):
    """Algorithm 1 over the full Item dataset (one Table 3 cell)."""
    context = contexts("item")
    linked = [
        context.linker.link(task.text)
        for task in context.dataset.tasks
    ]
    linked = [e for e in linked if e]

    def run_all():
        for entities in linked:
            domain_vector(entities)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
