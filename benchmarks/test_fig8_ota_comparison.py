"""Figure 8: end-to-end online task assignment comparison.

The reproduced pattern: random Baseline and AskIt! at the bottom,
worker-model methods (IC, QASCA) in the middle, domain-aware assignment
(D-Max, DOCS) on top with DOCS leading; all assignments in milliseconds;
OTA time linear in n and ~invariant in k.
"""

import numpy as np
import pytest

from repro.core.assignment import TaskAssigner
from repro.experiments.fig8 import (
    ENGINE_ORDER,
    format_ota_comparison,
    format_ota_scalability,
    run_ota_comparison,
    run_ota_scalability,
)

DATASETS = ("item", "4d", "qa", "sfv")
SEED = 7


@pytest.fixture(scope="module")
def fig8_results():
    return {
        name: run_ota_comparison(name, seed=SEED) for name in DATASETS
    }


def test_fig8_report(fig8_results, record_table, benchmark):
    rendered = format_ota_comparison(list(fig8_results.values()))
    # The Figure 8(b) timing table is wall-clock noise run to run;
    # rewrite the file only when the accuracy table actually moved.
    record_table(
        "fig8_ota_comparison",
        rendered,
        volatile=(r"(?s)Figure 8\(b\).*",),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_docs_wins_every_dataset(fig8_results):
    """Figure 8(a)'s headline: DOCS outperforms or matches the best
    competitor on every dataset (within 3 points — on SFV the iCrowd
    engine's equal-spread policy is unusually strong in our simulated
    crowd; see EXPERIMENTS.md), and leads on average."""
    means = {
        e: np.mean([r.accuracy[e] for r in fig8_results.values()])
        for e in ENGINE_ORDER
    }
    assert means["DOCS"] == max(means.values())
    for name, result in fig8_results.items():
        best_other = max(
            result.accuracy[e] for e in ENGINE_ORDER if e != "DOCS"
        )
        assert result.accuracy["DOCS"] >= best_other - 3.0, name


def test_baseline_is_worst_tier(fig8_results):
    for result in fig8_results.values():
        assert result.accuracy["Baseline"] <= result.accuracy["DOCS"]
        assert result.accuracy["Baseline"] <= result.accuracy["D-Max"]


def test_domain_aware_assignment_pays(fig8_results):
    """D-Max and DOCS (domain-aware) beat the domain-blind engines on
    average — the paper's justification for the third assignment
    factor."""
    def mean_of(engine):
        return np.mean(
            [r.accuracy[engine] for r in fig8_results.values()]
        )

    domain_aware = min(mean_of("D-Max"), mean_of("DOCS"))
    assert domain_aware > mean_of("Baseline")
    assert domain_aware > mean_of("AskIt!")
    assert domain_aware > mean_of("QASCA")


def test_assignment_is_fast(fig8_results):
    """Figure 8(b): worst-case assignment stays in interactive time
    (paper: < 0.02s; generous envelope for slower machines)."""
    for result in fig8_results.values():
        for engine, worst in result.max_assign_seconds.items():
            assert worst < 0.5, engine


def test_fig8c_scalability(record_table, benchmark):
    points = run_ota_scalability(
        task_counts=(2000, 4000, 6000, 8000, 10000),
        hit_sizes=(5, 10, 50),
        seed=11,
    )
    record_table(
        "fig8c_ota_scalability",
        format_ota_scalability(points),
        volatile=(r"(?m)\s+\d+\.\d+\s*$",),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Paper: one assignment within 0.2s at n = 10K, independent of k.
    at_10k = [p for p in points if p.num_tasks == 10000]
    assert all(p.seconds < 2.0 for p in at_10k)
    spread = max(p.seconds for p in at_10k) / max(
        min(p.seconds for p in at_10k), 1e-6
    )
    assert spread < 10.0  # k barely matters


def test_bench_one_assignment(benchmark):
    """Micro-kernel: one k=20 assignment over 10K arena tasks."""
    from repro.experiments.fig8 import _synthetic_arena
    from repro.utils.rng import make_rng

    rng = make_rng(12)
    arena = _synthetic_arena(10000, 20, 2, rng)
    arena.refresh_entropies()
    quality = rng.uniform(0.3, 0.95, size=20)
    assigner = TaskAssigner(hit_size=20)
    chosen = benchmark(assigner.assign, arena, quality)
    assert len(chosen) == 20
