"""Figure 6: worker-quality case study on the Item dataset."""

import numpy as np
import pytest

from repro.experiments.fig6 import (
    calibration_error,
    format_case_study,
    run_case_study,
)


@pytest.fixture(scope="module")
def study(contexts):
    return run_case_study(contexts("item"), min_answers=20)


def test_fig6_report(study, record_table, benchmark):
    record_table("fig6_case_study", format_case_study(study))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_histogram_covers_all_domains(study):
    assert set(study.histogram) == {"NBA", "Food", "Auto", "Country"}
    for bins in study.histogram.values():
        assert len(bins) == 10
        assert sum(bins) > 0


def test_workers_have_diverse_qualities(study):
    """Figure 6(a)'s point: worker quality is domain-dependent — the
    per-domain histograms are not all concentrated in one bin."""
    spreads = []
    for bins in study.histogram.values():
        occupied = [i for i, b in enumerate(bins) if b > 0]
        spreads.append(max(occupied) - min(occupied))
    assert max(spreads) >= 3


def test_top_workers_calibrated(study):
    """Figure 6(b): estimated quality tracks true quality (points near
    Y = X) for the most active workers."""
    points = [
        p for pts in study.top_worker_points.values() for p in pts
    ]
    assert points
    assert calibration_error(points) < 0.2


def test_first_domain_calibration(study):
    """Figure 6(c): calibration across all workers with > 20 NBA
    answers."""
    assert study.nba_points
    assert calibration_error(study.nba_points) < 0.25
