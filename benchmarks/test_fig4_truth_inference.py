"""Figure 4: the five TI studies (convergence, sweeps, scalability)."""

import numpy as np
import pytest

from repro.core.truth_inference import TruthInference
from repro.experiments.fig4 import (
    run_answer_sweep,
    run_convergence,
    run_golden_sweep,
    run_quality_estimation,
    run_scalability,
)

DATASETS = ("item", "4d", "qa", "sfv")


def test_fig4a_convergence(contexts, record_table, benchmark):
    series = {
        name: run_convergence(contexts(name), iterations=50)
        for name in DATASETS
    }
    lines = ["Figure 4(a): parameter change Delta per iteration"]
    lines.append(
        f"{'iter':>5s}" + "".join(f"{name:>10s}" for name in DATASETS)
    )
    for i in range(0, 50, 5):
        lines.append(
            f"{i + 1:>5d}"
            + "".join(f"{series[name][i]:10.4f}" for name in DATASETS)
        )
    record_table("fig4a_convergence", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for deltas in series.values():
        # Paper: Delta drops sharply within ~10 iterations, then steady.
        assert deltas[9] < deltas[0] / 2
        assert deltas[-1] < 0.02


def test_fig4b_golden_sweep(contexts, record_table, benchmark):
    counts = (0, 5, 10, 15, 20, 30, 40)
    sweeps = {
        name: run_golden_sweep(contexts(name), golden_counts=counts)
        for name in DATASETS
    }
    lines = ["Figure 4(b): accuracy (%) vs #golden tasks"]
    lines.append(
        f"{'golden':>7s}" + "".join(f"{name:>9s}" for name in DATASETS)
    )
    for count in counts:
        lines.append(
            f"{count:>7d}"
            + "".join(f"{sweeps[name][count]:9.1f}" for name in DATASETS)
        )
    record_table("fig4b_golden_sweep", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for sweep in sweeps.values():
        # Golden initialisation helps; beyond ~20 it plateaus.
        assert sweep[20] >= sweep[0] - 3.0
        assert abs(sweep[40] - sweep[20]) < 8.0


def test_fig4c_answer_sweep(contexts, record_table, benchmark):
    counts = tuple(range(1, 11))
    sweeps = {
        name: run_answer_sweep(contexts(name), answer_counts=counts)
        for name in DATASETS
    }
    lines = ["Figure 4(c): accuracy (%) vs #answers per task"]
    lines.append(
        f"{'answers':>8s}" + "".join(f"{name:>9s}" for name in DATASETS)
    )
    for count in counts:
        lines.append(
            f"{count:>8d}"
            + "".join(f"{sweeps[name][count]:9.1f}" for name in DATASETS)
        )
    record_table("fig4c_answer_sweep", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for sweep in sweeps.values():
        assert sweep[10] > sweep[1]


def test_fig4d_quality_estimation(contexts, record_table, benchmark):
    counts = (1, 5, 10, 20, 40, 60, 80, 100)
    curves = {
        name: run_quality_estimation(
            contexts(name), answered_counts=counts
        )
        for name in DATASETS
    }
    lines = ["Figure 4(d): mean |q_true - q_est| vs #answered tasks"]
    lines.append(
        f"{'tasks':>6s}" + "".join(f"{name:>9s}" for name in DATASETS)
    )
    for count in counts:
        lines.append(
            f"{count:>6d}"
            + "".join(f"{curves[name][count]:9.3f}" for name in DATASETS)
        )
    record_table("fig4d_quality_estimation", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for curve in curves.values():
        # Deviation shrinks (or at least doesn't grow) with evidence.
        assert curve[80] <= curve[1] + 0.02


def test_fig4e_scalability(record_table, benchmark):
    points = run_scalability(
        task_counts=(2000, 4000, 6000, 8000, 10000),
        worker_counts=(10, 100, 500),
        seed=3,
    )
    lines = ["Figure 4(e): TI execution time (s), m=20, 10 answers/task"]
    lines.append(f"{'workers':>8s}{'tasks':>8s}{'seconds':>10s}")
    for p in points:
        lines.append(
            f"{p.num_workers:>8d}{p.num_tasks:>8d}{p.seconds:10.3f}"
        )
    record_table(
        "fig4e_ti_scalability",
        "\n".join(lines),
        volatile=(r"(?m)\s+\d+\.\d+\s*$",),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Linear in n: 10K tasks takes well under the paper's 15s envelope.
    assert all(p.seconds < 15.0 for p in points)
    # Roughly invariant in |W| at fixed n.
    at_10k = {p.num_workers: p.seconds for p in points if p.num_tasks == 10000}
    assert max(at_10k.values()) < 12 * max(min(at_10k.values()), 0.01)


def test_bench_ti_one_run(contexts, benchmark):
    """Micro-kernel: one full iterative TI on the QA answer set."""
    context = contexts("qa")
    ti = TruthInference()

    def run():
        return ti.infer(context.dataset.tasks, context.answers)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.iterations >= 1
