"""Figure 5: truth-inference comparison — MV/ZC/DS/IC/FC/DOCS.

The reproduced pattern: MV clearly worst, scalar/matrix EMs (ZC, DS) in
the middle, domain-aware methods on top with DOCS leading or tied within
noise (the paper's IC/FC are handed ground-truth domains here, exactly as
Section 6.3 prescribes).
"""

import numpy as np
import pytest

from repro.experiments.fig5 import (
    METHOD_ORDER,
    format_ti_comparison,
    run_ti_comparison,
)

DATASETS = ("item", "4d", "qa", "sfv")


@pytest.fixture(scope="module")
def fig5_results(contexts):
    return {
        name: run_ti_comparison(contexts(name)) for name in DATASETS
    }


def test_fig5_report(fig5_results, record_table, benchmark):
    rendered = format_ti_comparison(list(fig5_results.values()))
    record_table(
        "fig5_ti_comparison",
        rendered,
        # Figure 5(b) is wall-clock; only 5(a)'s accuracies are stable.
        volatile=(r"(?s)Figure 5\(b\).*",),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_mv_is_worst(fig5_results):
    for result in fig5_results.values():
        others = [
            result.accuracy[m] for m in METHOD_ORDER if m != "MV"
        ]
        assert result.accuracy["MV"] <= min(others) + 2.0


def test_docs_top_or_tied(fig5_results):
    """DOCS leads every dataset, within small-sample noise of the best
    competitor (paper: strict lead on all four)."""
    for name, result in fig5_results.items():
        best_other = max(
            result.accuracy[m] for m in METHOD_ORDER if m != "DOCS"
        )
        assert result.accuracy["DOCS"] >= best_other - 2.5, name


def test_domain_aware_beats_domain_blind(fig5_results):
    """Mean over datasets: {IC, FC, DOCS} > {ZC, DS} (the paper's
    grouping argument for Figure 5(a))."""
    def mean_of(method):
        return np.mean(
            [r.accuracy[method] for r in fig5_results.values()]
        )

    best_blind = max(mean_of("ZC"), mean_of("DS"))
    assert mean_of("DOCS") > best_blind
    assert mean_of("FC") > best_blind


def test_mv_is_fastest(fig5_results):
    for result in fig5_results.values():
        others = [
            result.seconds[m] for m in METHOD_ORDER if m != "MV"
        ]
        assert result.seconds["MV"] <= min(others)


def test_bench_docs_ti(contexts, benchmark):
    """Micro-kernel: DOCS's TI on the Item answers (Figure 5(b) cell)."""
    from repro.baselines import make_truth_method

    context = contexts("item")
    method = make_truth_method("DOCS")

    def run():
        return method.infer_truths(
            context.dataset.tasks, context.answers, context.golden
        )

    truths = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(truths) == context.dataset.num_tasks
