"""Cross-engine arena: every registered engine on shared workloads.

Runs any engine from :mod:`repro.engines` through the
:class:`repro.platform.PlatformSimulator` campaign loop on two fixed
workloads and reports, per engine:

- **accuracy** — fraction of ground-truth tasks inferred correctly;
- **cost** — budgeted answers consumed plus golden pre-test answers
  (the spend the requester pays for);
- **latency** — mean and worst-case wall time of one ``assign`` call,
  plus end-to-end campaign wall time;
- **unanswered** — tasks finalized without a single answer, i.e. tasks
  whose reported truth is the engine's documented uninformed default
  (choice 1), not an inference.

Workloads:

- **fig8** — the paper's end-to-end OTA comparison shape: the Item
  dataset at paper scale, 10 answers per task, HITs of k = 3.
- **fig7** — a golden-pre-test-heavy shape on the QA generator: a
  larger worker pool churning through bootstrap pre-tests relative to
  the paid budget, so golden/bootstrap cost dominates the ledger.

The DOCS engine is benched **through the campaign shell**
(``DocsSystem(DocsConfig(engine="docs"))``) — the production path —
and, in full mode, one baseline also runs end-to-end through the
sqlite-durable shell (journal + resume machinery live) to price the
campaign surface for memory-only engines.

Equivalence gates (``--smoke``, the CI configuration):

1. DOCS through the shell issues **bit-identical HITs and truths** to
   the brute-force ``oracle`` registry entry (full-pool Eq. 8
   evaluation, no AssignmentIndex/ServingPool) — the refactor cannot
   have moved a single pick.
2. DOCS through the shell is identical to the bare ``docs`` engine —
   hosting adds storage, never behaviour.
3. Every registered engine completes the fig8 workload at n = 1K
   tasks and returns a truth for every task id.

Usage::

    PYTHONPATH=src python benchmarks/bench_engines.py --smoke  # CI gate
    PYTHONPATH=src python benchmarks/bench_engines.py          # full,
                                               # merges BENCH_engines.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import tempfile
import time

import numpy as np
from typing import Dict, List, Optional, Tuple

from repro.crowd.worker_pool import WorkerPool, WorkerPoolConfig
from repro.datasets import make_dataset
from repro.engines import engine_names, make_engine
from repro.platform.amt_sim import PlatformSimulator
from repro.system import DocsConfig, DocsSystem

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_engines.json"
)

#: The shared campaign workloads. ``n`` is the task count the workload
#: actually runs (recorded per point).
WORKLOADS: Dict[str, Dict[str, object]] = {
    "fig8": {
        "dataset": "item",
        "overrides": {},
        "answers_per_task": 10,
        "hit_size": 3,
        "pool_size": 50,
    },
    "fig7": {
        "dataset": "qa",
        "overrides": {"num_tasks": 240},
        "answers_per_task": 4,
        "hit_size": 20,
        "pool_size": 80,
    },
}


def _worker_pool(dataset, pool_size: int, seed: int) -> WorkerPool:
    active = tuple(d.taxonomy_index for d in dataset.domains)
    return WorkerPool.generate(
        WorkerPoolConfig(
            num_workers=pool_size,
            num_domains=dataset.taxonomy.size,
            active_domains=active,
            seed=seed + 1,
        )
    )


def _build_engine(
    name: str,
    seed: int,
    storage: str = "memory",
    path: Optional[str] = None,
):
    """A fresh engine for one campaign.

    ``docs`` (and any sqlite-storage run) goes through the campaign
    shell — the production configuration; every other name is the bare
    registry engine.
    """
    if name == "docs" or storage != "memory":
        return DocsSystem(
            DocsConfig(seed=seed, engine=name),
            storage=storage,
            path=path,
        )
    return make_engine(name, seed=seed)


def run_engine_campaign(
    engine_name: str,
    workload: str,
    seed: int = 7,
    storage: str = "memory",
    path: Optional[str] = None,
    overrides: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """One engine through one full simulated campaign.

    Returns the arena row: accuracy / cost / latency / unanswered,
    plus the HIT transcript and truths (for the equivalence gates;
    stripped before JSON).
    """
    spec = dict(WORKLOADS[workload])
    if overrides:
        spec.update(overrides)
    dataset = make_dataset(
        spec["dataset"], seed=seed, **spec["overrides"]
    )
    pool = _worker_pool(dataset, spec["pool_size"], seed)
    engine = _build_engine(engine_name, seed, storage=storage, path=path)
    simulator = PlatformSimulator(
        dataset,
        pool,
        answers_per_task=spec["answers_per_task"],
        hit_size=spec["hit_size"],
        seed=seed + 3,
    )
    started = time.perf_counter()
    report = simulator.run(engine)
    wall_seconds = time.perf_counter() - started
    unanswered = engine.unanswered_task_ids()
    missing = [
        t.task_id
        for t in dataset.tasks
        if t.task_id not in report.truths
    ]
    if missing:
        raise AssertionError(
            f"{engine_name} on {workload}: finalize() left "
            f"{len(missing)} task(s) without a truth (e.g. "
            f"{missing[:5]})"
        )
    if isinstance(engine, DocsSystem):
        engine.close()
    return {
        "engine": engine_name,
        "workload": workload,
        "storage": storage,
        "dataset": spec["dataset"],
        "num_tasks": dataset.num_tasks,
        "accuracy": report.accuracy,
        "paid_answers": report.total_answers,
        "golden_answers": report.golden_answers,
        "total_cost_answers": (
            report.total_answers + report.golden_answers
        ),
        "spend_dollars": report.hit_log.total_spend(),
        "hits_issued": len(report.hit_log),
        "assign_mean_ms": 1e3 * report.mean_assign_seconds,
        "assign_max_ms": 1e3 * report.max_assign_seconds,
        "e2e_s": wall_seconds,
        "unanswered_tasks": len(unanswered),
        "_hits": [
            (h.worker_id, h.task_ids) for h in report.hit_log.all()
        ],
        "_truths": dict(report.truths),
    }


def _strip_private(row: Dict[str, object]) -> Dict[str, object]:
    return {k: v for k, v in row.items() if not k.startswith("_")}


def check_shell_equivalence(
    seed: int = 7, overrides: Optional[Dict[str, object]] = None
) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """The refactor's bit-identity gates on the fig8 workload.

    DOCS hosted by the shell vs the bare ``docs`` engine vs the
    brute-force ``oracle``: all three must issue identical HIT
    transcripts and finalize identical truths.
    """
    shell = run_engine_campaign(
        "docs", "fig8", seed=seed, overrides=overrides
    )
    bare_engine = make_engine("docs", seed=seed)
    spec = dict(WORKLOADS["fig8"])
    if overrides:
        spec.update(overrides)
    dataset = make_dataset(
        spec["dataset"], seed=seed, **spec["overrides"]
    )
    pool = _worker_pool(dataset, spec["pool_size"], seed)
    report = PlatformSimulator(
        dataset,
        pool,
        answers_per_task=spec["answers_per_task"],
        hit_size=spec["hit_size"],
        seed=seed + 3,
    ).run(bare_engine)
    bare = {
        "_hits": [
            (h.worker_id, h.task_ids) for h in report.hit_log.all()
        ],
        "_truths": dict(report.truths),
    }
    oracle = run_engine_campaign(
        "oracle", "fig8", seed=seed, overrides=overrides
    )
    problems = []
    for label, other in (("bare docs engine", bare), ("oracle", oracle)):
        if shell["_hits"] != other["_hits"]:
            problems.append(
                f"shell-hosted DOCS issued different HITs than the "
                f"{label}"
            )
        if shell["_truths"] != other["_truths"]:
            problems.append(
                f"shell-hosted DOCS finalized different truths than "
                f"the {label}"
            )
    if problems:
        raise AssertionError("; ".join(problems))
    return shell, [_strip_private(oracle)]


def machine_metadata() -> Dict[str, object]:
    """What this run ran on — latency columns are meaningless
    without it."""
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": np.__version__,
    }


def _report_row(row: Dict[str, object]) -> None:
    tag = row["engine"]
    if row["storage"] != "memory":
        tag = f"{tag}+{row['storage']}"
    print(
        f"{row['workload']:>5s}  {tag:<16s} "
        f"acc {100 * row['accuracy']:5.1f}%   "
        f"cost {row['total_cost_answers']:>6d} "
        f"(golden {row['golden_answers']:>5d})   "
        f"assign {row['assign_mean_ms']:7.3f} ms "
        f"(max {row['assign_max_ms']:8.2f})   "
        f"e2e {row['e2e_s']:6.2f} s   "
        f"unanswered {row['unanswered_tasks']}"
    )


def _merge_results(out: pathlib.Path, points: List[Dict[str, object]],
                   meta: Dict[str, object]) -> None:
    """Merge this run's rows into ``BENCH_engines.json``.

    Rows are keyed by (workload, engine, storage): reruns replace their
    own rows and leave other engines' history in place, so partial
    sweeps accumulate into one table.
    """
    payload: Dict[str, object] = {
        "benchmark": "cross_engine_arena",
        "workloads": {
            name: {k: v for k, v in spec.items()}
            for name, spec in WORKLOADS.items()
        },
        "points": [],
    }
    if out.exists():
        try:
            payload = json.loads(out.read_text())
        except json.JSONDecodeError:
            pass
    payload.update(meta)

    def key(row: Dict[str, object]) -> Tuple[str, str, str]:
        return (
            str(row.get("workload")),
            str(row.get("engine")),
            str(row.get("storage", "memory")),
        )

    merged = {key(row): row for row in payload.get("points", [])}
    for row in points:
        merged[key(row)] = row
    payload["points"] = sorted(
        merged.values(),
        key=lambda r: (r["workload"], r["engine"], r["storage"]),
    )
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"merged {len(points)} row(s) into {out}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI gate: shell/oracle bit-identity plus every registered "
            "engine completing fig8 at n=1K; no JSON written"
        ),
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=DEFAULT_OUT,
        help=(
            "full-mode output path (default: repo-root "
            "BENCH_engines.json; merged, not overwritten)"
        ),
    )
    parser.add_argument(
        "--engines",
        nargs="*",
        default=None,
        help="restrict the full sweep to these registry names",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        # Gate 1+2: shell-hosted DOCS vs bare engine vs brute oracle,
        # bit-identical transcripts on a trimmed fig8 workload.
        overrides = {"answers_per_task": 3, "pool_size": 20}
        shell, _ = check_shell_equivalence(overrides=overrides)
        _report_row(shell)
        print(
            "equivalence ok: shell-hosted DOCS, the bare docs engine, "
            "and the brute-force oracle issued identical HITs and "
            "identical truths"
        )
        # Gate 3: every registered engine completes fig8 at n=1K.
        gate = {
            "dataset": "qa",
            "overrides": {"num_tasks": 1000},
            "answers_per_task": 2,
            "pool_size": 40,
        }
        for name in engine_names():
            row = run_engine_campaign(
                name, "fig8", overrides=gate
            )
            _report_row(row)
        # One baseline end-to-end through the sqlite-durable shell.
        with tempfile.TemporaryDirectory() as tmp:
            row = run_engine_campaign(
                "random",
                "fig8",
                storage="sqlite",
                path=str(pathlib.Path(tmp) / "arena.db"),
                overrides=gate,
            )
            _report_row(row)
        print(
            f"smoke ok: all {len(engine_names())} registered engines "
            "completed fig8 at n=1K with full truth coverage, and a "
            "baseline ran end-to-end through the sqlite campaign shell"
        )
        return 0

    names = args.engines or engine_names()
    unknown = sorted(set(names) - set(engine_names()))
    if unknown:
        print(
            f"unknown engine(s) {unknown}; registered: "
            f"{engine_names()}",
            file=sys.stderr,
        )
        return 2
    points: List[Dict[str, object]] = []
    shell, oracle_rows = check_shell_equivalence()
    _report_row(shell)
    points.append(_strip_private(shell))
    points.extend(oracle_rows)
    for row in oracle_rows:
        _report_row(row)
    for workload in WORKLOADS:
        for name in names:
            if name in ("docs", "oracle") and workload == "fig8":
                continue  # already recorded by the equivalence pass
            row = run_engine_campaign(name, workload)
            _report_row(row)
            points.append(_strip_private(row))
    # The campaign-shell tax for a memory-only engine: one baseline
    # through the full sqlite-durable shell (journal + golden registry
    # + replay-ready file).
    with tempfile.TemporaryDirectory() as tmp:
        row = run_engine_campaign(
            "random",
            "fig8",
            storage="sqlite",
            path=str(pathlib.Path(tmp) / "arena.db"),
        )
        _report_row(row)
        points.append(_strip_private(row))
    _merge_results(args.out, points, meta={"machine": machine_metadata()})
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
