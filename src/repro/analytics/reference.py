"""Naive Python reference for the SQL-pushdown analytics queries.

Each function here hydrates the full durable answer stream (archive +
committed log, in seq order) into Python structures and computes the
report with plain loops — exactly the object-walking cost the SQL plane
avoids. The test suite asserts :func:`run_reference` output is
**bit-identical** to :func:`repro.analytics.queries.run_query` for every
query, so this module is the executable specification of the plane: all
integer counting happens identically, and every float is produced by
the same IEEE-double division the SQL path defers to Python (or, for
leaderboard ranking, performs with ``1.0 * correct / graded``, which is
the same operation).

Parameter parsing and defaulting are shared with the SQL side, so the
``params`` echo in the result dict matches too.
"""

from __future__ import annotations

import sqlite3
from collections import defaultdict
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analytics.queries import _lookup, _parse_params


def _scope_rows(
    conn: sqlite3.Connection,
) -> List[Tuple[int, int, str, int]]:
    """The durable answers as (seq, task_id, worker_id, choice), in
    seq order — same relation the SQL scope CTE ranges over."""
    return conn.execute(
        """
        SELECT seq, task_id, worker_id, choice FROM answers_archive
        UNION ALL
        SELECT seq, task_id, worker_id, choice FROM answers_log
        WHERE kind = 0
        ORDER BY seq
        """
    ).fetchall()


def _task_facts(
    conn: sqlite3.Connection,
) -> Dict[int, Tuple[Optional[int], Optional[int]]]:
    """task_id -> (ground_truth, true_domain) for the whole catalogue."""
    return {
        task_id: (truth, domain)
        for task_id, truth, domain in conn.execute(
            "SELECT task_id, ground_truth, true_domain FROM tasks"
        )
    }


def _ref_worker_accuracy(conn, opts):
    window = opts["window"]
    facts = _task_facts(conn)
    answered: Dict[str, int] = defaultdict(int)
    graded_runs: Dict[str, List[bool]] = defaultdict(list)
    for _seq, task_id, worker_id, choice in _scope_rows(conn):
        answered[worker_id] += 1
        truth = facts[task_id][0]
        if truth is not None:
            graded_runs[worker_id].append(choice == truth)
    rows = []
    for worker in sorted(answered):
        run = graded_runs.get(worker, [])
        graded = len(run)
        correct = sum(run)
        tail = run[-window:]
        w_graded = len(tail)
        w_correct = sum(tail)
        rows.append({
            "worker": worker,
            "answered": answered[worker],
            "graded": graded,
            "correct": correct,
            "accuracy": (correct / graded) if graded else None,
            "window_graded": w_graded,
            "window_correct": w_correct,
            "window_accuracy": (
                (w_correct / w_graded) if w_graded else None
            ),
        })
    return rows


def _modal_choice(counts: Mapping[int, int]) -> int:
    # Count ties break toward the smaller choice, as in the SQL
    # ``ORDER BY c DESC, choice ASC`` modal pick.
    return min(counts, key=lambda choice: (-counts[choice], choice))


def _ref_convergence(conn, opts):
    facts = _task_facts(conn)
    per_task: Dict[int, List[int]] = defaultdict(list)
    for _seq, task_id, _worker_id, choice in _scope_rows(conn):
        per_task[task_id].append(choice)
    stats: Dict[int, List[int]] = defaultdict(lambda: [0, 0, 0, 0])
    for task_id, choices in per_task.items():
        n = len(choices)
        counts: Dict[int, int] = defaultdict(int)
        for choice in choices:
            counts[choice] += 1
        modal = _modal_choice(counts)
        early_counts: Dict[int, int] = defaultdict(int)
        for choice in choices[: (n + 1) // 2]:
            early_counts[choice] += 1
        domain = facts[task_id][1]
        entry = stats[-1 if domain is None else domain]
        entry[0] += 1
        entry[1] += n
        entry[2] += _modal_choice(early_counts) == modal
        entry[3] += counts[modal] == n
    catalogue: Dict[int, int] = defaultdict(int)
    for _truth, domain in facts.values():
        catalogue[-1 if domain is None else domain] += 1
    rows = []
    for domain in sorted(catalogue):
        answered, answers, settled, unanimous = stats.get(
            domain, (0, 0, 0, 0)
        )
        rows.append({
            "domain": domain,
            "tasks": catalogue[domain],
            "answered_tasks": answered,
            "answers": answers,
            "mean_answers": (answers / answered) if answered else None,
            "settled": settled,
            "settled_rate": (settled / answered) if answered else None,
            "unanimous": unanimous,
            "unanimous_rate": (
                (unanimous / answered) if answered else None
            ),
        })
    return rows


def _graded_totals(conn) -> Dict[str, Tuple[int, int]]:
    """worker -> (graded, correct) over the durable stream."""
    facts = _task_facts(conn)
    totals: Dict[str, List[int]] = defaultdict(lambda: [0, 0])
    for _seq, task_id, worker_id, choice in _scope_rows(conn):
        truth = facts[task_id][0]
        if truth is not None:
            entry = totals[worker_id]
            entry[0] += 1
            entry[1] += choice == truth
    return {w: (g, c) for w, (g, c) in totals.items()}


def _ref_leaderboard(conn, opts):
    qualified = [
        (worker, graded, correct)
        for worker, (graded, correct) in _graded_totals(conn).items()
        if graded >= opts["min_graded"]
    ]
    # Competition (RANK()) over (accuracy DESC, graded DESC); output
    # order (rank, worker) as in the SQL.
    qualified.sort(
        key=lambda row: (-(row[2] / row[1]), -row[1], row[0])
    )
    rows = []
    prev_key = None
    rank = 0
    for position, (worker, graded, correct) in enumerate(qualified, 1):
        key = (correct / graded, graded)
        if key != prev_key:
            rank = position
            prev_key = key
        rows.append({
            "rank": rank,
            "worker": worker,
            "graded": graded,
            "correct": correct,
            "accuracy": correct / graded,
        })
    return rows[: opts["limit"]]


def _ref_spam(conn, opts):
    window = opts["window"]
    facts = _task_facts(conn)
    seqs: Dict[str, List[int]] = defaultdict(list)
    graded_runs: Dict[str, List[bool]] = defaultdict(list)
    for seq, task_id, worker_id, choice in _scope_rows(conn):
        seqs[worker_id].append(seq)
        truth = facts[task_id][0]
        if truth is not None:
            graded_runs[worker_id].append(choice == truth)
    rows = []
    for worker in sorted(seqs):
        run = seqs[worker]
        min_span = None
        if len(run) >= window:
            min_span = min(
                run[i + window - 1] - run[i]
                for i in range(len(run) - window + 1)
            )
        max_streak = streak = 0
        for correct in graded_runs.get(worker, []):
            streak = 0 if correct else streak + 1
            max_streak = max(max_streak, streak)
        burst = min_span is not None and min_span <= opts["span"]
        miss_streak = max_streak >= opts["streak"]
        rows.append({
            "worker": worker,
            "answered": len(run),
            "min_burst_span": min_span,
            "max_miss_streak": max_streak,
            "burst": burst,
            "miss_streak": miss_streak,
            "flagged": burst or miss_streak,
        })
    return rows


_REFERENCE = {
    "worker-accuracy": _ref_worker_accuracy,
    "convergence": _ref_convergence,
    "leaderboard": _ref_leaderboard,
    "spam": _ref_spam,
}


def run_reference(
    conn: sqlite3.Connection,
    name: str,
    params: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Naive-Python twin of :func:`repro.analytics.queries.run_query`.

    Same name registry, same parameter parsing, same result shape —
    differing only in how the rows are computed.
    """
    spec, _build, _shape, derive = _lookup(name)
    opts = _parse_params(name, spec, params)
    if derive is not None:
        derive(opts)
    return {
        "query": name,
        "params": opts,
        "rows": _REFERENCE[name](conn, opts),
    }
