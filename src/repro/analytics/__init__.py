"""SQL-pushdown analytics plane over the campaign answer journal.

Requester-facing analytical questions — worker accuracy trajectories,
per-domain convergence, leaderboards, spam screens — run as indexed
window-function SQL directly against the campaign file's
``answers_archive`` + ``answers_log`` tables (the durable answer
relation), with **zero Python-object hydration**: no ``Answer`` or
``Task`` objects are built, only aggregate rows sized to the report.
The covering indexes the queries ride are created by
:func:`repro.platform.journal.ensure_analytics_indexes` whenever a
journaled database opens (a versioned in-place migration for files from
older builds).

Every query has a retained naive Python reference implementation in
:mod:`repro.analytics.reference`, and the test suite proves the SQL
results bit-identical to it across archive/tail truncation splits.

Entry points:

- :func:`run_query` — dispatch by query name (the service plane's
  ``GET /campaigns/<name>/analytics/<query>`` and the ``repro analyze``
  CLI both land here);
- :func:`explain_query` — the ``EXPLAIN QUERY PLAN`` rows of a query,
  for the covering-index regression tests and ``repro analyze
  --explain``;
- :data:`QUERY_NAMES` — the registered query names.
"""

from repro.analytics.queries import (
    QUERY_NAMES,
    UnknownAnalyticsQueryError,
    explain_query,
    run_query,
)

__all__ = [
    "QUERY_NAMES",
    "UnknownAnalyticsQueryError",
    "explain_query",
    "run_query",
]
