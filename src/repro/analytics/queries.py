"""The SQL-pushdown analytics queries.

Every query runs against the **durable** answer relation — the
``answers_archive`` rows moved out by journal truncation plus the
committed ``answers_log`` rows of kind ``KIND_ANSWER`` (golden-bootstrap
events are worker-model state, not campaign answers) — through one
``UNION ALL`` scope that forces the per-dimension covering indexes
(:data:`repro.platform.journal._ANALYTICS_INDEXES`) with ``INDEXED BY``.
The heavy lifting (grouping, window functions, gaps-and-islands) happens
inside SQLite; Python touches only the aggregate output rows, computing
the float ratios from the SQL integer counts so results are bit-identical
to the retained naive reference (:mod:`repro.analytics.reference`),
which performs the same integer counting and the same float divisions.

Determinism contract (shared with the reference): output rows carry an
explicit total order (worker id / domain / rank), and every modal pick
breaks count ties toward the smaller choice.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ValidationError


class UnknownAnalyticsQueryError(ValidationError, KeyError):
    """An analytics query name that is not in the registry."""

    def __init__(self, name: str):
        names = ", ".join(sorted(QUERY_NAMES))
        super().__init__(
            f"unknown analytics query {name!r}; available: {names}"
        )
        self.name = name

    def __str__(self) -> str:
        # KeyError.__str__ would repr() the message.
        return self.args[0]


#: The committed campaign answers, forced onto the covering indexes.
#: Both branches select exactly the indexed columns, so the planner
#: answers them from the index alone (``USING COVERING INDEX``); the
#: ``kind = 0`` literal matches the partial-index predicate, which is
#: what makes ``INDEXED BY`` legal on the log branch.
_SCOPE_BY_WORKER = """
    SELECT seq, task_id, worker_id, choice
    FROM answers_archive INDEXED BY idx_answers_archive_worker
    UNION ALL
    SELECT seq, task_id, worker_id, choice
    FROM answers_log INDEXED BY idx_answers_log_worker
    WHERE kind = 0
"""

_SCOPE_BY_TASK = """
    SELECT seq, task_id, worker_id, choice
    FROM answers_archive INDEXED BY idx_answers_archive_task
    UNION ALL
    SELECT seq, task_id, worker_id, choice
    FROM answers_log INDEXED BY idx_answers_log_task
    WHERE kind = 0
"""


# -- worker-accuracy ------------------------------------------------------

_WORKER_ACCURACY_SQL = f"""
WITH scope AS ({_SCOPE_BY_WORKER}),
stream AS (
    -- One window sort for the whole query: the running count of
    -- graded rows over seq DESC is exactly ROW_NUMBER() among a
    -- worker's graded answers newest-first (their recency), without a
    -- second pass over a graded-only subset.
    SELECT s.worker_id AS worker_id,
           CASE WHEN t.ground_truth IS NULL THEN NULL
                ELSE (s.choice = t.ground_truth) END AS correct,
           COUNT(CASE WHEN t.ground_truth IS NOT NULL THEN 1 END)
               OVER (
                   PARTITION BY s.worker_id ORDER BY s.seq DESC
               ) AS recency
    FROM scope AS s JOIN tasks AS t ON t.task_id = s.task_id
),
combined AS (
    -- COUNT/SUM skip NULL ``correct`` (ungraded rows), so the overall
    -- and graded-only aggregates collapse into ONE GROUP BY — no
    -- second pass, no LEFT JOIN. The recency guard must re-check
    -- gradedness: an ungraded row still carries the running graded
    -- count of its neighbours.
    SELECT worker_id,
           COUNT(*) AS answered,
           COUNT(correct) AS graded,
           COALESCE(SUM(correct), 0) AS correct,
           COUNT(CASE WHEN correct IS NOT NULL
                           AND recency <= :window
                      THEN 1 END) AS window_graded,
           COALESCE(SUM(CASE WHEN recency <= :window
                             THEN correct END), 0) AS window_correct
    FROM stream GROUP BY worker_id
)
SELECT worker_id, answered, graded, correct,
       window_graded, window_correct
FROM combined ORDER BY worker_id
"""


def _build_worker_accuracy(opts: Dict[str, int]):
    return _WORKER_ACCURACY_SQL, {"window": opts["window"]}


def _shape_worker_accuracy(
    fetched: Sequence[Tuple], opts: Dict[str, int]
) -> List[Dict[str, object]]:
    rows = []
    for worker, answered, graded, correct, w_graded, w_correct in fetched:
        rows.append({
            "worker": worker,
            "answered": answered,
            "graded": graded,
            "correct": correct,
            "accuracy": (correct / graded) if graded else None,
            "window_graded": w_graded,
            "window_correct": w_correct,
            "window_accuracy": (
                (w_correct / w_graded) if w_graded else None
            ),
        })
    return rows


# -- convergence ----------------------------------------------------------

# ``pos * 2 <= n + 1`` selects the first ceil(n / 2) answers of a task
# (its "early half"); a task is *settled* when the early half's modal
# choice already matches the full answer set's modal choice, and
# *unanimous* when every answer picked the modal choice.
_CONVERGENCE_SQL = f"""
WITH scope AS ({_SCOPE_BY_TASK}),
sized AS (
    SELECT task_id, choice,
           ROW_NUMBER() OVER (
               PARTITION BY task_id ORDER BY seq
           ) AS pos,
           COUNT(*) OVER (PARTITION BY task_id) AS n
    FROM scope
),
counts AS (
    SELECT task_id, choice, COUNT(*) AS c, MAX(n) AS n
    FROM sized GROUP BY task_id, choice
),
early_counts AS (
    SELECT task_id, choice, COUNT(*) AS c
    FROM sized WHERE pos * 2 <= n + 1
    GROUP BY task_id, choice
),
-- Full-set and early-half modal picks resolve in ONE window pass over
-- a flagged union: a join of two per-task CTEs would nest-loop over
-- unindexed transient tables (quadratic in task count — measured 10x
-- the whole query's runtime at 5K tasks), while this shape is one
-- sort + one GROUP BY.
ranked AS (
    SELECT task_id, early, choice, c, n,
           ROW_NUMBER() OVER (
               PARTITION BY task_id, early
               ORDER BY c DESC, choice ASC
           ) AS rnk
    FROM (
        SELECT task_id, 0 AS early, choice, c, n FROM counts
        UNION ALL
        SELECT task_id, 1 AS early, choice, c, NULL AS n
        FROM early_counts
    )
),
per_task AS (
    SELECT task_id,
           MAX(CASE WHEN early = 0 THEN n END) AS n,
           MAX(CASE WHEN early = 0 THEN c END) AS modal_count,
           (MAX(CASE WHEN early = 0 THEN choice END) =
            MAX(CASE WHEN early = 1 THEN choice END)) AS settled
    FROM ranked WHERE rnk = 1
    GROUP BY task_id
),
rollup AS (
    SELECT COALESCE(t.true_domain, -1) AS domain,
           COUNT(*) AS answered_tasks,
           SUM(p.n) AS answers,
           SUM(p.settled) AS settled,
           SUM(p.modal_count = p.n) AS unanimous
    FROM per_task AS p JOIN tasks AS t ON t.task_id = p.task_id
    GROUP BY COALESCE(t.true_domain, -1)
),
catalogue AS (
    SELECT COALESCE(true_domain, -1) AS domain, COUNT(*) AS tasks
    FROM tasks GROUP BY COALESCE(true_domain, -1)
)
SELECT c.domain, c.tasks,
       COALESCE(r.answered_tasks, 0), COALESCE(r.answers, 0),
       COALESCE(r.settled, 0), COALESCE(r.unanimous, 0)
FROM catalogue AS c LEFT JOIN rollup AS r USING (domain)
ORDER BY c.domain
"""


def _build_convergence(opts: Dict[str, int]):
    return _CONVERGENCE_SQL, {}


def _shape_convergence(
    fetched: Sequence[Tuple], opts: Dict[str, int]
) -> List[Dict[str, object]]:
    rows = []
    for domain, tasks, answered, answers, settled, unanimous in fetched:
        rows.append({
            "domain": domain,
            "tasks": tasks,
            "answered_tasks": answered,
            "answers": answers,
            "mean_answers": (answers / answered) if answered else None,
            "settled": settled,
            "settled_rate": (settled / answered) if answered else None,
            "unanimous": unanimous,
            "unanimous_rate": (
                (unanimous / answered) if answered else None
            ),
        })
    return rows


# -- leaderboard ----------------------------------------------------------

# ``1.0 * correct / graded`` is IEEE-double division, identical to the
# reference's Python ``correct / graded`` — so SQL ranking and Python
# ranking order workers identically, ties included.
_LEADERBOARD_SQL = f"""
WITH scope AS ({_SCOPE_BY_WORKER}),
graded_totals AS (
    SELECT s.worker_id AS worker_id,
           COUNT(*) AS graded,
           SUM(s.choice = t.ground_truth) AS correct
    FROM scope AS s JOIN tasks AS t ON t.task_id = s.task_id
    WHERE t.ground_truth IS NOT NULL
    GROUP BY s.worker_id
),
ranked AS (
    SELECT worker_id, graded, correct,
           RANK() OVER (
               ORDER BY 1.0 * correct / graded DESC, graded DESC
           ) AS rnk
    FROM graded_totals WHERE graded >= :min_graded
)
SELECT rnk, worker_id, graded, correct FROM ranked
ORDER BY rnk, worker_id LIMIT :limit
"""


def _build_leaderboard(opts: Dict[str, int]):
    return _LEADERBOARD_SQL, {
        "limit": opts["limit"], "min_graded": opts["min_graded"],
    }


def _shape_leaderboard(
    fetched: Sequence[Tuple], opts: Dict[str, int]
) -> List[Dict[str, object]]:
    return [
        {
            "rank": rank,
            "worker": worker,
            "graded": graded,
            "correct": correct,
            "accuracy": correct / graded,
        }
        for rank, worker, graded, correct in fetched
    ]


# -- spam -----------------------------------------------------------------

# Burst screen: for every run of ``window`` consecutive answers by one
# worker, the span ``seq - LAG(seq, window - 1)`` measures how much of
# the campaign's *global* answer stream the run occupied — a worker
# answering faster than everyone else combined compresses it toward the
# minimum possible ``window - 1``. Miss screen: longest consecutive run
# of wrong graded answers, via gaps-and-islands on the per-worker row
# number minus the wrong-only row number.
_SPAM_SQL = f"""
WITH scope AS ({_SCOPE_BY_WORKER}),
stream AS (
    -- ONE window sort carries all three screens: the LAG burst span,
    -- graded correctness, and the gaps-and-islands group as a
    -- difference of running counts (graded-so-far minus wrong-so-far
    -- equals the classic rn - wrong_rn island key on wrong rows).
    -- Separate spans/graded/islands CTEs would each sort the full
    -- stream again.
    SELECT s.worker_id AS worker_id,
           s.seq - LAG(s.seq, :lag) OVER w AS span,
           CASE WHEN t.ground_truth IS NULL THEN NULL
                ELSE (s.choice = t.ground_truth) END AS correct,
           COUNT(CASE WHEN t.ground_truth IS NOT NULL THEN 1 END)
               OVER w
             - COUNT(CASE WHEN s.choice <> t.ground_truth THEN 1 END)
               OVER w AS grp
    FROM scope AS s JOIN tasks AS t ON t.task_id = s.task_id
    WINDOW w AS (PARTITION BY s.worker_id ORDER BY s.seq)
),
totals AS (
    -- MIN skips NULL spans, so the burst minimum folds into the same
    -- GROUP BY as the answer count (NULL when no span exists, exactly
    -- the no-burst-data marker the shaper expects).
    SELECT worker_id, COUNT(*) AS answered, MIN(span) AS min_span
    FROM stream GROUP BY worker_id
),
streaks AS (
    SELECT worker_id, MAX(cnt) AS max_streak FROM (
        SELECT worker_id, COUNT(*) AS cnt
        FROM stream WHERE correct = 0 GROUP BY worker_id, grp
    ) GROUP BY worker_id
)
SELECT t.worker_id, t.answered, t.min_span,
       COALESCE(s.max_streak, 0)
FROM totals AS t
LEFT JOIN streaks AS s USING (worker_id)
ORDER BY t.worker_id
"""


def _build_spam(opts: Dict[str, int]):
    return _SPAM_SQL, {"lag": opts["window"] - 1}


def _shape_spam(
    fetched: Sequence[Tuple], opts: Dict[str, int]
) -> List[Dict[str, object]]:
    span_limit = opts["span"]
    streak_limit = opts["streak"]
    rows = []
    for worker, answered, min_span, max_streak in fetched:
        burst = min_span is not None and min_span <= span_limit
        miss_streak = max_streak >= streak_limit
        rows.append({
            "worker": worker,
            "answered": answered,
            "min_burst_span": min_span,
            "max_miss_streak": max_streak,
            "burst": burst,
            "miss_streak": miss_streak,
            "flagged": burst or miss_streak,
        })
    return rows


def _derive_spam(opts: Dict[str, int]) -> None:
    # Default burst threshold: the run took at most twice the minimum
    # possible span — i.e. the worker produced at least half of the
    # global answer stream while it lasted.
    if opts.get("span") is None:
        opts["span"] = 2 * (opts["window"] - 1)


# -- registry + dispatch --------------------------------------------------

#: name -> (param spec, sql builder, row shaper, opts deriver).
#: Param spec: param name -> (default, minimum); a ``None`` default
#: marks a parameter resolved by the deriver after parsing.
_REGISTRY: Dict[str, Tuple] = {
    "worker-accuracy": (
        {"window": (20, 1)},
        _build_worker_accuracy, _shape_worker_accuracy, None,
    ),
    "convergence": (
        {},
        _build_convergence, _shape_convergence, None,
    ),
    "leaderboard": (
        {"limit": (10, 1), "min_graded": (1, 1)},
        _build_leaderboard, _shape_leaderboard, None,
    ),
    "spam": (
        {"window": (10, 2), "span": (None, 1), "streak": (5, 1)},
        _build_spam, _shape_spam, _derive_spam,
    ),
}

#: The registered analytics query names.
QUERY_NAMES: Tuple[str, ...] = tuple(sorted(_REGISTRY))


def _parse_params(
    name: str,
    spec: Mapping[str, Tuple[Optional[int], int]],
    params: Optional[Mapping[str, object]],
) -> Dict[str, Optional[int]]:
    opts: Dict[str, Optional[int]] = {
        key: default for key, (default, _) in spec.items()
    }
    for key, raw in (params or {}).items():
        if key not in spec:
            allowed = ", ".join(sorted(spec)) or "(none)"
            raise ValidationError(
                f"analytics query {name!r} has no parameter {key!r}; "
                f"allowed: {allowed}"
            )
        # The service plane hands parse_qs lists; take the first value.
        if isinstance(raw, (list, tuple)):
            raw = raw[0] if raw else None
        try:
            value = int(raw)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ValidationError(
                f"analytics parameter {key!r} must be an integer, "
                f"got {raw!r}"
            ) from None
        minimum = spec[key][1]
        if value < minimum:
            raise ValidationError(
                f"analytics parameter {key!r} must be >= {minimum}, "
                f"got {value}"
            )
        opts[key] = value
    return opts


def _lookup(name: str) -> Tuple:
    entry = _REGISTRY.get(name)
    if entry is None:
        raise UnknownAnalyticsQueryError(name)
    return entry


def _prepare(
    name: str, params: Optional[Mapping[str, object]]
) -> Tuple[str, Dict[str, int], Dict[str, int], Tuple]:
    spec, build, shape, derive = _lookup(name)
    opts = _parse_params(name, spec, params)
    if derive is not None:
        derive(opts)
    sql, binds = build(opts)
    return sql, binds, opts, (build, shape)


def run_query(
    conn: sqlite3.Connection,
    name: str,
    params: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Run one analytics query against a campaign database connection.

    Args:
        conn: a connection to a journaled campaign file (the covering
            indexes are created whenever such a file is opened).
        name: a :data:`QUERY_NAMES` entry.
        params: optional query parameters; values may be ints, numeric
            strings, or ``parse_qs``-style one-element lists.

    Returns:
        ``{"query": name, "params": {resolved ints}, "rows": [...]}`` —
        plain dicts and scalars only, JSON-ready.

    Raises:
        UnknownAnalyticsQueryError: for an unregistered name.
        ValidationError: for an unknown or malformed parameter.
    """
    sql, binds, opts, (_, shape) = _prepare(name, params)
    # Window-function passes sort through temp b-trees; spilling those
    # to disk temp files dominates query time on archive-scale inputs.
    # temp_store is a connection-level knob that only affects where
    # temporary structures live, never durable state.
    (temp_store,) = conn.execute("PRAGMA temp_store").fetchone()
    conn.execute("PRAGMA temp_store = MEMORY")
    try:
        fetched = conn.execute(sql, binds).fetchall()
    finally:
        conn.execute(f"PRAGMA temp_store = {int(temp_store)}")
    return {"query": name, "params": opts, "rows": shape(fetched, opts)}


def explain_query(
    conn: sqlite3.Connection,
    name: str,
    params: Optional[Mapping[str, object]] = None,
) -> List[str]:
    """The ``EXPLAIN QUERY PLAN`` detail lines of one query.

    The covering-index regression tests assert on these, and
    ``repro analyze --explain`` prints them.
    """
    sql, binds, _, _ = _prepare(name, params)
    rows = conn.execute(f"EXPLAIN QUERY PLAN {sql}", binds).fetchall()
    return [str(row[-1]) for row in rows]
