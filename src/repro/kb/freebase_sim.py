"""Synthetic Freebase-like knowledge-base generator.

The paper's DVE consults Freebase (57M concepts). What DVE actually needs
from it is small and precise:

1. concepts with names (so mentions can be detected in task text),
2. per-concept 0/1 domain indicators over the 26-domain taxonomy,
3. *ambiguity*: one surface name shared by concepts in different domains
   (the "Michael Jordan the player vs the professor vs the actor" example
   that motivates Algorithm 1's aggregation over linkings),
4. textual context per concept (so a linker can disambiguate).

``build_synthetic_kb`` generates a KB with exactly those properties,
deterministically from a seed. Name collisions across domains are injected
at a configurable rate, and a fraction of concepts get a secondary domain
(multi-domain concepts, like Michael Jordan being related to both Sports
and Entertainment through the film "Space Jam").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.kb.concept import Concept
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.lexicon import DOMAIN_VOCABULARY, NAME_SYLLABLES
from repro.kb.taxonomy import DomainTaxonomy, default_taxonomy
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class SyntheticKBConfig:
    """Parameters of the synthetic knowledge base.

    Attributes:
        concepts_per_domain: concepts generated for each taxonomy domain.
        ambiguity_rate: fraction of concepts whose name is also given to
            concepts in *different* domains (creates multi-candidate
            aliases).
        collision_depth: maximum number of doppelganger concepts created
            per ambiguous name (the actual count is uniform in
            [1, collision_depth]). Higher depth means more candidates per
            entity — the knob behind Table 3's top-c sweep.
        secondary_domain_rate: fraction of concepts related to a second
            domain in addition to their primary one.
        secondary_domain_pool: when given, secondary domains are drawn
            from these names (minus the primary) instead of all active
            domains. Dataset generators set this to their own domain set
            so cross-domain entities (the "Michael Jordan starred in
            Space Jam" effect) connect domains that actually co-occur in
            the workload.
        description_length: tokens per concept description.
        famous_fraction: fraction of concepts that are *renowned*
            (commonness boosted by roughly an order of magnitude). Real
            KB popularity is heavy-tailed; renowned concepts dominate
            their alias even against several doppelgangers, which is what
            lets single-entity tasks (SFV) resolve their domain.
        seed: RNG seed for deterministic generation.
    """

    concepts_per_domain: int = 60
    ambiguity_rate: float = 0.35
    collision_depth: int = 1
    secondary_domain_rate: float = 0.2
    secondary_domain_pool: Optional[Tuple[str, ...]] = None
    description_length: int = 14
    famous_fraction: float = 0.15
    seed: SeedLike = 0

    def validate(self) -> None:
        if self.concepts_per_domain <= 0:
            raise ValidationError("concepts_per_domain must be positive")
        if not 0.0 <= self.ambiguity_rate <= 1.0:
            raise ValidationError("ambiguity_rate must be in [0, 1]")
        if self.collision_depth < 1:
            raise ValidationError("collision_depth must be >= 1")
        if not 0.0 <= self.secondary_domain_rate <= 1.0:
            raise ValidationError("secondary_domain_rate must be in [0, 1]")
        if self.description_length <= 0:
            raise ValidationError("description_length must be positive")
        if not 0.0 <= self.famous_fraction <= 1.0:
            raise ValidationError("famous_fraction must be in [0, 1]")


def _synthesize_name(rng: np.random.Generator) -> str:
    """A two-word synthetic personal/entity name from the syllable pool."""
    first = "".join(rng.choice(NAME_SYLLABLES, size=2))
    last = "".join(rng.choice(NAME_SYLLABLES, size=2))
    return f"{first.capitalize()} {last.capitalize()}"


def _description_for(
    domain_name: str,
    length: int,
    rng: np.random.Generator,
) -> Tuple[str, ...]:
    """Sample a concept description from its domain vocabulary.

    Domains outside the built-in lexicon (custom taxonomies in tests or
    downstream use) get a deterministic pseudo-vocabulary derived from
    the domain name, so context disambiguation still has a signal.
    """
    vocab = DOMAIN_VOCABULARY.get(domain_name)
    if vocab is None:
        slug = "".join(ch for ch in domain_name.lower() if ch.isalnum())
        vocab = tuple(f"{slug}word{i}" for i in range(12))
    return tuple(rng.choice(vocab, size=length))


def build_synthetic_kb(
    config: Optional[SyntheticKBConfig] = None,
    taxonomy: Optional[DomainTaxonomy] = None,
    domain_subset: Optional[Sequence[str]] = None,
) -> KnowledgeBase:
    """Generate a deterministic synthetic knowledge base.

    Args:
        config: generation parameters (defaults to
            :class:`SyntheticKBConfig`).
        taxonomy: taxonomy to build over (defaults to the 26 Yahoo
            domains).
        domain_subset: if given, only these domains receive concepts
            (useful for focused unit tests); the indicator vectors are
            still sized to the full taxonomy.

    Returns:
        A populated :class:`KnowledgeBase`.
    """
    cfg = config or SyntheticKBConfig()
    cfg.validate()
    tax = taxonomy or default_taxonomy()
    rng = make_rng(cfg.seed)

    active_domains = list(domain_subset) if domain_subset else list(tax.domains)
    for name in active_domains:
        tax.index_of(name)  # validate early

    kb = KnowledgeBase(tax)
    next_id = 0
    # First pass: generate every concept with a fresh name.
    generated: List[Tuple[Concept, str]] = []
    used_names = set()
    for domain_name in active_domains:
        primary = tax.index_of(domain_name)
        for _ in range(cfg.concepts_per_domain):
            name = _synthesize_name(rng)
            while name in used_names:
                name = _synthesize_name(rng)
            used_names.add(name)
            domain_indices = {primary}
            if rng.random() < cfg.secondary_domain_rate:
                pool = (
                    list(cfg.secondary_domain_pool)
                    if cfg.secondary_domain_pool is not None
                    else active_domains
                )
                choices = [d for d in pool if d != domain_name]
                if choices:
                    other = rng.choice(choices)
                    domain_indices.add(tax.index_of(str(other)))
            commonness = float(rng.uniform(0.5, 5.0))
            if rng.random() < cfg.famous_fraction:
                commonness *= float(rng.uniform(6.0, 15.0))
            concept = Concept(
                concept_id=next_id,
                name=name,
                domain_indices=frozenset(domain_indices),
                description=_description_for(
                    domain_name, cfg.description_length, rng
                ),
                commonness=commonness,
            )
            generated.append((concept, domain_name))
            next_id += 1

    # Second pass: inject cross-domain name collisions. For each concept
    # chosen to be "ambiguous", create doppelganger concepts with the same
    # name whose primary domains differ — the linker then sees a
    # multi-candidate alias exactly like the paper's Michael Jordan case.
    # Famous concepts are *always* ambiguous and more deeply so: a famous
    # name accretes many minor namesakes (Wikipedia lists dozens of
    # "Michael Jordan"s), each individually weak — this is what fills the
    # top-c candidate lists that make enumeration DVE explode (Table 3).
    doppelgangers: List[Tuple[Concept, str]] = []
    if len(active_domains) > 1:
        for concept, domain_name in generated:
            is_famous = concept.commonness > 5.0
            if not is_famous and rng.random() >= cfg.ambiguity_rate:
                continue
            if is_famous:
                twins = int(
                    cfg.collision_depth
                    + rng.integers(0, cfg.collision_depth + 1)
                )
                commonness_range = (0.05, 0.6)
            else:
                twins = int(rng.integers(1, cfg.collision_depth + 1))
                commonness_range = (0.2, 2.0)
            for _ in range(twins):
                other_domain = str(
                    rng.choice(
                        [d for d in active_domains if d != domain_name]
                    )
                )
                twin = Concept(
                    concept_id=next_id,
                    name=concept.name,
                    domain_indices=frozenset({tax.index_of(other_domain)}),
                    description=_description_for(
                        other_domain, cfg.description_length, rng
                    ),
                    commonness=float(rng.uniform(*commonness_range)),
                )
                doppelgangers.append((twin, other_domain))
                next_id += 1

    for concept, _ in generated + doppelgangers:
        kb.add_concept(concept)
    return kb
