"""Concept records — the KB entries entity mentions link to.

A concept corresponds to a Wikipedia page / Freebase topic in the paper
(e.g. the basketball player "Michael Jordan" vs the computer scientist).
Each carries a 0/1 *domain indicator vector* ``h`` (Section 3, Table 2):
``h[k] == 1`` iff the concept is related to domain ``d_k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class Concept:
    """A single knowledge-base concept.

    Attributes:
        concept_id: unique integer id within one knowledge base.
        name: canonical surface form (also registered as an alias).
        domain_indices: indices of domains this concept is related to; the
            indicator vector is 1 exactly at these positions. May be empty
            (the paper's "Michael I. Jordan" has ``h = [0, 0, 0]`` w.r.t.
            the example domain set).
        description: content tokens describing the concept, used by the
            linker's context disambiguation.
        commonness: prior popularity weight used for candidate ranking
            (mirrors link-frequency features in Wikifier).
    """

    concept_id: int
    name: str
    domain_indices: FrozenSet[int]
    description: Tuple[str, ...] = field(default=())
    commonness: float = 1.0

    def __post_init__(self) -> None:
        if self.commonness <= 0:
            raise ValidationError(
                f"concept commonness must be positive: {self.commonness}"
            )
        if any(k < 0 for k in self.domain_indices):
            raise ValidationError(
                f"negative domain index in {sorted(self.domain_indices)}"
            )

    def indicator_vector(self, num_domains: int) -> np.ndarray:
        """Dense 0/1 indicator vector ``h`` of length ``num_domains``."""
        if self.domain_indices and max(self.domain_indices) >= num_domains:
            raise ValidationError(
                f"concept {self.concept_id} references domain "
                f">= {num_domains}"
            )
        h = np.zeros(num_domains, dtype=float)
        for k in self.domain_indices:
            h[k] = 1.0
        return h

    def related_to(self, domain_index: int) -> bool:
        """True if the concept's indicator is 1 at ``domain_index``."""
        return domain_index in self.domain_indices
