"""The domain taxonomy (Definition 1).

DOCS fixes ``D`` to the 26 top-level categories of Yahoo! Answers, each
manually mapped to Freebase domains. We reproduce that list verbatim; the
taxonomy object provides stable integer indices for vectorised code and
name lookup for readable examples and reports.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import ValidationError

#: The 26 top-level Yahoo! Answers categories used as the explicit domain
#: set in the paper (Section 3).
YAHOO_DOMAINS: Tuple[str, ...] = (
    "Arts & Humanities",
    "Beauty & Style",
    "Business & Finance",
    "Cars & Transportation",
    "Computers & Internet",
    "Consumer Electronics",
    "Dining Out",
    "Education & Reference",
    "Entertainment & Music",
    "Environment",
    "Family & Relationships",
    "Food & Drink",
    "Games & Recreation",
    "Health",
    "Home & Garden",
    "Local Businesses",
    "News & Events",
    "Pets",
    "Politics & Government",
    "Pregnancy & Parenting",
    "Science & Mathematics",
    "Social Science",
    "Society & Culture",
    "Sports",
    "Travel",
    "Yahoo Products",
)


class DomainTaxonomy:
    """An ordered, indexable set of domain names.

    Domain vectors throughout the library are dense arrays whose k-th entry
    corresponds to ``taxonomy.domains[k]``.
    """

    def __init__(self, domains: Sequence[str] = YAHOO_DOMAINS):
        if len(domains) == 0:
            raise ValidationError("taxonomy must contain at least one domain")
        if len(set(domains)) != len(domains):
            raise ValidationError("taxonomy domains must be unique")
        self._domains: Tuple[str, ...] = tuple(domains)
        self._index: Dict[str, int] = {
            name: k for k, name in enumerate(self._domains)
        }

    @property
    def domains(self) -> Tuple[str, ...]:
        """Ordered domain names."""
        return self._domains

    @property
    def size(self) -> int:
        """The number of domains ``m = |D|``."""
        return len(self._domains)

    def index_of(self, name: str) -> int:
        """Integer index of a domain name.

        Raises:
            ValidationError: if the domain is not in the taxonomy.
        """
        try:
            return self._index[name]
        except KeyError:
            raise ValidationError(f"unknown domain: {name!r}") from None

    def name_of(self, index: int) -> str:
        """Domain name at ``index``."""
        if not 0 <= index < self.size:
            raise ValidationError(
                f"domain index {index} out of range [0, {self.size})"
            )
        return self._domains[index]

    def subset_indices(self, names: Sequence[str]) -> List[int]:
        """Indices of several domain names, preserving input order."""
        return [self.index_of(name) for name in names]

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[str]:
        return iter(self._domains)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __repr__(self) -> str:
        return f"DomainTaxonomy(m={self.size})"


def default_taxonomy() -> DomainTaxonomy:
    """The 26-domain Yahoo! Answers taxonomy used in the paper."""
    return DomainTaxonomy(YAHOO_DOMAINS)
