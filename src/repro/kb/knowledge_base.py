"""In-memory knowledge base with alias-based candidate lookup.

Exposes exactly what the DVE pipeline consumes:

- ``candidates(alias)`` — the concepts an entity mention may link to
  (the candidate set behind the distribution ``p_i`` of Section 3),
- ``indicator(concept_id)`` — the 0/1 domain indicator vector ``h_{i,j}``,
- an alias index supporting longest-match mention detection.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.kb.concept import Concept
from repro.kb.taxonomy import DomainTaxonomy


def canonical_alias(text: str) -> str:
    """Normalise an alias for indexing (lowercase, collapsed whitespace)."""
    return " ".join(text.lower().split())


class KnowledgeBase:
    """A curated concept store with an alias index.

    Args:
        taxonomy: the domain taxonomy used to size indicator vectors.
    """

    def __init__(self, taxonomy: DomainTaxonomy):
        self._taxonomy = taxonomy
        self._concepts: Dict[int, Concept] = {}
        self._alias_index: Dict[str, List[int]] = defaultdict(list)
        self._indicator_cache: Dict[int, np.ndarray] = {}
        self._stack_cache: Dict[Tuple[int, ...], np.ndarray] = {}
        self._max_alias_tokens = 0

    @property
    def taxonomy(self) -> DomainTaxonomy:
        """The domain taxonomy this KB is built over."""
        return self._taxonomy

    @property
    def num_domains(self) -> int:
        """Number of domains ``m``."""
        return self._taxonomy.size

    @property
    def num_concepts(self) -> int:
        """Number of concepts stored."""
        return len(self._concepts)

    @property
    def max_alias_tokens(self) -> int:
        """Longest alias length in tokens — the mention detector's window."""
        return self._max_alias_tokens

    def add_concept(
        self, concept: Concept, aliases: Optional[Sequence[str]] = None
    ) -> None:
        """Register a concept and index it under its name and aliases.

        Raises:
            ValidationError: on duplicate concept ids or out-of-range
                domain indices.
        """
        if concept.concept_id in self._concepts:
            raise ValidationError(
                f"duplicate concept id: {concept.concept_id}"
            )
        # Validates domain indices against m as a side effect.
        indicator = concept.indicator_vector(self.num_domains)
        self._concepts[concept.concept_id] = concept
        self._indicator_cache[concept.concept_id] = indicator
        for alias in {concept.name, *(aliases or ())}:
            key = canonical_alias(alias)
            if not key:
                raise ValidationError("empty alias")
            self._alias_index[key].append(concept.concept_id)
            self._max_alias_tokens = max(
                self._max_alias_tokens, len(key.split())
            )

    def concept(self, concept_id: int) -> Concept:
        """Fetch a concept by id.

        Raises:
            ValidationError: if unknown.
        """
        try:
            return self._concepts[concept_id]
        except KeyError:
            raise ValidationError(
                f"unknown concept id: {concept_id}"
            ) from None

    def indicator(self, concept_id: int) -> np.ndarray:
        """The concept's dense 0/1 domain indicator vector (read-only)."""
        vec = self._indicator_cache.get(concept_id)
        if vec is None:
            raise ValidationError(f"unknown concept id: {concept_id}")
        return vec

    def indicator_matrix(self, concept_ids: Tuple[int, ...]) -> np.ndarray:
        """Stacked indicator rows for a candidate tuple, cached.

        Batch ingestion hits the same candidate tuples over and over
        (every task mentioning "Michael Jordan" stacks the same rows);
        the cache hands back one shared ``(len(ids), m)`` matrix per
        tuple. Treat as read-only.
        """
        stacked = self._stack_cache.get(concept_ids)
        if stacked is None:
            stacked = np.stack(
                [self.indicator(cid) for cid in concept_ids]
            )
            self._stack_cache[concept_ids] = stacked
        return stacked

    def candidates(self, alias: str) -> List[Concept]:
        """All concepts registered under ``alias`` (possibly empty)."""
        ids = self._alias_index.get(canonical_alias(alias), [])
        return [self._concepts[cid] for cid in ids]

    def has_alias(self, alias: str) -> bool:
        """True if any concept is registered under ``alias``."""
        return canonical_alias(alias) in self._alias_index

    def aliases(self) -> Iterable[str]:
        """All indexed alias strings."""
        return self._alias_index.keys()

    def concepts(self) -> Iterable[Concept]:
        """All stored concepts."""
        return self._concepts.values()

    def concepts_in_domain(self, domain_index: int) -> List[Concept]:
        """Concepts whose indicator is 1 at ``domain_index``."""
        if not 0 <= domain_index < self.num_domains:
            raise ValidationError(
                f"domain index {domain_index} out of range"
            )
        return [
            c for c in self._concepts.values() if c.related_to(domain_index)
        ]

    def ambiguous_aliases(self) -> List[Tuple[str, List[int]]]:
        """Aliases mapping to more than one concept, with their ids."""
        return [
            (alias, list(ids))
            for alias, ids in self._alias_index.items()
            if len(ids) > 1
        ]

    def __len__(self) -> int:
        return len(self._concepts)

    def __repr__(self) -> str:
        return (
            f"KnowledgeBase(concepts={len(self._concepts)}, "
            f"aliases={len(self._alias_index)}, m={self.num_domains})"
        )
