"""Per-domain vocabulary for the synthetic knowledge base and datasets.

Each of the 26 domains gets a small controlled vocabulary. These words are
used in three places, and the *shared usage* is what makes the synthetic
world behave like the real one:

1. Concept descriptions in the KB are bags of their domain's words — the
   linker's context disambiguation matches task text against them.
2. Dataset generators weave the same words into task text, so a task about
   a sports concept really does read like a sports question.
3. Topic models (LDA / TwitterLDA) see only these surface tokens; their
   success depends on how separable the per-domain vocabularies are in the
   actual task text, reproducing the paper's Figure 3 dynamics.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.kb.taxonomy import YAHOO_DOMAINS

#: Domain name -> tuple of characteristic content words.
DOMAIN_VOCABULARY: Dict[str, Tuple[str, ...]] = {
    "Arts & Humanities": (
        "painting", "sculpture", "poetry", "novel", "museum", "gallery",
        "literature", "canvas", "renaissance", "symphony", "manuscript",
        "exhibit", "aesthetic", "fresco", "sonnet", "curator",
    ),
    "Beauty & Style": (
        "makeup", "fashion", "lipstick", "hairstyle", "perfume", "designer",
        "wardrobe", "skincare", "runway", "mascara", "boutique", "stylist",
        "fragrance", "manicure", "couture", "eyeliner",
    ),
    "Business & Finance": (
        "stock", "revenue", "investor", "merger", "dividend", "portfolio",
        "startup", "shareholder", "profit", "acquisition", "market",
        "earnings", "brand", "ipo", "valuation", "owns",
    ),
    "Cars & Transportation": (
        "engine", "sedan", "horsepower", "mileage", "torque", "chassis",
        "dealership", "transmission", "coupe", "turbo", "fuel", "brake",
        "motor", "wheelbase", "drivetrain", "roadster",
    ),
    "Computers & Internet": (
        "software", "server", "browser", "algorithm", "bandwidth", "router",
        "database", "encryption", "compiler", "firewall", "website",
        "download", "keyboard", "protocol", "cache", "laptop",
    ),
    "Consumer Electronics": (
        "gadget", "smartphone", "headphone", "battery", "charger", "screen",
        "camera", "speaker", "tablet", "firmware", "pixel", "stereo",
        "remote", "earbud", "console", "projector",
    ),
    "Dining Out": (
        "restaurant", "waiter", "menu", "bistro", "reservation", "buffet",
        "diner", "tip", "entree", "appetizer", "cafe", "brunch",
        "steakhouse", "takeout", "sommelier", "patio",
    ),
    "Education & Reference": (
        "school", "teacher", "curriculum", "exam", "scholarship", "lecture",
        "textbook", "diploma", "tuition", "homework", "professor",
        "semester", "thesis", "classroom", "grammar", "dictionary",
    ),
    "Entertainment & Music": (
        "film", "movie", "actor", "album", "concert", "singer", "director",
        "oscar", "soundtrack", "premiere", "celebrity", "starred",
        "episode", "guitar", "drama", "sitcom",
    ),
    "Environment": (
        "climate", "pollution", "recycling", "emission", "wildlife",
        "conservation", "ecosystem", "renewable", "carbon", "deforestation",
        "habitat", "sustainability", "ozone", "compost", "biodiversity",
        "wetland",
    ),
    "Family & Relationships": (
        "marriage", "sibling", "friendship", "wedding", "divorce", "cousin",
        "anniversary", "partner", "trust", "parenting", "household",
        "relative", "engagement", "in-law", "honeymoon", "bond",
    ),
    "Food & Drink": (
        "recipe", "calories", "chocolate", "flavor", "ingredient", "spice",
        "baking", "protein", "cuisine", "sauce", "vitamin", "dessert",
        "honey", "roast", "vegetable", "originate",
    ),
    "Games & Recreation": (
        "puzzle", "chess", "videogame", "dice", "arcade", "quest",
        "multiplayer", "board", "trivia", "lottery", "joystick", "riddle",
        "scrabble", "poker", "dungeon", "leaderboard",
    ),
    "Health": (
        "doctor", "symptom", "vaccine", "diagnosis", "therapy", "surgery",
        "medicine", "patient", "allergy", "nutrition", "cardiology",
        "immune", "prescription", "clinic", "fitness", "recovery",
    ),
    "Home & Garden": (
        "furniture", "lawn", "plumbing", "renovation", "carpet", "garden",
        "paint", "mortgage", "backyard", "kitchen", "insulation", "decor",
        "fence", "hardwood", "greenhouse", "shovel",
    ),
    "Local Businesses": (
        "shop", "storefront", "franchise", "bakery", "barber", "laundromat",
        "locksmith", "florist", "pharmacy", "hardware", "grocer", "tailor",
        "stall", "vendor", "kiosk", "mainstreet",
    ),
    "News & Events": (
        "headline", "journalist", "broadcast", "press", "scandal",
        "coverage", "editorial", "bulletin", "correspondent", "newsroom",
        "media", "report", "breaking", "anchor", "column", "byline",
    ),
    "Pets": (
        "puppy", "kitten", "veterinarian", "leash", "aquarium", "parrot",
        "grooming", "kennel", "hamster", "breed", "litter", "terrier",
        "feline", "canine", "adoption", "whisker",
    ),
    "Politics & Government": (
        "election", "senator", "parliament", "policy", "legislation",
        "campaign", "congress", "treaty", "ambassador", "ballot",
        "referendum", "cabinet", "governor", "diplomat", "soviet", "union",
    ),
    "Pregnancy & Parenting": (
        "toddler", "newborn", "midwife", "crib", "stroller", "lullaby",
        "daycare", "pediatric", "trimester", "diaper", "nursery",
        "ultrasound", "pacifier", "bedtime", "playground", "babysitter",
    ),
    "Science & Mathematics": (
        "physics", "theorem", "molecule", "gravity", "equation", "quantum",
        "geology", "telescope", "chemistry", "fossil", "summit", "altitude",
        "mountain", "peak", "experiment", "hypothesis",
    ),
    "Social Science": (
        "psychology", "sociology", "anthropology", "survey", "cognition",
        "behavior", "demographic", "ethnography", "bias", "culture",
        "economics", "linguistics", "identity", "norms", "institution",
        "census",
    ),
    "Society & Culture": (
        "tradition", "festival", "religion", "etiquette", "mythology",
        "heritage", "folklore", "ritual", "custom", "holiday", "temple",
        "ceremony", "dialect", "proverb", "costume", "monument",
    ),
    "Sports": (
        "championship", "player", "team", "coach", "season", "league",
        "basketball", "tournament", "playoff", "stadium", "height",
        "score", "wins", "position", "athlete", "soccer",
    ),
    "Travel": (
        "airline", "passport", "itinerary", "hostel", "luggage", "visa",
        "destination", "cruise", "sightseeing", "layover", "resort",
        "backpacking", "terminal", "souvenir", "expedition", "voyage",
    ),
    "Yahoo Products": (
        "mailbox", "messenger", "flickr", "homepage", "login", "avatar",
        "notification", "toolbar", "widget", "account", "settings",
        "inbox", "profile", "bookmark", "search", "portal",
    ),
}

# A syllable pool used to synthesise entity names. Names are not domain
# specific: ambiguity across domains (the "Michael Jordan" effect) requires
# that a plausible name could belong to any domain.
NAME_SYLLABLES: Tuple[str, ...] = (
    "mar", "len", "cor", "vin", "tas", "rel", "don", "quis", "bel", "nor",
    "hal", "ser", "pim", "gol", "dar", "win", "fos", "ter", "lan", "dri",
    "mon", "cal", "ver", "sut", "ran", "kel", "bro", "stan", "mil", "ger",
)


def vocabulary_for(domain: str) -> Tuple[str, ...]:
    """Characteristic vocabulary for a domain name.

    Raises:
        KeyError: if the domain is unknown.
    """
    return DOMAIN_VOCABULARY[domain]


def _check_consistency() -> None:
    missing = set(YAHOO_DOMAINS) - set(DOMAIN_VOCABULARY)
    if missing:
        raise AssertionError(f"lexicon missing domains: {sorted(missing)}")


_check_consistency()
