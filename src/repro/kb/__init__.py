"""Knowledge-base substrate.

The paper consults Freebase, with the domain set D fixed to the 26
top-level Yahoo! Answers categories (Section 3, "The Implementations of
DVE in DOCS"). Offline, we substitute a synthetic knowledge base exposing
exactly the interface DVE consumes:

- a :class:`~repro.kb.taxonomy.DomainTaxonomy` of the 26 domains,
- :class:`~repro.kb.concept.Concept` entries with 0/1 domain indicator
  vectors (the ``h_{i,j}`` of Section 3),
- an alias index for candidate generation, including deliberately
  ambiguous aliases (several concepts sharing one name across domains,
  mirroring the paper's "Michael Jordan" example).
"""

from repro.kb.taxonomy import DomainTaxonomy, YAHOO_DOMAINS
from repro.kb.concept import Concept
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.freebase_sim import SyntheticKBConfig, build_synthetic_kb

__all__ = [
    "DomainTaxonomy",
    "YAHOO_DOMAINS",
    "Concept",
    "KnowledgeBase",
    "SyntheticKBConfig",
    "build_synthetic_kb",
]
