"""The service application: campaigns, endpoint semantics, scheduling.

:class:`DocsService` is transport-free — it knows nothing about HTTP
parsing. Every public endpoint method is called from the event loop and
must not block: it either answers immediately (``/healthz``,
``/metricsz`` — these must stay responsive when the queue is full,
which is the whole point of a health endpoint) or enqueues work on the
:class:`~repro.service.scheduler.RequestScheduler` and returns the
``Future`` the HTTP layer awaits. The scheduler thread is the only
thread that ever touches a :class:`~repro.system.DocsSystem`.

Multi-tenancy follows the PR 4 model: every campaign attaches the one
service-wide shared :class:`SqliteWorkerQualityStore` (when taxonomy
sizes agree), so a worker who passed the golden pre-test in any
campaign skips it in the next.

Error contract (mirrors the library's ``ReproError`` discipline — the
message always names the remediation):

====================================  ======  ==============
exception                             status  body ``type``
====================================  ======  ==============
``UnknownCampaignError`` / worker /   404     ``not_found``
task
``ConflictError``                     409     ``conflict``
``QueueFullError``                    429     ``queue_full``
``ValidationError`` (and other        400     ``validation``
``ReproError``)
``SchedulerStopped``                  503     ``unavailable``
anything else                         500     ``internal``
====================================  ======  ==============
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import re
import sqlite3
from concurrent.futures import Future
from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.analytics import UnknownAnalyticsQueryError
from repro.core.types import Answer, Task
from repro.datasets import DATASET_NAMES, make_dataset
from repro.errors import (
    ReproError,
    UnknownTaskError,
    UnknownWorkerError,
    ValidationError,
)
from repro.platform.sqlite_storage import SqliteWorkerQualityStore
from repro.service.scheduler import (
    QueueFullError,
    RequestScheduler,
    SchedulerStopped,
)
from repro.system import DocsConfig, DocsSystem

__all__ = [
    "ConflictError",
    "UnknownCampaignError",
    "ServiceConfig",
    "DocsService",
]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: DocsConfig fields a campaign creation request may override. A
#: whitelist, so a typo'd knob is a 400 naming the field instead of a
#: silently ignored key.
_CONFIG_FIELDS = frozenset(
    f.name for f in dataclasses.fields(DocsConfig)
)

#: Response body for one HTTP request: (status, body, headers).
ServiceResponse = Tuple[int, Dict[str, object], List[Tuple[str, str]]]


class ConflictError(ReproError):
    """The request is valid but contradicts current state (HTTP 409)."""


class UnknownCampaignError(ValidationError, KeyError):
    """A campaign name did not resolve (HTTP 404)."""

    def __init__(self, name: str):
        super().__init__(
            f"unknown campaign {name!r}; list campaigns with "
            "GET /campaigns or create one with POST /campaigns"
        )
        self.name = name

    def __str__(self) -> str:
        return self.args[0]


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs (campaign inference knobs live per-campaign).

    Attributes:
        queue_limit: bounded arrival-queue capacity; beyond it requests
            are refused with 429.
        coalesce_max: max requests drained per scheduling round — the
            batch-size cap for submit coalescing and assign fan-out.
        retry_after: the ``Retry-After`` hint (seconds) on 429s.
        db_dir: directory for campaign SQLite files and the shared
            worker store; ``None`` serves everything in memory.
        worker_db: shared worker-store path override; defaults to
            ``<db_dir>/workers.db`` when ``db_dir`` is set, else an
            in-process in-memory store.
    """

    queue_limit: int = 128
    coalesce_max: int = 64
    retry_after: float = 0.05
    db_dir: Optional[str] = None
    worker_db: Optional[str] = None

    def validate(self) -> None:
        if self.queue_limit < 1:
            raise ValidationError("queue_limit must be >= 1")
        if self.coalesce_max < 1:
            raise ValidationError("coalesce_max must be >= 1")
        if self.retry_after <= 0:
            raise ValidationError("retry_after must be > 0")


class _Campaign:
    """Registry entry: one requester campaign (scheduler-thread only)."""

    def __init__(
        self,
        name: str,
        system: DocsSystem,
        dataset_name: str,
        seed: int,
        shared_store: bool,
        path: Optional[str],
    ):
        self.name = name
        self.system = system
        self.dataset_name = dataset_name
        self.seed = seed
        self.shared_store = shared_store
        self.path = path
        self.accepted_answers = 0

    def summary(self) -> Dict[str, object]:
        status = self.system.durability_status()
        return {
            "name": self.name,
            "engine": self.system.config.engine,
            "dataset": self.dataset_name,
            "seed": self.seed,
            "storage": self.system.storage,
            "path": self.path,
            "shared_store": self.shared_store,
            "tasks": len(self.system.database.tasks()),
            "golden_count": len(self.system.golden_task_ids()),
            "accepted_answers": self.accepted_answers,
            "durability": status,
        }


class DocsService:
    """The DOCS serving plane: campaigns behind one request scheduler."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        on_fatal: Optional[Callable[[BaseException], None]] = None,
    ):
        self.config = config or ServiceConfig()
        self.config.validate()
        self._campaigns: Dict[str, _Campaign] = {}
        self._shared_store: Optional[SqliteWorkerQualityStore] = None
        self.scheduler = RequestScheduler(
            queue_limit=self.config.queue_limit,
            coalesce_max=self.config.coalesce_max,
            retry_after=self.config.retry_after,
            executors={
                "submit": self._execute_submit_batch,
                "assign": self._execute_assign_batch,
            },
            on_fatal=on_fatal,
        )
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        self.scheduler.start()
        self._started = True

    def stop(self, drain: bool = True) -> None:
        """Drain the queue, checkpoint and close every campaign.

        SQLite connections are thread-affine, and every campaign was
        opened on the scheduler thread — so the close runs there too,
        as a final (capacity-exempt) control item processed during the
        drain. Only when the scheduler is already dead (a simulated
        kill, or ``drain=False``) does the caller close best-effort.
        """
        closed = False
        if self._started:
            future: Optional["Future[object]"] = None
            try:
                future = self.scheduler.submit_request(
                    "control", None, run=self._close_all, force=True
                )
            except ReproError:
                pass  # already stopping; fall through to best-effort
            self.scheduler.stop(drain=drain)
            if future is not None:
                try:
                    future.result(timeout=5.0)
                    closed = True
                except BaseException:  # noqa: BLE001 — best-effort next
                    pass
            self._started = False
        if not closed:
            self._close_all(best_effort=True)

    def _close_all(self, best_effort: bool = False) -> None:
        for campaign in self._campaigns.values():
            try:
                try:
                    campaign.system.checkpoint()
                except (ReproError, sqlite3.Error):
                    pass  # degraded campaigns close as-is
                campaign.system.close()
            except Exception:  # noqa: BLE001
                if not best_effort:
                    raise
        self._campaigns.clear()

    def resume_campaigns(self) -> List[str]:
        """Reopen every campaign whose sidecar lives in ``db_dir``.

        ``repro serve --resume`` calls this before accepting traffic:
        each ``<name>.meta.json`` names the dataset (regenerated
        deterministically from its seed for the knowledge base) and the
        config the campaign ran under, and the hot state is rebuilt by
        :meth:`DocsSystem.resume` — snapshot plus journal tail,
        bit-identical to the last flush. With the scheduler running,
        the reopen executes on its thread (SQLite connections are
        thread-affine and all later access happens there).
        """
        if self.config.db_dir is None:
            return []
        if self._started:
            future = self.scheduler.submit_request(
                "control", None, run=self._resume_all, force=True
            )
            return future.result()  # type: ignore[return-value]
        return self._resume_all()

    def _resume_all(self) -> List[str]:
        resumed = []
        for entry in sorted(os.listdir(self.config.db_dir)):
            if not entry.endswith(".meta.json"):
                continue
            with open(
                os.path.join(self.config.db_dir, entry),
                encoding="utf-8",
            ) as handle:
                meta = json.load(handle)
            name = meta["name"]
            dataset = make_dataset(
                meta["dataset"],
                seed=meta["seed"],
                **meta.get("dataset_overrides", {}),
            )
            config = DocsConfig(**meta["config"])
            hot = self._engine_is_hot(config)
            store = (
                self._store_for(len(dataset.taxonomy)) if hot else None
            )
            system = DocsSystem.resume(
                meta["path"],
                config=config,
                kb=dataset.kb,
                worker_store=store,
                # Engines without snapshots rebuild by re-preparing
                # from the original dataset and replaying the journal.
                dataset=None if hot else dataset,
            )
            self._campaigns[name] = _Campaign(
                name=name,
                system=system,
                dataset_name=meta["dataset"],
                seed=meta["seed"],
                shared_store=store is not None,
                path=meta["path"],
            )
            resumed.append(name)
        return resumed

    @staticmethod
    def _engine_is_hot(config: DocsConfig) -> bool:
        """Whether the configured engine advertises hot state (and so
        supports digests, snapshots, and the shared worker store)."""
        from repro.engines import CAP_HOT_STATE, make_engine

        probe = make_engine(
            config.engine, seed=config.seed, config=config
        )
        return CAP_HOT_STATE in probe.capabilities()

    def _store_for(
        self, num_domains: int
    ) -> Optional[SqliteWorkerQualityStore]:
        """The service-wide shared worker store, opened on first use.

        The store's taxonomy size is fixed by the first campaign; a
        later campaign with a different taxonomy runs without the
        shared model (reflected as ``"shared_store": false``) rather
        than failing — cross-campaign transfer only makes sense over
        one taxonomy anyway.
        """
        if self._shared_store is None:
            path = self.config.worker_db
            if path is None and self.config.db_dir is not None:
                path = os.path.join(self.config.db_dir, "workers.db")
            self._shared_store = SqliteWorkerQualityStore(
                num_domains, path=path or ":memory:"
            )
            return self._shared_store
        if self._shared_store.num_domains != num_domains:
            return None
        return self._shared_store

    # ------------------------------------------------------------------
    # direct (unqueued) endpoints — must work when the queue is full
    # ------------------------------------------------------------------

    def health(self) -> ServiceResponse:
        degraded = [
            name
            for name, campaign in self._campaigns.items()
            if campaign.system.durability_status().get("degraded")
        ]
        body = {
            "status": "degraded" if degraded else "ok",
            "campaigns": len(self._campaigns),
            "degraded_campaigns": sorted(degraded),
            "queue": {
                "depth": self.scheduler.depth(),
                "limit": self.scheduler.queue_limit,
            },
        }
        return 200, body, []

    def metrics(self) -> ServiceResponse:
        body = {
            "scheduler": self.scheduler.metrics(),
            "campaigns": {
                name: campaign.accepted_answers
                for name, campaign in self._campaigns.items()
            },
        }
        return 200, body, []

    # ------------------------------------------------------------------
    # queued endpoints — each returns a Future the HTTP layer awaits
    # ------------------------------------------------------------------

    def _control(
        self, run: Callable[[], ServiceResponse]
    ) -> "Future[object]":
        return self.scheduler.submit_request("control", None, run=run)

    def _campaign(self, name: str) -> _Campaign:
        try:
            return self._campaigns[name]
        except KeyError:
            raise UnknownCampaignError(name) from None

    def list_campaigns(self) -> "Future[object]":
        def run() -> ServiceResponse:
            body = {
                "campaigns": [
                    self._campaigns[name].summary()
                    for name in sorted(self._campaigns)
                ]
            }
            return 200, body, []

        return self._control(run)

    def create_campaign(self, payload: object) -> "Future[object]":
        body = _require_object(payload, "campaign creation body")
        name = _require_str(body, "name")
        if not _NAME_RE.match(name):
            raise ValidationError(
                f"invalid campaign name {name!r}; use 1-64 characters "
                "from [A-Za-z0-9_.-], starting alphanumeric"
            )
        dataset_name = _require_str(body, "dataset")
        if dataset_name not in DATASET_NAMES:
            raise ValidationError(
                f"unknown dataset {dataset_name!r}; expected one of "
                f"{DATASET_NAMES}"
            )
        seed = int(body.get("seed", 0))
        overrides = _require_object(
            body.get("config", {}), "config overrides"
        )
        unknown = sorted(set(overrides) - _CONFIG_FIELDS)
        if unknown:
            raise ValidationError(
                f"unknown config field(s) {unknown}; valid fields: "
                f"{sorted(_CONFIG_FIELDS)}"
            )
        overrides = dict(overrides)
        if "engine" in body:
            # Top-level shorthand for config["engine"]: pick the hosted
            # inference engine by registry name.
            engine_name = body["engine"]
            if not isinstance(engine_name, str):
                raise ValidationError("engine must be a registry name")
            from repro.engines import engine_names

            if engine_name not in engine_names():
                raise ValidationError(
                    f"unknown engine {engine_name!r}; registered "
                    f"engines: {engine_names()}"
                )
            overrides["engine"] = engine_name
        dataset_overrides = _require_object(
            body.get("dataset_overrides", {}), "dataset_overrides"
        )
        storage = body.get(
            "storage",
            "sqlite" if self.config.db_dir is not None else "memory",
        )
        if storage not in ("memory", "sqlite"):
            raise ValidationError(
                f"unknown storage {storage!r}; expected 'memory' or "
                "'sqlite'"
            )
        if storage == "sqlite" and self.config.db_dir is None:
            raise ValidationError(
                "sqlite storage needs the server started with --db-dir"
            )

        def run() -> ServiceResponse:
            if name in self._campaigns:
                raise ConflictError(
                    f"campaign {name!r} already exists; pick another "
                    "name, or DELETE /campaigns/" + name + " first"
                )
            config = DocsConfig(**overrides)
            dataset = make_dataset(
                dataset_name, seed=seed, **dataset_overrides
            )
            # Only hot-state engines can maintain the shared
            # cross-campaign worker model; others run without it.
            store = (
                self._store_for(len(dataset.taxonomy))
                if self._engine_is_hot(config)
                else None
            )
            path = None
            if storage == "sqlite":
                path = os.path.join(
                    self.config.db_dir, f"{name}.db"
                )
                if os.path.exists(path):
                    raise ConflictError(
                        f"campaign database {path!r} already exists; "
                        "restart the server with --resume to reopen "
                        "it, or remove the file"
                    )
            system = DocsSystem(
                config,
                storage=storage,
                path=path,
                worker_store=store,
            )
            system.prepare(dataset)
            campaign = _Campaign(
                name=name,
                system=system,
                dataset_name=dataset_name,
                seed=seed,
                shared_store=store is not None,
                path=path,
            )
            self._campaigns[name] = campaign
            if path is not None:
                self._write_sidecar(
                    campaign, dict(overrides), dataset_overrides
                )
            body_out = campaign.summary()
            body_out["golden_task_ids"] = system.golden_task_ids()
            return 201, body_out, []

        return self._control(run)

    def _write_sidecar(
        self,
        campaign: _Campaign,
        config_overrides: Dict[str, object],
        dataset_overrides: Dict[str, object],
    ) -> None:
        meta = {
            "name": campaign.name,
            "dataset": campaign.dataset_name,
            "seed": campaign.seed,
            "dataset_overrides": dataset_overrides,
            "config": dataclasses.asdict(campaign.system.config),
            "path": campaign.path,
        }
        sidecar = os.path.join(
            self.config.db_dir, f"{campaign.name}.meta.json"
        )
        with open(sidecar, "w", encoding="utf-8") as handle:
            json.dump(meta, handle, indent=2)

    def get_campaign(self, name: str) -> "Future[object]":
        def run() -> ServiceResponse:
            campaign = self._campaign(name)
            body = campaign.summary()
            # Engines without the hot-state capability have no digest;
            # the key stays in the schema as null.
            body["hot_state_digest"] = (
                campaign.system.hot_state_digest()
                if self._engine_is_hot(campaign.system.config)
                else None
            )
            return 200, body, []

        return self._control(run)

    def delete_campaign(self, name: str) -> "Future[object]":
        def run() -> ServiceResponse:
            campaign = self._campaign(name)
            try:
                campaign.system.checkpoint()
            except (ReproError, sqlite3.Error):
                pass  # closing anyway; files keep their last flush
            campaign.system.close()
            del self._campaigns[name]
            return 200, {"name": name, "closed": True}, []

        return self._control(run)

    def add_tasks(self, name: str, payload: object) -> "Future[object]":
        body = _require_object(payload, "task upload body")
        raw_tasks = body.get("tasks")
        if not isinstance(raw_tasks, list) or not raw_tasks:
            raise ValidationError(
                "task upload body needs a non-empty 'tasks' list"
            )
        tasks = [_parse_task(raw, index) for index, raw in
                 enumerate(raw_tasks)]

        def run() -> ServiceResponse:
            campaign = self._campaign(name)
            report = campaign.system.add_tasks(tasks)
            body_out = {
                "campaign": name,
                "ingested": report.tasks,
                "linked": report.linked,
                "entities": report.entities,
                "total_tasks": len(campaign.system.database.tasks()),
            }
            return 201, body_out, []

        return self._control(run)

    def golden(self, name: str) -> "Future[object]":
        def run() -> ServiceResponse:
            campaign = self._campaign(name)
            return (
                200,
                {
                    "campaign": name,
                    "golden_task_ids": (
                        campaign.system.golden_task_ids()
                    ),
                },
                [],
            )

        return self._control(run)

    def bootstrap(
        self, name: str, worker_id: str, payload: object
    ) -> "Future[object]":
        body = _require_object(payload, "bootstrap body")
        raw = body.get("answers")
        if not isinstance(raw, list):
            raise ValidationError(
                "bootstrap body needs an 'answers' list of "
                "{task_id, choice} objects covering the golden tasks"
            )
        parsed = []
        for index, item in enumerate(raw):
            obj = _require_object(item, f"answers[{index}]")
            parsed.append(
                (
                    _require_int(obj, "task_id", f"answers[{index}]"),
                    _require_int(obj, "choice", f"answers[{index}]"),
                )
            )

        def run() -> ServiceResponse:
            campaign = self._campaign(name)
            if not campaign.system.needs_bootstrap(worker_id):
                raise ConflictError(
                    f"worker {worker_id!r} is already bootstrapped in "
                    f"campaign {name!r} (directly, or via the shared "
                    "worker store); request an assignment instead"
                )
            answers = [
                Answer(worker_id, task_id, choice)
                for task_id, choice in parsed
            ]
            campaign.system.bootstrap(worker_id, answers)
            return (
                200,
                {
                    "campaign": name,
                    "worker_id": worker_id,
                    "bootstrapped": True,
                },
                [],
            )

        return self._control(run)

    def worker_info(
        self, name: str, worker_id: str
    ) -> "Future[object]":
        def run() -> ServiceResponse:
            campaign = self._campaign(name)
            system = campaign.system
            needs = system.needs_bootstrap(worker_id)
            # Engines without the hot-state capability keep no
            # per-domain worker model; quality reads as null.
            quality = (
                _jsonable(
                    system.quality_store.blended_quality(worker_id)
                )
                if self._engine_is_hot(system.config)
                else None
            )
            answered = system.database.answers.tasks_answered_by(
                worker_id
            )
            return (
                200,
                {
                    "campaign": name,
                    "worker_id": worker_id,
                    "needs_bootstrap": needs,
                    "quality": quality,
                    "tasks_answered": len(answered),
                },
                [],
            )

        return self._control(run)

    def assign(
        self, name: str, worker_id: str, k: Optional[int]
    ) -> "Future[object]":
        if k is not None and k < 1:
            raise ValidationError("k must be >= 1 when given")
        return self.scheduler.submit_request(
            "assign", worker_id, group_key=(name, k)
        )

    def submit(self, name: str, payload: object) -> "Future[object]":
        body = _require_object(payload, "answer body")
        worker_id = _require_str(body, "worker_id")
        task_id = _require_int(body, "task_id")
        choice = _require_int(body, "choice")
        answer = Answer(worker_id, task_id, choice)
        return self.scheduler.submit_request(
            "submit", answer, group_key=name
        )

    def truths(self, name: str) -> "Future[object]":
        def run() -> ServiceResponse:
            campaign = self._campaign(name)
            truths = campaign.system.current_truths()
            return (
                200,
                {
                    "campaign": name,
                    "truths": {str(t): v for t, v in truths.items()},
                },
                [],
            )

        return self._control(run)

    def truth(self, name: str, task_id: int) -> "Future[object]":
        def run() -> ServiceResponse:
            campaign = self._campaign(name)
            truths = campaign.system.current_truths()
            if task_id not in truths:
                raise UnknownTaskError(
                    task_id, context=f"in campaign {name!r}"
                )
            return (
                200,
                {
                    "campaign": name,
                    "task_id": task_id,
                    "truth": truths[task_id],
                },
                [],
            )

        return self._control(run)

    def analytics(
        self,
        name: str,
        query: str,
        params: Optional[Dict[str, List[str]]] = None,
    ) -> "Future[object]":
        """``GET /campaigns/<name>/analytics/<query>`` — run one
        SQL-pushdown analytics report on the scheduler thread.

        Read-only: the query sees the campaign's durable answer prefix
        (everything committed by the last flush/checkpoint) and builds
        no Python objects; query string parameters pass through to
        :meth:`DocsSystem.analytics` untouched."""

        def run() -> ServiceResponse:
            campaign = self._campaign(name)
            body = campaign.system.analytics(query, params)
            body["campaign"] = name
            return 200, body, []

        return self._control(run)

    def durability(self, name: str) -> "Future[object]":
        def run() -> ServiceResponse:
            campaign = self._campaign(name)
            status = dict(campaign.system.durability_status())
            status["campaign"] = name
            return 200, status, []

        return self._control(run)

    def checkpoint(self, name: str) -> "Future[object]":
        def run() -> ServiceResponse:
            campaign = self._campaign(name)
            try:
                flushed = campaign.system.checkpoint()
            except sqlite3.Error as exc:
                raise ConflictError(
                    f"checkpoint failed; campaign {name!r} remains "
                    f"degraded and keeps serving (cause: {exc}). Fix "
                    "the storage and POST the checkpoint again — "
                    "buffered answers commit then."
                ) from exc
            return (
                200,
                {"campaign": name, "flushed": flushed},
                [],
            )

        return self._control(run)

    def finalize(self, name: str) -> "Future[object]":
        def run() -> ServiceResponse:
            campaign = self._campaign(name)
            truths = campaign.system.finalize()
            return (
                200,
                {
                    "campaign": name,
                    "truths": {str(t): v for t, v in truths.items()},
                },
                [],
            )

        return self._control(run)

    # ------------------------------------------------------------------
    # batch executors (scheduler thread)
    # ------------------------------------------------------------------

    def _execute_submit_batch(
        self, group_key: Hashable, payloads: List[object]
    ) -> List[object]:
        """Apply a coalesced run of submits, then flush the journal
        once — the batch's shared durability point. A per-item failure
        (unknown task, duplicate answer) fails that item alone; the
        rest of the batch still commits."""
        name = group_key
        campaign = self._campaign(name)
        results: List[object] = []
        accepted = 0
        for answer in payloads:
            try:
                campaign.system.submit(answer)
            except ReproError as exc:
                results.append(exc)
                continue
            accepted += 1
            results.append(None)  # placeholder until flush
        campaign.accepted_answers += accepted
        campaign.system.flush_journal()
        status = campaign.system.durability_status()
        durable = bool(
            status.get("mode") == "durable"
            and not status.get("degraded")
        )
        for index, result in enumerate(results):
            if result is None:
                answer = payloads[index]
                results[index] = (
                    200,
                    {
                        "campaign": name,
                        "worker_id": answer.worker_id,
                        "task_id": answer.task_id,
                        "accepted": True,
                        "durable": durable,
                    },
                    [],
                )
        return results

    def _execute_assign_batch(
        self, group_key: Hashable, payloads: List[object]
    ) -> List[object]:
        """Serve a coalesced run of same-``k`` arrivals as one
        ``assign_many`` — with a serving pool configured the selects
        fan out across its processes inside one quiesce section."""
        name, k = group_key
        campaign = self._campaign(name)
        try:
            hits = campaign.system.assign_many(payloads, k=k)
        except UnknownWorkerError:
            # One unbootstrapped worker must not fail the whole batch:
            # fall back to per-worker assigns so each id gets its own
            # success or 404.
            results: List[object] = []
            for worker_id in payloads:
                try:
                    hit = campaign.system.assign(worker_id, k)
                except ReproError as exc:
                    results.append(exc)
                else:
                    results.append(_assign_body(name, worker_id, hit))
            return results
        return [
            _assign_body(name, worker_id, hit)
            for worker_id, hit in zip(payloads, hits)
        ]

    # ------------------------------------------------------------------
    # error mapping
    # ------------------------------------------------------------------

    def map_exception(
        self, exc: BaseException
    ) -> Optional[ServiceResponse]:
        """Exception -> (status, error body, headers); None = reraise."""
        if isinstance(exc, QueueFullError):
            retry = str(max(1, math.ceil(exc.retry_after)))
            return (
                429,
                _error_body("queue_full", str(exc)),
                [("Retry-After", retry)],
            )
        if isinstance(
            exc,
            (
                UnknownCampaignError,
                UnknownWorkerError,
                UnknownTaskError,
                UnknownAnalyticsQueryError,
            ),
        ):
            return 404, _error_body("not_found", str(exc)), []
        if isinstance(exc, ConflictError):
            return 409, _error_body("conflict", str(exc)), []
        if isinstance(exc, SchedulerStopped):
            return 503, _error_body("unavailable", str(exc)), []
        if isinstance(exc, ReproError):
            return 400, _error_body("validation", str(exc)), []
        return None


def _assign_body(
    name: str, worker_id: str, hit: List[int]
) -> ServiceResponse:
    return (
        200,
        {
            "campaign": name,
            "worker_id": worker_id,
            "task_ids": list(hit),
        },
        [],
    )


def _error_body(kind: str, message: str) -> Dict[str, object]:
    return {"error": {"type": kind, "message": message}}


def _require_object(value: object, what: str) -> Dict[str, object]:
    if not isinstance(value, dict):
        raise ValidationError(
            f"{what} must be a JSON object, got "
            f"{type(value).__name__}"
        )
    return value


def _require_str(body: Dict[str, object], field: str) -> str:
    value = body.get(field)
    if not isinstance(value, str) or not value:
        raise ValidationError(
            f"missing or non-string field {field!r}; send it as a "
            "JSON string"
        )
    return value


def _require_int(
    body: Dict[str, object], field: str, where: str = "body"
) -> int:
    value = body.get(field)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(
            f"missing or non-integer field {field!r} in {where}; "
            "send it as a JSON integer"
        )
    return value


def _parse_task(raw: object, index: int) -> Task:
    body = _require_object(raw, f"tasks[{index}]")
    task_id = _require_int(body, "task_id", f"tasks[{index}]")
    text = _require_str(body, "text")
    num_choices = _require_int(body, "num_choices", f"tasks[{index}]")
    vector = body.get("domain_vector")
    domain_vector = None
    if vector is not None:
        if not isinstance(vector, list):
            raise ValidationError(
                f"tasks[{index}].domain_vector must be a list of "
                "floats (or omitted, to run entity linking + DVE)"
            )
        domain_vector = np.asarray(vector, dtype=np.float64)
    ground_truth = body.get("ground_truth")
    if ground_truth is not None and (
        isinstance(ground_truth, bool)
        or not isinstance(ground_truth, int)
    ):
        raise ValidationError(
            f"tasks[{index}].ground_truth must be an integer choice"
        )
    return Task(
        task_id=task_id,
        text=text,
        num_choices=num_choices,
        domain_vector=domain_vector,
        ground_truth=ground_truth,
    )


def _jsonable(value: object) -> object:
    if isinstance(value, np.ndarray):
        return [float(x) for x in value]
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    return value
