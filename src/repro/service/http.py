"""A dependency-free asyncio HTTP/1.1 front end for the DOCS service.

Hand-rolled on ``asyncio.start_server`` because the container ships no
web framework — and the protocol surface the service needs (JSON in,
JSON out, keep-alive, a handful of routes) is small enough that a
framework would mostly add moving parts. Connection handlers do no
work themselves: they parse, hand the request to
:class:`~repro.service.app.DocsService`, and await the scheduler
future. The event loop therefore stays responsive — ``/healthz``
answers while the arrival queue is refusing work with 429s.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import ValidationError
from repro.service.app import DocsService, ServiceResponse, _error_body

__all__ = ["ServiceServer", "InThreadServer"]

#: Request body cap — large enough for a bulk task upload, small
#: enough that one client cannot balloon server memory.
MAX_BODY = 8 * 1024 * 1024
MAX_HEADER_LINE = 16 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

Handler = Callable[..., object]


def _routes() -> List[Tuple[str, "re.Pattern[str]", Handler]]:
    camp = r"/campaigns/(?P<name>[^/]+)"
    return [
        ("GET", re.compile(r"^/healthz$"),
         lambda app, m, q, b: app.health()),
        ("GET", re.compile(r"^/metricsz$"),
         lambda app, m, q, b: app.metrics()),
        ("GET", re.compile(r"^/campaigns$"),
         lambda app, m, q, b: app.list_campaigns()),
        ("POST", re.compile(r"^/campaigns$"),
         lambda app, m, q, b: app.create_campaign(b)),
        ("GET", re.compile(f"^{camp}$"),
         lambda app, m, q, b: app.get_campaign(m["name"])),
        ("DELETE", re.compile(f"^{camp}$"),
         lambda app, m, q, b: app.delete_campaign(m["name"])),
        ("POST", re.compile(f"^{camp}/tasks$"),
         lambda app, m, q, b: app.add_tasks(m["name"], b)),
        ("GET", re.compile(f"^{camp}/golden$"),
         lambda app, m, q, b: app.golden(m["name"])),
        ("POST", re.compile(
            f"^{camp}/workers/(?P<wid>[^/]+)/bootstrap$"),
         lambda app, m, q, b: app.bootstrap(m["name"], m["wid"], b)),
        ("GET", re.compile(
            f"^{camp}/workers/(?P<wid>[^/]+)/assignment$"),
         lambda app, m, q, b: app.assign(
             m["name"], m["wid"], _query_k(q))),
        ("GET", re.compile(f"^{camp}/workers/(?P<wid>[^/]+)$"),
         lambda app, m, q, b: app.worker_info(m["name"], m["wid"])),
        ("POST", re.compile(f"^{camp}/answers$"),
         lambda app, m, q, b: app.submit(m["name"], b)),
        ("GET", re.compile(f"^{camp}/truths/(?P<tid>-?\\d+)$"),
         lambda app, m, q, b: app.truth(m["name"], int(m["tid"]))),
        ("GET", re.compile(f"^{camp}/truths$"),
         lambda app, m, q, b: app.truths(m["name"])),
        ("GET", re.compile(f"^{camp}/analytics/(?P<query>[^/]+)$"),
         lambda app, m, q, b: app.analytics(m["name"], m["query"], q)),
        ("GET", re.compile(f"^{camp}/durability$"),
         lambda app, m, q, b: app.durability(m["name"])),
        ("POST", re.compile(f"^{camp}/checkpoint$"),
         lambda app, m, q, b: app.checkpoint(m["name"])),
        ("POST", re.compile(f"^{camp}/finalize$"),
         lambda app, m, q, b: app.finalize(m["name"])),
    ]


def _query_k(query: Dict[str, List[str]]) -> Optional[int]:
    values = query.get("k")
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError:
        raise ValidationError(
            f"query parameter k must be an integer, got {values[0]!r}"
        ) from None


class ServiceServer:
    """The asyncio server; owns the listening socket, not the app."""

    def __init__(
        self,
        app: DocsService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.app = app
        self.host = host
        self.port = port
        self._routes = _routes()
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                method, path, headers, payload = request
                status, body, extra = await self._dispatch(
                    method, path, payload
                )
                keep = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                self._write_response(
                    writer, status, body, extra, keep
                )
                await writer.drain()
                if not keep:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> Optional[Tuple[str, str, Dict[str, str], Optional[object]]]:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").rstrip("\r\n").split(" ")
        if len(parts) != 3:
            self._write_response(
                writer,
                400,
                _error_body(
                    "validation",
                    "malformed request line; expected "
                    "'METHOD /path HTTP/1.1'",
                ),
                [],
                keep=False,
            )
            await writer.drain()
            return None
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if len(raw) > MAX_HEADER_LINE:
                return None
            text = raw.decode("latin-1").rstrip("\r\n")
            if not text:
                break
            key, _, value = text.partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY:
            self._write_response(
                writer,
                413,
                _error_body(
                    "validation",
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY}-byte cap; split the upload into "
                    "smaller batches",
                ),
                [],
                keep=False,
            )
            await writer.drain()
            return None
        payload: Optional[object] = None
        if length:
            raw_body = await reader.readexactly(length)
            try:
                payload = json.loads(raw_body)
            except json.JSONDecodeError as exc:
                payload = _Unparseable(str(exc))
        return method, target, headers, payload

    async def _dispatch(
        self, method: str, target: str, payload: Optional[object]
    ) -> ServiceResponse:
        split = urlsplit(target)
        path = split.path
        query = parse_qs(split.query)
        matched_other_method: List[str] = []
        for route_method, pattern, handler in self._routes:
            match = pattern.match(path)
            if not match:
                continue
            if route_method != method:
                matched_other_method.append(route_method)
                continue
            if isinstance(payload, _Unparseable):
                return (
                    400,
                    _error_body(
                        "validation",
                        "request body is not valid JSON: "
                        + payload.reason,
                    ),
                    [],
                )
            try:
                result = handler(
                    self.app, match.groupdict(), query, payload
                )
                if isinstance(result, Future):
                    result = await asyncio.wrap_future(result)
            except BaseException as exc:  # noqa: BLE001 — mapped below
                mapped = self.app.map_exception(exc)
                if mapped is None:
                    return (
                        500,
                        _error_body(
                            "internal",
                            f"unhandled {type(exc).__name__}: {exc}",
                        ),
                        [],
                    )
                return mapped
            return result  # type: ignore[return-value]
        if matched_other_method:
            return (
                405,
                _error_body(
                    "validation",
                    f"{method} is not supported on {path}; use "
                    + " or ".join(sorted(set(matched_other_method))),
                ),
                [("Allow", ", ".join(sorted(set(matched_other_method))))],
            )
        return (
            404,
            _error_body(
                "not_found",
                f"no route for {method} {path}; see docs/api.md for "
                "the endpoint table",
            ),
            [],
        )

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: Dict[str, object],
        extra: List[Tuple[str, str]],
        keep: bool,
    ) -> None:
        encoded = json.dumps(body).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(encoded)}",
            f"Connection: {'keep-alive' if keep else 'close'}",
        ]
        lines.extend(f"{k}: {v}" for k, v in extra)
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + encoded)


class _Unparseable:
    """Marker for a body that arrived but failed JSON decoding."""

    def __init__(self, reason: str):
        self.reason = reason


class InThreadServer:
    """Run a :class:`ServiceServer` on a background event loop.

    The shape tests and the bench harness use: the caller keeps the
    :class:`DocsService` handle (to pause the scheduler, reach into a
    campaign's journal, arm fault points) while real HTTP flows over a
    real socket.
    """

    def __init__(
        self,
        app: DocsService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.app = app
        self.server = ServiceServer(app, host=host, port=port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    def start(self) -> "InThreadServer":
        self.app.start()
        self._thread = threading.Thread(
            target=self._run, name="repro-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("HTTP server failed to start in 10s")
        return self

    @property
    def base_url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.app.stop()
