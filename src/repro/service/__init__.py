"""DOCS as a service: the network-facing serving plane.

Three layers, strictly separated:

- :mod:`repro.service.scheduler` — the bounded arrival queue and its
  single consumer thread (backpressure, coalescing, durable acks).
- :mod:`repro.service.app` — campaign registry and endpoint semantics
  over :class:`~repro.system.DocsSystem`, transport-free.
- :mod:`repro.service.http` — the asyncio stdlib HTTP/1.1 front end.
"""

from repro.service.app import (
    ConflictError,
    DocsService,
    ServiceConfig,
    UnknownCampaignError,
)
from repro.service.http import InThreadServer, ServiceServer
from repro.service.scheduler import (
    QueueFullError,
    RequestScheduler,
    SchedulerStopped,
)

__all__ = [
    "ConflictError",
    "DocsService",
    "ServiceConfig",
    "UnknownCampaignError",
    "InThreadServer",
    "ServiceServer",
    "QueueFullError",
    "RequestScheduler",
    "SchedulerStopped",
]
