"""The request scheduler: a bounded queue between HTTP and the arena.

The service's concurrency model is deliberately asymmetric. Any number
of asyncio connection handlers *enqueue* work; exactly **one**
scheduler thread *executes* it against the campaign systems. That
single thread is the sole writer the arena ever sees, so HTTP
concurrency can never violate the single-writer invariant the
:class:`~repro.system.parallel.ServingPool` state machine protects —
the quiesce/write sections run, as always, from one thread.

Three properties fall out of the queue discipline:

``Backpressure``
    The arrival queue is bounded. When it is full the enqueue fails
    *immediately* with :class:`QueueFullError` — the HTTP layer turns
    that into ``429 Too Many Requests`` with a ``Retry-After`` hint.
    Work is refused at the door, never silently dropped after
    acceptance: an enqueued request always resolves.

``Coalescing``
    The scheduler drains up to ``coalesce_max`` queued items at a time
    and executes *contiguous runs* with the same group key as one
    batch: concurrent submits to a campaign become one
    ``journal.flush()``; concurrent assignment requests with the same
    ``k`` become one ``assign_many`` fan-out over the serving pool.
    Contiguity keeps ordering trivial — items are never reordered, so
    two submits from the same worker are applied in arrival order.

``Durable ack``
    A submit future resolves only after the batch executor returns,
    and the submit executor flushes the journal before returning — by
    the time a client sees 200, the answer is on disk (or the campaign
    is explicitly degraded, which the response body says).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from concurrent.futures import Future
from typing import Callable, Deque, Dict, Hashable, List, Optional, Tuple

from repro.errors import ReproError
from repro.platform.faults import CrashPoint

__all__ = [
    "QueueFullError",
    "SchedulerStopped",
    "RequestScheduler",
]

#: Request kinds the scheduler understands. ``submit`` and ``assign``
#: are batchable through registered executors; ``control`` items carry
#: their own closure and never coalesce.
KINDS = ("submit", "assign", "control")

#: Ring size for per-kind latency samples — big enough for stable
#: p99 estimates over a bench run, bounded so a long-lived server
#: never grows without limit.
_LATENCY_RING = 8192


class QueueFullError(ReproError):
    """The arrival queue is at capacity; the request was refused.

    Carries the ``retry_after`` hint (seconds) the HTTP layer surfaces
    as a ``Retry-After`` header. Refusal happens at enqueue time —
    nothing about the request was executed or stored.
    """

    def __init__(self, depth: int, limit: int, retry_after: float):
        super().__init__(
            f"arrival queue full ({depth}/{limit} requests queued); "
            f"retry after {retry_after:.2f}s — the service is applying "
            "backpressure, not failing"
        )
        self.retry_after = retry_after


class SchedulerStopped(ReproError):
    """Work was submitted to (or stranded in) a stopped scheduler."""


@dataclass
class _Item:
    kind: str
    group_key: Optional[Hashable]
    payload: object
    future: "Future[object]"
    enqueued: float
    run: Optional[Callable[[], object]] = None


@dataclass
class _Stats:
    """Mutable counters; read under the scheduler lock."""

    enqueued: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in KINDS}
    )
    completed: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in KINDS}
    )
    errored: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in KINDS}
    )
    rejected: int = 0
    batches: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in KINDS}
    )
    max_depth: int = 0


BatchExecutor = Callable[[Hashable, List[object]], List[object]]


class RequestScheduler:
    """Single-consumer bounded queue with contiguous-run coalescing.

    Args:
        queue_limit: maximum queued (accepted, unexecuted) requests.
        coalesce_max: maximum items drained per scheduling round; the
            upper bound on batch size, and on how many submits share
            one journal flush.
        retry_after: seconds clients should wait before retrying a
            refused request.
        executors: batch executors keyed by kind (``submit`` /
            ``assign``). An executor receives ``(group_key, payloads)``
            and returns one result per payload **in order**; a result
            that is an ``Exception`` instance fails that item alone.
        on_fatal: called with a :class:`CrashPoint` that escaped an
            executor — the fault harness's simulated kill. The serve
            CLI installs ``os._exit`` here so an armed fault point
            genuinely terminates the process mid-flight.
    """

    def __init__(
        self,
        queue_limit: int = 128,
        coalesce_max: int = 64,
        retry_after: float = 0.05,
        executors: Optional[Dict[str, BatchExecutor]] = None,
        on_fatal: Optional[Callable[[BaseException], None]] = None,
    ):
        if queue_limit < 1:
            raise ReproError("queue_limit must be >= 1")
        if coalesce_max < 1:
            raise ReproError("coalesce_max must be >= 1")
        self.queue_limit = queue_limit
        self.coalesce_max = coalesce_max
        self.retry_after = retry_after
        self._executors = dict(executors or {})
        self._on_fatal = on_fatal
        self._queue: Deque[_Item] = deque()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._stats = _Stats()
        self._latency: Dict[str, Deque[float]] = {
            kind: deque(maxlen=_LATENCY_RING) for kind in KINDS
        }
        self._paused = False
        self._stopping = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise SchedulerStopped("scheduler already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting work; optionally finish what was accepted.

        With ``drain=True`` (the default) every already-accepted
        request executes before the thread exits — the accepted ⇒
        resolved contract holds through shutdown. With ``drain=False``
        stranded items fail with :class:`SchedulerStopped`.
        """
        with self._cond:
            self._stopping = True
            if not drain:
                stranded = list(self._queue)
                self._queue.clear()
            else:
                stranded = []
            self._paused = False
            self._cond.notify_all()
        for item in stranded:
            item.future.set_exception(
                SchedulerStopped(
                    "scheduler stopped before the request ran; "
                    "the request was not executed — retry against "
                    "a live server"
                )
            )
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def pause(self) -> None:
        """Hold execution (enqueues still accepted up to the limit).

        A test/ops hook: pausing lets a test fill the queue
        deterministically and observe the 429 behaviour without racing
        the consumer; ``resume_consumer()`` releases the backlog.
        """
        with self._cond:
            self._paused = True

    def resume_consumer(self) -> None:
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------

    def submit_request(
        self,
        kind: str,
        payload: object,
        group_key: Optional[Hashable] = None,
        run: Optional[Callable[[], object]] = None,
        force: bool = False,
    ) -> "Future[object]":
        """Enqueue one request; returns the future its handler awaits.

        Raises :class:`QueueFullError` when the bounded queue is at
        capacity and :class:`SchedulerStopped` after shutdown began.
        The capacity check and the append are atomic — the queue depth
        can never exceed ``queue_limit``. ``force`` bypasses the
        capacity check (never the stop check) — reserved for internal
        lifecycle work like the shutdown close, which must reach the
        scheduler thread even under full load.
        """
        if kind not in KINDS:
            raise ReproError(f"unknown request kind {kind!r}")
        if kind == "control" and run is None:
            raise ReproError("control requests need a run() closure")
        future: "Future[object]" = Future()
        item = _Item(
            kind=kind,
            group_key=group_key,
            payload=payload,
            future=future,
            enqueued=time.monotonic(),
            run=run,
        )
        with self._cond:
            if self._stopping:
                raise SchedulerStopped(
                    "service is shutting down; no new requests accepted"
                )
            depth = len(self._queue)
            if depth >= self.queue_limit and not force:
                self._stats.rejected += 1
                raise QueueFullError(
                    depth, self.queue_limit, self.retry_after
                )
            self._queue.append(item)
            self._stats.enqueued[kind] += 1
            self._stats.max_depth = max(
                self._stats.max_depth, depth + 1
            )
            self._cond.notify()
        return future

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while (
                    not self._queue or self._paused
                ) and not self._stopping:
                    self._cond.wait()
                if self._stopping and not self._queue:
                    return
                if self._paused and not self._stopping:
                    continue
                batch: List[_Item] = []
                while self._queue and len(batch) < self.coalesce_max:
                    batch.append(self._queue.popleft())
            try:
                self._execute(batch)
            except CrashPoint as crash:
                # A simulated kill from the fault harness: fail what
                # was in flight, then hand the crash to the installed
                # handler (the serve CLI dies here, like a SIGKILL at
                # the armed point). Without a handler (in-process
                # tests) the scheduler stops and strands nothing —
                # queued futures fail instead of hanging forever.
                for item in batch:
                    if not item.future.done():
                        item.future.set_exception(crash)
                if self._on_fatal is not None:
                    self._on_fatal(crash)
                with self._cond:
                    self._stopping = True
                    stranded = list(self._queue)
                    self._queue.clear()
                for item in stranded:
                    item.future.set_exception(crash)
                raise

    def _execute(self, batch: List[_Item]) -> None:
        index = 0
        while index < len(batch):
            item = batch[index]
            if item.kind == "control":
                self._execute_control(item)
                index += 1
                continue
            group = [item]
            while (
                index + len(group) < len(batch)
                and batch[index + len(group)].kind == item.kind
                and batch[index + len(group)].group_key
                == item.group_key
            ):
                group.append(batch[index + len(group)])
            self._execute_group(item.kind, item.group_key, group)
            index += len(group)

    def _execute_control(self, item: _Item) -> None:
        try:
            result = item.run()  # type: ignore[misc]
        except CrashPoint:
            raise
        except BaseException as exc:  # noqa: BLE001 — fan to future
            self._finish(item, error=exc)
            return
        self._finish(item, result=result)

    def _execute_group(
        self,
        kind: str,
        group_key: Optional[Hashable],
        group: List[_Item],
    ) -> None:
        executor = self._executors.get(kind)
        if executor is None:
            error: BaseException = SchedulerStopped(
                f"no executor registered for kind {kind!r}"
            )
            for item in group:
                self._finish(item, error=error)
            return
        try:
            results = executor(group_key, [i.payload for i in group])
        except CrashPoint:
            raise
        except BaseException as exc:  # noqa: BLE001 — fan to futures
            for item in group:
                self._finish(item, error=exc)
            return
        with self._lock:
            self._stats.batches[kind] += 1
        for item, result in zip(group, results):
            if isinstance(result, BaseException):
                self._finish(item, error=result)
            else:
                self._finish(item, result=result)

    def _finish(
        self,
        item: _Item,
        result: object = None,
        error: Optional[BaseException] = None,
    ) -> None:
        elapsed = time.monotonic() - item.enqueued
        with self._lock:
            self._latency[item.kind].append(elapsed)
            if error is None:
                self._stats.completed[item.kind] += 1
            else:
                self._stats.errored[item.kind] += 1
        if error is None:
            item.future.set_result(result)
        else:
            item.future.set_exception(error)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def metrics(self) -> Dict[str, object]:
        """A point-in-time snapshot for ``/metricsz`` and the bench."""
        with self._lock:
            snapshot: Dict[str, object] = {
                "queue_depth": len(self._queue),
                "queue_limit": self.queue_limit,
                "max_depth": self._stats.max_depth,
                "rejected_429": self._stats.rejected,
                "enqueued": dict(self._stats.enqueued),
                "completed": dict(self._stats.completed),
                "errored": dict(self._stats.errored),
                "batches": dict(self._stats.batches),
            }
            latency = {}
            for kind in KINDS:
                samples = self._latency[kind]
                if samples:
                    latency[kind] = {
                        "count": len(samples),
                        "p50_ms": _percentile(samples, 50.0) * 1e3,
                        "p99_ms": _percentile(samples, 99.0) * 1e3,
                    }
            snapshot["latency"] = latency
        return snapshot


def _percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = max(
        0, min(len(ordered) - 1, int(round(q / 100.0 * len(ordered))) - 1)
    )
    return ordered[rank]
