"""ZenCrowd (ZC) [16] — scalar worker reliability with EM.

Each worker has a single reliability value q in [0, 1]; a worker answers
correctly with probability q and otherwise picks a wrong choice uniformly.
EM alternates a truth posterior (E-step, uniform choice prior) and the
reliability update (M-step: expected fraction of correct answers). The
paper's criticism — and the reason ZC trails DOCS in Figure 5(a) — is
that one scalar cannot express domain-dependent skill.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines.base import GoldenContext, TruthMethod
from repro.core.types import (
    Answer,
    Task,
    group_answers_by_task,
    group_answers_by_worker,
)
from repro.errors import ValidationError

_CLIP_LO = 1e-3
_CLIP_HI = 1.0 - 1e-3


class ZenCrowd(TruthMethod):
    """EM over scalar worker reliabilities.

    Args:
        max_iterations: EM iteration cap.
        tolerance: stop when reliabilities move less than this (L1 mean).
        default_reliability: initial reliability for workers without
            golden-task evidence.
    """

    name = "ZC"

    def __init__(
        self,
        max_iterations: int = 20,
        tolerance: float = 1e-6,
        default_reliability: float = 0.7,
    ):
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        if not 0.0 < default_reliability < 1.0:
            raise ValidationError("default_reliability must be in (0, 1)")
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        self._default = default_reliability

    def infer_truths(
        self,
        tasks: Sequence[Task],
        answers: Sequence[Answer],
        golden: Optional[GoldenContext] = None,
    ) -> Dict[int, int]:
        by_task = group_answers_by_task(answers)
        by_worker = group_answers_by_worker(answers)
        task_index = {task.task_id: task for task in tasks}

        reliability = {
            worker_id: self._initial_reliability(worker_answers, golden)
            for worker_id, worker_answers in by_worker.items()
        }

        truths: Dict[int, np.ndarray] = {}
        for _ in range(self._max_iterations):
            # E-step: posterior over choices per task.
            for task_id, task_answers in by_task.items():
                ell = task_index[task_id].num_choices
                log_post = np.zeros(ell)
                for answer in task_answers:
                    q = float(
                        np.clip(reliability[answer.worker_id], _CLIP_LO, _CLIP_HI)
                    )
                    contribution = np.full(ell, np.log((1.0 - q) / (ell - 1)))
                    contribution[answer.choice - 1] = np.log(q)
                    log_post += contribution
                log_post -= log_post.max()
                post = np.exp(log_post)
                truths[task_id] = post / post.sum()

            # M-step: reliability = expected fraction correct.
            max_change = 0.0
            for worker_id, worker_answers in by_worker.items():
                expected_correct = sum(
                    truths[a.task_id][a.choice - 1] for a in worker_answers
                )
                updated = expected_correct / len(worker_answers)
                max_change = max(
                    max_change, abs(updated - reliability[worker_id])
                )
                reliability[worker_id] = updated
            if max_change < self._tolerance:
                break

        return {
            task_id: int(np.argmax(post)) + 1
            for task_id, post in truths.items()
        }

    def _initial_reliability(
        self,
        worker_answers: Sequence[Answer],
        golden: Optional[GoldenContext],
    ) -> float:
        """Golden-task accuracy if available, else the default prior."""
        if golden is None or not golden.task_ids:
            return self._default
        golden_ids = set(golden.task_ids)
        scored = [
            1.0 if golden.truths[a.task_id] == a.choice else 0.0
            for a in worker_answers
            if a.task_id in golden_ids
        ]
        if not scored:
            return self._default
        # Shrink toward the prior so a 3-task streak does not pin q at 1.
        return float(
            (sum(scored) + self._default) / (len(scored) + 1.0)
        )
