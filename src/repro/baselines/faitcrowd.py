"""FaitCrowd (FC) [30] — joint topic + fine-grained truth discovery.

FaitCrowd is a generative model that *jointly* estimates each task's
latent topic (from the task's words, TwitterLDA-style) and each worker's
per-topic reliability, alternating with the truth posterior. The paper's
criticism (Section 1) is precisely this coupling: "FC estimates each
task's latent domains and each worker's quality for those latent domains
together, thus the estimation of worker's quality is highly affected by
the inaccurate estimation of task's domains."

This implementation reproduces that behaviour. Even when initialised with
the tasks' ground-truth domains (the Section 6.3 protocol), each EM round
re-assigns every task's topic by maximising word likelihood + answer
likelihood — on datasets where surface text misleads (4D's cross-domain
lookalikes, QA's heterogeneous phrasing), topics drift, reliabilities are
computed against the drifted topics, and accuracy falls below DOCS, whose
domains come from the KB and stay put.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.baselines.base import GoldenContext, TruthMethod
from repro.core.types import (
    Answer,
    Task,
    group_answers_by_task,
    group_answers_by_worker,
)
from repro.errors import ValidationError
from repro.topics.vocabulary import Vocabulary

_CLIP_LO = 1e-3
_CLIP_HI = 1.0 - 1e-3
_WORD_SMOOTHING = 0.1


class FaitCrowdTruth(TruthMethod):
    """FaitCrowd's joint topic/reliability/truth estimation.

    Args:
        task_topics: task id -> initial topic key; defaults to each
            task's ``true_domain`` (the Section 6.3 protocol of handing
            competitors the ground-truth domains as a head start).
        joint_topics: if True (FaitCrowd's actual model), topics are
            re-estimated each round from words + answers; if False,
            topics stay fixed at their initial values (an idealised
            variant used in ablations).
        max_iterations: EM iteration cap.
        default_reliability: starting per-topic reliability.
    """

    name = "FC"

    def __init__(
        self,
        task_topics: Optional[Mapping[int, int]] = None,
        joint_topics: bool = True,
        max_iterations: int = 20,
        default_reliability: float = 0.7,
    ):
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        if not 0.0 < default_reliability < 1.0:
            raise ValidationError("default_reliability must be in (0, 1)")
        self._task_topics = dict(task_topics) if task_topics else None
        self._joint = joint_topics
        self._max_iterations = max_iterations
        self._default = default_reliability

    def infer_truths(
        self,
        tasks: Sequence[Task],
        answers: Sequence[Answer],
        golden: Optional[GoldenContext] = None,
    ) -> Dict[int, int]:
        task_index = {task.task_id: task for task in tasks}
        topics = self._initial_topics(tasks)
        topic_keys = sorted(set(topics.values()))
        topic_of = {key: idx for idx, key in enumerate(topic_keys)}
        assignment = {
            tid: topic_of[key] for tid, key in topics.items()
        }
        K = len(topic_keys)

        vocab = Vocabulary.from_texts([t.text for t in tasks])
        docs = {t.task_id: vocab.encode(t.text) for t in tasks}

        by_task = group_answers_by_task(answers)
        by_worker = group_answers_by_worker(answers)

        reliability = self._golden_reliability(
            by_worker, assignment, golden
        )

        truths: Dict[int, np.ndarray] = {}
        for _ in range(self._max_iterations):
            # Truth posterior under current topics and reliabilities.
            for task_id, task_answers in by_task.items():
                ell = task_index[task_id].num_choices
                topic = assignment[task_id]
                log_post = np.zeros(ell)
                for answer in task_answers:
                    q = self._clip(
                        reliability.get(
                            (answer.worker_id, topic), self._default
                        )
                    )
                    contribution = np.full(
                        ell, np.log((1.0 - q) / (ell - 1))
                    )
                    contribution[answer.choice - 1] = np.log(q)
                    log_post += contribution
                log_post -= log_post.max()
                post = np.exp(log_post)
                truths[task_id] = post / post.sum()

            # Per-(worker, topic) reliability from tasks in that topic.
            cells: Dict[tuple, List[float]] = {}
            for worker_id, worker_answers in by_worker.items():
                for answer in worker_answers:
                    key = (worker_id, assignment[answer.task_id])
                    cells.setdefault(key, []).append(
                        truths[answer.task_id][answer.choice - 1]
                    )
            new_reliability = {
                key: float(np.mean(values))
                for key, values in cells.items()
            }

            # Joint step: re-assign topics from words + answers. This is
            # FaitCrowd's defining coupling — and its Achilles heel.
            changed = 0
            if self._joint:
                word_logprobs = self._topic_word_logprobs(
                    docs, assignment, K, vocab.size
                )
                for task_id in docs:
                    scores = np.zeros(K)
                    for t in range(K):
                        score = float(
                            word_logprobs[t][docs[task_id]].sum()
                        )
                        for answer in by_task.get(task_id, []):
                            q = self._clip(
                                new_reliability.get(
                                    (answer.worker_id, t), self._default
                                )
                            )
                            ell = task_index[task_id].num_choices
                            s = truths.get(
                                task_id, np.full(ell, 1.0 / ell)
                            )
                            correct_mass = float(s[answer.choice - 1])
                            score += float(
                                np.log(
                                    q * correct_mass
                                    + (1.0 - q)
                                    / (ell - 1)
                                    * (1.0 - correct_mass)
                                )
                            )
                        scores[t] = score
                    new_topic = int(np.argmax(scores))
                    if new_topic != assignment[task_id]:
                        changed += 1
                        assignment[task_id] = new_topic

            max_change = max(
                (
                    abs(
                        new_reliability[key]
                        - reliability.get(key, self._default)
                    )
                    for key in new_reliability
                ),
                default=0.0,
            )
            reliability = new_reliability
            if max_change < 1e-6 and changed == 0:
                break

        return {
            task_id: int(np.argmax(post)) + 1
            for task_id, post in truths.items()
        }

    @staticmethod
    def _clip(value: float) -> float:
        return float(np.clip(value, _CLIP_LO, _CLIP_HI))

    def _initial_topics(self, tasks: Sequence[Task]) -> Dict[int, int]:
        if self._task_topics is not None:
            return {
                task.task_id: self._task_topics[task.task_id]
                for task in tasks
            }
        topics: Dict[int, int] = {}
        for task in tasks:
            if task.true_domain is None:
                raise ValidationError(
                    f"task {task.task_id} has no topic; supply task_topics "
                    "or annotate true_domain"
                )
            topics[task.task_id] = task.true_domain
        return topics

    def _golden_reliability(
        self,
        by_worker: Mapping[str, Sequence[Answer]],
        assignment: Mapping[int, int],
        golden: Optional[GoldenContext],
    ) -> Dict[tuple, float]:
        if golden is None or not golden.task_ids:
            return {}
        golden_ids = set(golden.task_ids)
        hits: Dict[tuple, List[float]] = {}
        for worker_id, worker_answers in by_worker.items():
            for answer in worker_answers:
                if answer.task_id not in golden_ids:
                    continue
                key = (worker_id, assignment[answer.task_id])
                hits.setdefault(key, []).append(
                    1.0
                    if golden.truths[answer.task_id] == answer.choice
                    else 0.0
                )
        return {
            key: (sum(scored) + self._default) / (len(scored) + 1.0)
            for key, scored in hits.items()
        }

    def _topic_word_logprobs(
        self,
        docs: Mapping[int, List[int]],
        assignment: Mapping[int, int],
        num_topics: int,
        vocab_size: int,
    ) -> np.ndarray:
        """Per-topic word log-probabilities from current assignments."""
        counts = np.full(
            (num_topics, max(vocab_size, 1)), _WORD_SMOOTHING
        )
        for task_id, words in docs.items():
            topic = assignment[task_id]
            for w in words:
                counts[topic, w] += 1.0
        return np.log(counts / counts.sum(axis=1, keepdims=True))
