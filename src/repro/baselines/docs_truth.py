"""DOCS's own TI wrapped in the common :class:`TruthMethod` interface.

Used by the Figure 5 comparison harness so that DOCS, MV, ZC, DS, IC and
FC all run over exactly the same answers and golden tasks. Requires
tasks' domain vectors to be present (run DVE first); worker qualities are
initialised from golden-task performance exactly as Section 4.1
prescribes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines.base import GoldenContext, TruthMethod
from repro.core.quality_store import WorkerQualityStore
from repro.core.truth_inference import TruthInference
from repro.core.types import Answer, Task, group_answers_by_worker
from repro.errors import ValidationError


class DocsTruth(TruthMethod):
    """The paper's iterative TI behind the comparison interface.

    Args:
        max_iterations: TI iteration cap (paper: 20).
        default_quality: cold-start per-domain quality.
    """

    name = "DOCS"

    def __init__(self, max_iterations: int = 20, default_quality: float = 0.7):
        self._ti = TruthInference(
            max_iterations=max_iterations, default_quality=default_quality
        )
        self._default_quality = default_quality

    def infer_truths(
        self,
        tasks: Sequence[Task],
        answers: Sequence[Answer],
        golden: Optional[GoldenContext] = None,
    ) -> Dict[int, int]:
        initial = self._golden_qualities(tasks, answers, golden)
        result = self._ti.infer(tasks, answers, initial_qualities=initial)
        return result.truths()

    def _golden_qualities(
        self,
        tasks: Sequence[Task],
        answers: Sequence[Answer],
        golden: Optional[GoldenContext],
    ) -> Dict[int, np.ndarray]:
        """Initialise each worker's quality from golden performance."""
        if golden is None or not golden.task_ids:
            return {}
        domain_vectors = {}
        m = None
        for task in tasks:
            if task.domain_vector is None:
                raise ValidationError(
                    f"task {task.task_id} has no domain vector; run DVE"
                )
            domain_vectors[task.task_id] = task.domain_vector
            m = task.domain_vector.shape[0]
        assert m is not None
        store = WorkerQualityStore(m, default_quality=self._default_quality)
        golden_ids = set(golden.task_ids)
        for worker_id, worker_answers in group_answers_by_worker(
            answers
        ).items():
            golden_answers = {
                a.task_id: a.choice
                for a in worker_answers
                if a.task_id in golden_ids
            }
            if not golden_answers:
                continue
            store.initialize_from_golden(
                worker_id, golden_answers, golden.truths, domain_vectors
            )
        return {
            worker_id: store.quality_or_default(worker_id)
            for worker_id in store.known_workers()
        }
