"""iCrowd (IC) [18] — per-task worker accuracy + weighted majority vote.

iCrowd estimates, for each (worker, task) pair, the worker's accuracy on
that task by smoothing her graded performance over *similar* tasks
(similarity from LDA topic vectors), then infers truth with weighted
majority voting. Following Section 6.3's protocol, the truth-inference
comparison hands IC the tasks' ground-truth domains ("to do a more
challenging job, we initially assign the ground truth of each task's
domain to IC"), so similarity degenerates to same-domain membership and
the per-task accuracy is the worker's per-domain accuracy.

The paper's criticism — visible in Figure 5(a) — is that weighted
majority voting is *additive*: several mediocre workers can outvote one
expert, whereas the Bayesian aggregation of DOCS weighs them
multiplicatively.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.baselines.base import GoldenContext, TruthMethod
from repro.core.types import (
    Answer,
    Task,
    group_answers_by_task,
    group_answers_by_worker,
)
from repro.errors import ValidationError


class ICrowdTruth(TruthMethod):
    """iCrowd's inference layer with explicit task domains.

    Args:
        task_domains: task id -> domain key. When omitted,
            ``infer_truths`` falls back to each task's ``true_domain``
            (the Section 6.3 protocol) and raises if unavailable.
        max_iterations: rounds of (vote -> re-grade) alternation.
        default_accuracy: starting accuracy for unseen (worker, domain)
            pairs.
    """

    name = "IC"

    def __init__(
        self,
        task_domains: Optional[Mapping[int, int]] = None,
        max_iterations: int = 10,
        default_accuracy: float = 0.7,
    ):
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        self._task_domains = dict(task_domains) if task_domains else None
        self._max_iterations = max_iterations
        self._default_accuracy = default_accuracy

    def infer_truths(
        self,
        tasks: Sequence[Task],
        answers: Sequence[Answer],
        golden: Optional[GoldenContext] = None,
    ) -> Dict[int, int]:
        task_index = {task.task_id: task for task in tasks}
        domains = self._resolve_domains(tasks)
        by_task = group_answers_by_task(answers)
        by_worker = group_answers_by_worker(answers)

        # (worker, domain) -> accuracy estimate.
        accuracy: Dict[tuple, float] = {}
        if golden and golden.task_ids:
            golden_ids = set(golden.task_ids)
            hits: Dict[tuple, list] = {}
            for worker_id, worker_answers in by_worker.items():
                for answer in worker_answers:
                    if answer.task_id not in golden_ids:
                        continue
                    key = (worker_id, domains[answer.task_id])
                    hits.setdefault(key, []).append(
                        1.0
                        if golden.truths[answer.task_id] == answer.choice
                        else 0.0
                    )
            for key, scored in hits.items():
                accuracy[key] = (sum(scored) + self._default_accuracy) / (
                    len(scored) + 1.0
                )

        truths: Dict[int, int] = {}
        for _ in range(self._max_iterations):
            # Weighted majority voting with per-(worker, domain) weights.
            # Weights are the worker's estimated accuracy in excess of
            # chance, so a random guesser contributes ~nothing while an
            # expert counts heavily — but aggregation stays *additive*,
            # preserving iCrowd's characteristic failure mode (several
            # mediocre workers can still outvote one expert).
            new_truths: Dict[int, int] = {}
            for task_id, task_answers in by_task.items():
                task = task_index[task_id]
                domain = domains[task_id]
                chance = 1.0 / task.num_choices
                weights = np.zeros(task.num_choices)
                for answer in task_answers:
                    quality = accuracy.get(
                        (answer.worker_id, domain), self._default_accuracy
                    )
                    weights[answer.choice - 1] += max(quality - chance, 0.0)
                new_truths[task_id] = int(np.argmax(weights)) + 1

            # Re-grade workers against the current vote outcome.
            grades: Dict[tuple, list] = {}
            for worker_id, worker_answers in by_worker.items():
                for answer in worker_answers:
                    key = (worker_id, domains[answer.task_id])
                    grades.setdefault(key, []).append(
                        1.0
                        if new_truths[answer.task_id] == answer.choice
                        else 0.0
                    )
            accuracy = {
                key: (sum(scored) + self._default_accuracy)
                / (len(scored) + 1.0)
                for key, scored in grades.items()
            }

            if new_truths == truths:
                break
            truths = new_truths
        return truths

    def _resolve_domains(self, tasks: Sequence[Task]) -> Dict[int, int]:
        if self._task_domains is not None:
            return {
                task.task_id: self._task_domains[task.task_id]
                for task in tasks
            }
        domains: Dict[int, int] = {}
        for task in tasks:
            if task.true_domain is None:
                raise ValidationError(
                    f"task {task.task_id} has no domain; supply "
                    "task_domains or annotate true_domain"
                )
            domains[task.task_id] = task.true_domain
        return domains
