"""Assignment engines for the Figure 8 end-to-end comparison.

Each engine couples an assignment policy with the truth-inference method
its source system uses (Section 6.4):

- :class:`RandomBaselineEngine` ("Baseline"): random k tasks + MV.
- :class:`AskItEngine` (AskIt! [8]): most-uncertain k tasks (entropy of
  the empirical vote distribution) + MV.
- :class:`ICrowdEngine` (IC [18]): k tasks where the worker's
  domain quality is highest, under the equal-answer-count constraint +
  iCrowd's weighted vote.
- :class:`QascaEngine` (QASCA [54]): k tasks with the highest expected
  accuracy improvement under a DS-style worker model + DS inference.
- :class:`DMaxEngine` (D-Max): DOCS's TI, but assignment by maximum
  domain match ``sum_k r_k q^w_k`` — the ablation that ignores how
  confident each task already is.

DOCS itself lives in :class:`repro.system.DocsSystem`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np

from repro.baselines.base import GoldenContext, majority_choice
from repro.baselines.dawid_skene import DawidSkene
from repro.baselines.icrowd import ICrowdTruth
from repro.core.arena import StateArena
from repro.core.dve import DomainVectorEstimator
from repro.core.golden import select_golden_tasks
from repro.core.quality_store import WorkerQualityStore
from repro.core.truth_inference import TruthInference
from repro.core.types import Answer, Task
from repro.datasets.base import CrowdDataset
from repro.engines.base import TableEngine
from repro.linking import EntityLinker
from repro.utils.math import safe_log
from repro.utils.rng import SeedLike, make_rng
from repro.utils.topk import top_k_indices


class RandomBaselineEngine(TableEngine):
    """Random assignment + majority vote ("Baseline" in Figure 8)."""

    name = "Baseline"

    def __init__(self, seed: SeedLike = 0):
        super().__init__()
        self._rng = make_rng(seed)

    def _prepare(self, dataset: CrowdDataset) -> None:
        self._task_ids = [t.task_id for t in dataset.tasks]

    def _select(
        self, worker_id: str, k: int, answered: Set[int]
    ) -> List[int]:
        available = [tid for tid in self._task_ids if tid not in answered]
        if not available:
            return []
        take = min(k, len(available))
        chosen = self._rng.choice(len(available), size=take, replace=False)
        return [available[int(i)] for i in chosen]

    def _finalize(self) -> Dict[int, int]:
        return _majority_truths(self.dataset.tasks, self._answers)


class AskItEngine(TableEngine):
    """AskIt! [8]: assign the k most uncertain tasks, infer with MV.

    Uncertainty is the entropy of the Laplace-smoothed empirical vote
    distribution; unanswered tasks are maximally uncertain and get
    assigned first. Worker quality plays no role — the gap to QASCA and
    DOCS in Figure 8(a) measures exactly that omission.
    """

    name = "AskIt!"

    def _prepare(self, dataset: CrowdDataset) -> None:
        self._tasks = {t.task_id: t for t in dataset.tasks}
        self._order = [t.task_id for t in dataset.tasks]
        self._row = {tid: i for i, tid in enumerate(self._order)}
        ell_max = max(t.num_choices for t in dataset.tasks)
        # Laplace-smoothed vote counts; invalid columns stay at 0.
        self._counts = np.zeros((len(self._order), ell_max))
        for i, task in enumerate(dataset.tasks):
            self._counts[i, : task.num_choices] = 1.0

    def _ingest(self, answer: Answer) -> None:
        self._counts[self._row[answer.task_id], answer.choice - 1] += 1.0

    def _select(
        self, worker_id: str, k: int, answered: Set[int]
    ) -> List[int]:
        dists = self._counts / self._counts.sum(axis=1, keepdims=True)
        uncertainty = -np.sum(dists * safe_log(dists), axis=1)
        if answered:
            rows = [self._row[tid] for tid in answered]
            uncertainty[rows] = -np.inf
        available = int(np.sum(uncertainty > -np.inf))
        if available == 0:
            return []
        take = min(k, available)
        chosen = top_k_indices(uncertainty, take)
        return [self._order[int(i)] for i in chosen]

    def _finalize(self) -> Dict[int, int]:
        return _majority_truths(self.dataset.tasks, self._answers)


class ICrowdEngine(TableEngine):
    """iCrowd [18]: assign where the worker is strongest, evenly.

    Workers' per-domain accuracies are tracked against iCrowd's own
    weighted-vote truth estimates (bootstrapped from golden tasks). The
    k tasks maximising the worker's quality are chosen **subject to the
    equal-assignment constraint**: only tasks with the currently minimal
    answer count are eligible, so every task ends up answered the same
    number of times — the rigidity the paper criticises (spending answers
    on already-confident tasks).
    """

    name = "IC"

    def __init__(self, golden_count: int = 20, default_accuracy: float = 0.7):
        super().__init__()
        self._golden_count = golden_count
        self._default_accuracy = default_accuracy

    def _prepare(self, dataset: CrowdDataset) -> None:
        self._tasks = {t.task_id: t for t in dataset.tasks}
        self._domains = {
            t.task_id: (t.true_domain if t.true_domain is not None else 0)
            for t in dataset.tasks
        }
        #: (worker, domain) -> [correct, total] against golden truth.
        self._golden_scores: Dict[tuple, List[float]] = {}
        golden_pool = [
            t.task_id for t in dataset.tasks if t.ground_truth is not None
        ]
        self._golden_ids = golden_pool[: self._golden_count]
        self._golden_truths = {
            tid: self._tasks[tid].ground_truth for tid in self._golden_ids
        }

    def _bootstrap(self, worker_id: str, answers: Sequence[Answer]) -> None:
        for answer in answers:
            key = (worker_id, self._domains[answer.task_id])
            correct, total = self._golden_scores.get(key, (0.0, 0.0))
            correct += (
                1.0
                if self._golden_truths[answer.task_id] == answer.choice
                else 0.0
            )
            self._golden_scores[key] = [correct, total + 1.0]

    def _quality(self, worker_id: str, domain: int) -> float:
        correct, total = self._golden_scores.get(
            (worker_id, domain), (0.0, 0.0)
        )
        return (correct + self._default_accuracy) / (total + 1.0)

    def _select(
        self, worker_id: str, k: int, answered: Set[int]
    ) -> List[int]:
        candidates = [tid for tid in self._tasks if tid not in answered]
        if not candidates:
            return []
        # Equal-assignment constraint: restrict to minimum-count tasks;
        # widen level by level until k tasks are available.
        counts = {
            tid: self._answers.count_for_task(tid) for tid in candidates
        }
        eligible: List[int] = []
        for level in sorted(set(counts.values())):
            eligible.extend(
                tid for tid in candidates if counts[tid] == level
            )
            if len(eligible) >= k:
                break
        quality = np.array(
            [
                self._quality(worker_id, self._domains[tid])
                for tid in eligible
            ]
        )
        take = min(k, len(eligible))
        chosen = top_k_indices(quality, take)
        return [eligible[int(i)] for i in chosen]

    def _finalize(self) -> Dict[int, int]:
        method = ICrowdTruth(
            task_domains=self._domains,
            default_accuracy=self._default_accuracy,
        )
        golden = GoldenContext(self._golden_ids, self._golden_truths)
        return method.infer_truths(
            list(self._tasks.values()), self._answers.all(), golden
        )


class QascaEngine(TableEngine):
    """QASCA [54]: assign by expected accuracy improvement.

    Maintains per-task truth posteriors under a scalar-confusion DS-style
    worker model (bootstrapped from golden tasks, updated online against
    current posteriors). For a candidate task, the benefit is the
    expected increase of ``max_j s_j`` after the worker's answer —
    QASCA's Accuracy metric. Domain information is absent by design.
    """

    name = "QASCA"

    def __init__(self, golden_count: int = 20, default_accuracy: float = 0.7):
        super().__init__()
        self._golden_count = golden_count
        self._default_accuracy = default_accuracy

    def _prepare(self, dataset: CrowdDataset) -> None:
        self._tasks = {t.task_id: t for t in dataset.tasks}
        self._order = [t.task_id for t in dataset.tasks]
        self._row = {tid: i for i, tid in enumerate(self._order)}
        self._ells = np.array(
            [t.num_choices for t in dataset.tasks], dtype=np.int64
        )
        ell_max = int(self._ells.max())
        # Posterior matrix, invalid columns zeroed.
        self._post = np.zeros((len(self._order), ell_max))
        for i, task in enumerate(dataset.tasks):
            self._post[i, : task.num_choices] = 1.0 / task.num_choices
        self._valid = (
            np.arange(ell_max)[None, :] < self._ells[:, None]
        )
        self._accuracy: Dict[str, List[float]] = {}
        golden_pool = [
            t.task_id for t in dataset.tasks if t.ground_truth is not None
        ]
        self._golden_ids = golden_pool[: self._golden_count]
        self._golden_truths = {
            tid: self._tasks[tid].ground_truth for tid in self._golden_ids
        }

    def _bootstrap(self, worker_id: str, answers: Sequence[Answer]) -> None:
        scored = [
            1.0 if self._golden_truths[a.task_id] == a.choice else 0.0
            for a in answers
        ]
        if scored:
            self._accuracy[worker_id] = [
                sum(scored) + self._default_accuracy,
                len(scored) + 1.0,
            ]

    def _worker_accuracy(self, worker_id: str) -> float:
        correct, total = self._accuracy.get(
            worker_id, (self._default_accuracy, 1.0)
        )
        return float(np.clip(correct / total, 1e-3, 1.0 - 1e-3))

    def _select(
        self, worker_id: str, k: int, answered: Set[int]
    ) -> List[int]:
        q = self._worker_accuracy(worker_id)
        S = self._post                                       # (n, L)
        wrong = (1.0 - q) / (self._ells - 1)                 # (n,)
        # Expected max posterior after the answer: for hypothetical
        # answer a, the unnormalised update is q*s_a at column a and
        # wrong*s_j elsewhere; summing p(a) * max_j telescopes into a
        # closed form over the top-2 posterior values.
        top2 = np.sort(S, axis=1)[:, -2:]                    # (n, 2)
        s_max, s_second = top2[:, 1], top2[:, 0]
        q_term = q * S                                       # (n, L)
        # For answer a == argmax: updated max = max(q*s_a, wrong*s_2nd).
        # For other answers: updated max = max(q*s_a, wrong*s_max).
        is_max = S >= s_max[:, None] - 1e-15
        other_best = np.where(
            is_max, wrong[:, None] * s_second[:, None],
            wrong[:, None] * s_max[:, None],
        )
        per_answer = np.where(
            self._valid, np.maximum(q_term, other_best), 0.0
        )
        expected = per_answer.sum(axis=1)
        benefits = expected - s_max
        if answered:
            rows = [self._row[tid] for tid in answered]
            benefits[rows] = -np.inf
        available = int(np.sum(benefits > -np.inf))
        if available == 0:
            return []
        take = min(k, available)
        chosen = top_k_indices(benefits, take)
        return [self._order[int(i)] for i in chosen]

    def _ingest(self, answer: Answer) -> None:
        q = self._worker_accuracy(answer.worker_id)
        row = self._row[answer.task_id]
        ell = int(self._ells[row])
        s = self._post[row, :ell]
        factor = np.full(ell, (1.0 - q) / (ell - 1))
        factor[answer.choice - 1] = q
        updated = s * factor
        self._post[row, :ell] = updated / updated.sum()
        # Online re-grade of the worker against the updated posterior.
        correct, total = self._accuracy.get(
            answer.worker_id, [self._default_accuracy, 1.0]
        )
        self._accuracy[answer.worker_id] = [
            correct + float(self._post[row, answer.choice - 1]),
            total + 1.0,
        ]

    def _finalize(self) -> Dict[int, int]:
        method = DawidSkene(default_accuracy=self._default_accuracy)
        golden = GoldenContext(self._golden_ids, self._golden_truths)
        return method.infer_truths(
            list(self._tasks.values()), self._answers.all(), golden
        )


class DMaxEngine(TableEngine):
    """D-Max: DOCS's TI with pure domain-match assignment.

    Selects the k tasks maximising ``sum_k r_ik q^w_k`` — the worker's
    expected accuracy on the task — with no regard for how confidently
    the task's truth is already known. The gap to DOCS in Figure 8(a)
    isolates the value of the benefit (entropy-reduction) criterion.
    """

    name = "D-Max"

    def __init__(self, golden_count: int = 20, default_quality: float = 0.7):
        super().__init__()
        self._golden_count = golden_count
        self._default_quality = default_quality

    def _prepare(self, dataset: CrowdDataset) -> None:
        linker = EntityLinker(dataset.kb)
        estimator = DomainVectorEstimator(linker, dataset.taxonomy.size)
        self._tasks = {t.task_id: t for t in dataset.tasks}
        pending = [t for t in dataset.tasks if t.domain_vector is None]
        if pending:
            vectors = estimator.estimate_batch([t.text for t in pending])
            for task, vector in zip(pending, vectors):
                task.domain_vector = vector
        self._r = {t.task_id: t.domain_vector for t in dataset.tasks}
        # Task state lives in an arena; scoring reads the registration-
        # ordered domain-vector block as a zero-copy view.
        self._arena = StateArena(dataset.taxonomy.size)
        self._arena.grow(dataset.tasks)
        self._order = self._arena.task_ids()
        self._store = WorkerQualityStore(
            dataset.taxonomy.size, default_quality=self._default_quality
        )
        golden_idx = select_golden_tasks(
            [t.domain_vector for t in dataset.tasks], self._golden_count
        )
        ids = [dataset.tasks[i].task_id for i in golden_idx]
        self._golden_ids = [
            tid for tid in ids if self._tasks[tid].ground_truth is not None
        ]
        self._golden_truths = {
            tid: self._tasks[tid].ground_truth for tid in self._golden_ids
        }

    def needs_bootstrap(self, worker_id: str) -> bool:
        # Workers already present in the quality store (e.g. domain
        # experts a caller seeded directly) have a quality model and
        # skip the pre-test — the same rule DocsEngine applies to
        # shared-store workers.
        return (
            super().needs_bootstrap(worker_id)
            and worker_id not in self._store
        )

    def _bootstrap(self, worker_id: str, answers: Sequence[Answer]) -> None:
        self._store.initialize_from_golden(
            worker_id,
            {a.task_id: a.choice for a in answers},
            self._golden_truths,
            self._r,
        )

    def _select(
        self, worker_id: str, k: int, answered: Set[int]
    ) -> List[int]:
        quality = self._store.quality_or_default(worker_id)
        scores = self._arena.domain_matrix() @ quality
        if answered:
            rows = [self._arena.global_row(tid) for tid in answered]
            scores[rows] = -np.inf
        available = int(np.sum(scores > -np.inf))
        if available == 0:
            return []
        take = min(k, available)
        chosen = top_k_indices(scores, take)
        return [self._order[int(i)] for i in chosen]

    def _finalize(self) -> Dict[int, int]:
        ti = TruthInference(default_quality=self._default_quality)
        initial = {
            worker_id: self._store.quality_or_default(worker_id)
            for worker_id in self._store.known_workers()
        }
        result = ti.infer(
            list(self._tasks.values()),
            self._answers.all(),
            initial_qualities=initial,
        )
        return result.truths()


def _majority_truths(tasks, table) -> Dict[int, int]:
    """MV over an answer table (helper for MV-backed engines)."""
    truths: Dict[int, int] = {}
    for task in tasks:
        task_answers = table.for_task(task.task_id)
        if task_answers:
            truths[task.task_id] = majority_choice(task, task_answers)
        else:
            truths[task.task_id] = 1
    return truths
