"""Competitor methods the paper compares against.

Truth inference (Figure 5): MV, ZenCrowd (ZC), Dawid&Skene (DS),
iCrowd (IC), FaitCrowd (FC). Online task assignment (Figure 8):
Baseline (random), AskIt!, IC, QASCA, D-Max. Every method is a full
implementation from its source paper's description at the granularity
DOCS evaluates it.
"""

from repro.baselines.majority import MajorityVote
from repro.baselines.zencrowd import ZenCrowd
from repro.baselines.dawid_skene import DawidSkene
from repro.baselines.icrowd import ICrowdTruth
from repro.baselines.faitcrowd import FaitCrowdTruth
from repro.baselines.registry import (
    TRUTH_METHODS,
    make_truth_method,
)

__all__ = [
    "MajorityVote",
    "ZenCrowd",
    "DawidSkene",
    "ICrowdTruth",
    "FaitCrowdTruth",
    "TRUTH_METHODS",
    "make_truth_method",
]
