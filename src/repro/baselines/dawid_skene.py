"""Dawid & Skene (DS) [15] — per-worker confusion matrices with EM.

Each worker w has a confusion matrix ``pi^w[j, j']`` = Pr(answers j' |
truth is j). EM alternates the truth posterior (E-step, with learned
class priors) and confusion/prior re-estimation (M-step). Richer than
ZC's scalar, but still domain-blind: the same matrix applies to a
basketball question and a cooking question, which is why DS sits between
MV and the domain-aware methods in Figure 5(a).

Requires a homogeneous choice count across tasks (true of each of the
paper's datasets); heterogeneous task sets are rejected explicitly.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines.base import GoldenContext, TruthMethod
from repro.core.types import (
    Answer,
    Task,
    group_answers_by_task,
    group_answers_by_worker,
)
from repro.errors import ValidationError

_SMOOTHING = 0.1


class DawidSkene(TruthMethod):
    """Classic DS EM.

    Args:
        max_iterations: EM iteration cap.
        tolerance: stop when the truth posteriors move less than this.
        default_accuracy: diagonal mass of the initial confusion matrix
            for workers without golden evidence.
    """

    name = "DS"

    def __init__(
        self,
        max_iterations: int = 30,
        tolerance: float = 1e-6,
        default_accuracy: float = 0.7,
    ):
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        if not 0.0 < default_accuracy < 1.0:
            raise ValidationError("default_accuracy must be in (0, 1)")
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        self._default_accuracy = default_accuracy

    def infer_truths(
        self,
        tasks: Sequence[Task],
        answers: Sequence[Answer],
        golden: Optional[GoldenContext] = None,
    ) -> Dict[int, int]:
        ells = {task.num_choices for task in tasks}
        if len(ells) != 1:
            raise ValidationError(
                f"DS requires a uniform choice count; saw {sorted(ells)}"
            )
        ell = ells.pop()
        by_task = group_answers_by_task(answers)
        by_worker = group_answers_by_worker(answers)

        confusion = {
            worker_id: self._initial_confusion(
                worker_answers, ell, golden
            )
            for worker_id, worker_answers in by_worker.items()
        }
        class_prior = np.full(ell, 1.0 / ell)

        truths: Dict[int, np.ndarray] = {}
        previous: Dict[int, np.ndarray] = {}
        for _ in range(self._max_iterations):
            # E-step.
            for task_id, task_answers in by_task.items():
                log_post = np.log(class_prior)
                for answer in task_answers:
                    log_post += np.log(
                        np.clip(
                            confusion[answer.worker_id][:, answer.choice - 1],
                            1e-12,
                            None,
                        )
                    )
                log_post -= log_post.max()
                post = np.exp(log_post)
                truths[task_id] = post / post.sum()

            # Convergence on posteriors.
            if previous:
                change = float(
                    np.mean(
                        [
                            np.abs(truths[tid] - previous[tid]).mean()
                            for tid in truths
                        ]
                    )
                )
                if change < self._tolerance:
                    break
            previous = {tid: s.copy() for tid, s in truths.items()}

            # M-step: confusion matrices and class priors.
            for worker_id, worker_answers in by_worker.items():
                matrix = np.full((ell, ell), _SMOOTHING)
                for answer in worker_answers:
                    matrix[:, answer.choice - 1] += truths[answer.task_id]
                confusion[worker_id] = matrix / matrix.sum(
                    axis=1, keepdims=True
                )
            total = np.zeros(ell)
            for post in truths.values():
                total += post
            class_prior = total / total.sum()

        return {
            task_id: int(np.argmax(post)) + 1
            for task_id, post in truths.items()
        }

    def _initial_confusion(
        self,
        worker_answers: Sequence[Answer],
        ell: int,
        golden: Optional[GoldenContext],
    ) -> np.ndarray:
        """Diagonal-heavy prior, sharpened by golden-task evidence."""
        off_diagonal = (1.0 - self._default_accuracy) / (ell - 1)
        matrix = np.full((ell, ell), off_diagonal)
        np.fill_diagonal(matrix, self._default_accuracy)
        if golden is None or not golden.task_ids:
            return matrix
        golden_ids = set(golden.task_ids)
        counts = np.full((ell, ell), _SMOOTHING)
        seen = False
        for answer in worker_answers:
            if answer.task_id not in golden_ids:
                continue
            truth = golden.truths[answer.task_id]
            counts[truth - 1, answer.choice - 1] += 1.0
            seen = True
        if not seen:
            return matrix
        evidence = counts / counts.sum(axis=1, keepdims=True)
        # Blend prior and evidence: a handful of golden answers should
        # inform, not dictate, the starting matrix.
        return 0.5 * matrix + 0.5 * evidence
