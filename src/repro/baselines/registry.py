"""Registries of truth-inference methods and assignment engines."""

from __future__ import annotations

from typing import Callable, Dict

from repro.baselines.base import TruthMethod
from repro.baselines.dawid_skene import DawidSkene
from repro.baselines.docs_truth import DocsTruth
from repro.baselines.faitcrowd import FaitCrowdTruth
from repro.baselines.icrowd import ICrowdTruth
from repro.baselines.majority import MajorityVote
from repro.baselines.zencrowd import ZenCrowd
from repro.errors import ValidationError

#: The Figure 5 comparison roster, in the paper's display order.
TRUTH_METHODS: Dict[str, Callable[[], TruthMethod]] = {
    "MV": MajorityVote,
    "ZC": ZenCrowd,
    "DS": DawidSkene,
    "IC": ICrowdTruth,
    "FC": FaitCrowdTruth,
    "DOCS": DocsTruth,
}


def make_truth_method(name: str) -> TruthMethod:
    """Instantiate a truth method by its display name."""
    try:
        factory = TRUTH_METHODS[name]
    except KeyError:
        raise ValidationError(
            f"unknown truth method {name!r}; expected one of "
            f"{sorted(TRUTH_METHODS)}"
        ) from None
    return factory()
