"""Majority Vote (MV) — the no-worker-model baseline.

Every worker counts equally; the truth is the most-voted choice. Fastest
method in Figure 5(b), weakest in Figure 5(a) precisely because a couple
of confident novices outvote one domain expert.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.baselines.base import GoldenContext, TruthMethod, majority_choice
from repro.core.types import Answer, Task, group_answers_by_task


class MajorityVote(TruthMethod):
    """Plain majority voting with lowest-index tie-breaking."""

    name = "MV"

    def infer_truths(
        self,
        tasks: Sequence[Task],
        answers: Sequence[Answer],
        golden: Optional[GoldenContext] = None,
    ) -> Dict[int, int]:
        by_task = group_answers_by_task(answers)
        task_index = {task.task_id: task for task in tasks}
        return {
            task_id: majority_choice(task_index[task_id], task_answers)
            for task_id, task_answers in by_task.items()
        }
