"""Shared interfaces for the competitor implementations.

Two roles appear in the evaluation:

- :class:`TruthMethod` — offline truth inference over a fixed answer set
  (Figure 5). All methods receive the *same* collected answers and the
  same golden tasks for initialisation, as Section 6.3 prescribes.
- Assignment engines (Figure 8) implement the
  :class:`repro.platform.amt_sim.CrowdEngine` protocol; the common
  bookkeeping lives in :class:`EngineBase`.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Mapping, Optional, Sequence, Set

import numpy as np

from repro.core.types import Answer, Task
from repro.datasets.base import CrowdDataset
from repro.errors import ValidationError
from repro.platform.storage import AnswerTable


class GoldenContext:
    """Golden-task information shared with every method for fairness.

    Attributes:
        task_ids: the selected golden tasks.
        truths: task id -> ground-truth choice for those tasks.
    """

    def __init__(
        self, task_ids: Sequence[int], truths: Mapping[int, int]
    ):
        missing = [tid for tid in task_ids if tid not in truths]
        if missing:
            raise ValidationError(
                f"golden tasks without truths: {missing[:5]}"
            )
        self.task_ids = list(task_ids)
        self.truths = dict(truths)

    @classmethod
    def empty(cls) -> "GoldenContext":
        return cls([], {})

    def __len__(self) -> int:
        return len(self.task_ids)


class TruthMethod(abc.ABC):
    """Offline truth inference: answers in, truths out."""

    #: Short display name used in experiment tables.
    name: str = "base"

    @abc.abstractmethod
    def infer_truths(
        self,
        tasks: Sequence[Task],
        answers: Sequence[Answer],
        golden: Optional[GoldenContext] = None,
    ) -> Dict[int, int]:
        """Infer the (1-based) truth of every answered task."""

    def accuracy(
        self,
        tasks: Sequence[Task],
        answers: Sequence[Answer],
        golden: Optional[GoldenContext] = None,
        exclude_golden: bool = False,
    ) -> float:
        """Convenience: run inference and score against ground truth."""
        truths = self.infer_truths(tasks, answers, golden)
        golden_ids = set(golden.task_ids) if (golden and exclude_golden) else set()
        correct = 0
        counted = 0
        for task in tasks:
            if task.ground_truth is None or task.task_id in golden_ids:
                continue
            if task.task_id not in truths:
                continue
            counted += 1
            if truths[task.task_id] == task.ground_truth:
                correct += 1
        if counted == 0:
            raise ValidationError("nothing to score")
        return correct / counted


class EngineBase(abc.ABC):
    """Common engine bookkeeping: storage, worker tracking, golden set.

    Subclasses implement ``_prepare``, ``_select`` and ``_finalize``; the
    base class enforces the shared integrity rules (no repeat answers, no
    assigning a task to a worker who answered it).
    """

    name: str = "engine"

    def __init__(self) -> None:
        self._dataset: Optional[CrowdDataset] = None
        self._answers = AnswerTable()
        self._bootstrapped: Set[str] = set()
        self._golden_ids: List[int] = []

    @property
    def dataset(self) -> CrowdDataset:
        if self._dataset is None:
            raise ValidationError("engine not prepared; call prepare()")
        return self._dataset

    @property
    def answers(self) -> AnswerTable:
        return self._answers

    # -- CrowdEngine protocol -------------------------------------------

    def prepare(self, dataset: CrowdDataset) -> None:
        self._dataset = dataset
        self._answers = AnswerTable()
        self._bootstrapped = set()
        self._golden_ids = []
        self._prepare(dataset)

    def golden_task_ids(self) -> List[int]:
        return list(self._golden_ids)

    def needs_bootstrap(self, worker_id: str) -> bool:
        return bool(self._golden_ids) and worker_id not in self._bootstrapped

    def bootstrap(self, worker_id: str, answers: Sequence[Answer]) -> None:
        self._bootstrapped.add(worker_id)
        self._bootstrap(worker_id, answers)

    def assign(self, worker_id: str, k: int) -> List[int]:
        if self._dataset is None:
            raise ValidationError("engine not prepared; call prepare()")
        if k < 1:
            raise ValidationError(f"k must be >= 1: {k}")
        answered = self._answers.tasks_answered_by(worker_id)
        return self._select(worker_id, k, answered)

    def submit(self, answer: Answer) -> None:
        self._answers.insert(answer)
        self._ingest(answer)

    def finalize(self) -> Dict[int, int]:
        truths = self._finalize()
        # Tasks that never received an answer still need a verdict; the
        # uninformed default is the first choice.
        for task in self.dataset.tasks:
            truths.setdefault(task.task_id, 1)
        return truths

    # -- subclass hooks --------------------------------------------------

    @abc.abstractmethod
    def _prepare(self, dataset: CrowdDataset) -> None:
        """Engine-specific setup (DVE, topic fitting, state init)."""

    def _bootstrap(self, worker_id: str, answers: Sequence[Answer]) -> None:
        """Ingest golden-task answers for a new worker (default: no-op)."""

    @abc.abstractmethod
    def _select(
        self, worker_id: str, k: int, answered: Set[int]
    ) -> List[int]:
        """Pick up to k tasks the worker has not answered."""

    def _ingest(self, answer: Answer) -> None:
        """Engine-specific per-answer update (default: no-op)."""

    @abc.abstractmethod
    def _finalize(self) -> Dict[int, int]:
        """Produce final truths."""


def empirical_vote_distribution(
    task: Task, answers: Sequence[Answer], prior: float = 1.0
) -> np.ndarray:
    """Laplace-smoothed vote share per choice (MV's belief state)."""
    counts = np.full(task.num_choices, prior, dtype=float)
    for answer in answers:
        counts[answer.choice - 1] += 1.0
    return counts / counts.sum()


def majority_choice(task: Task, answers: Sequence[Answer]) -> int:
    """Plain majority vote with lowest-index tie-breaking (1-based)."""
    counts = np.zeros(task.num_choices, dtype=int)
    for answer in answers:
        counts[answer.choice - 1] += 1
    return int(np.argmax(counts)) + 1
