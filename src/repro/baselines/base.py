"""Shared interfaces for the competitor implementations.

Two roles appear in the evaluation:

- :class:`TruthMethod` — offline truth inference over a fixed answer set
  (Figure 5). All methods receive the *same* collected answers and the
  same golden tasks for initialisation, as Section 6.3 prescribes.
- Assignment engines (Figure 8) implement the unified
  :class:`repro.engines.Engine` ABC; the bookkeeping most of them share
  lives in :class:`repro.engines.base.TableEngine` (which absorbed the
  ``EngineBase`` that used to live here).
"""

from __future__ import annotations

import abc
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.core.types import Answer, Task
from repro.errors import ValidationError


class GoldenContext:
    """Golden-task information shared with every method for fairness.

    Attributes:
        task_ids: the selected golden tasks.
        truths: task id -> ground-truth choice for those tasks.
    """

    def __init__(
        self, task_ids: Sequence[int], truths: Mapping[int, int]
    ):
        missing = [tid for tid in task_ids if tid not in truths]
        if missing:
            raise ValidationError(
                f"golden tasks without truths: {missing[:5]}"
            )
        self.task_ids = list(task_ids)
        self.truths = dict(truths)

    @classmethod
    def empty(cls) -> "GoldenContext":
        return cls([], {})

    def __len__(self) -> int:
        return len(self.task_ids)


class TruthMethod(abc.ABC):
    """Offline truth inference: answers in, truths out."""

    #: Short display name used in experiment tables.
    name: str = "base"

    @abc.abstractmethod
    def infer_truths(
        self,
        tasks: Sequence[Task],
        answers: Sequence[Answer],
        golden: Optional[GoldenContext] = None,
    ) -> Dict[int, int]:
        """Infer the (1-based) truth of every answered task."""

    def accuracy(
        self,
        tasks: Sequence[Task],
        answers: Sequence[Answer],
        golden: Optional[GoldenContext] = None,
        exclude_golden: bool = False,
    ) -> float:
        """Convenience: run inference and score against ground truth."""
        truths = self.infer_truths(tasks, answers, golden)
        golden_ids = set(golden.task_ids) if (golden and exclude_golden) else set()
        correct = 0
        counted = 0
        for task in tasks:
            if task.ground_truth is None or task.task_id in golden_ids:
                continue
            if task.task_id not in truths:
                continue
            counted += 1
            if truths[task.task_id] == task.ground_truth:
                correct += 1
        if counted == 0:
            raise ValidationError("nothing to score")
        return correct / counted


def empirical_vote_distribution(
    task: Task, answers: Sequence[Answer], prior: float = 1.0
) -> np.ndarray:
    """Laplace-smoothed vote share per choice (MV's belief state)."""
    counts = np.full(task.num_choices, prior, dtype=float)
    for answer in answers:
        counts[answer.choice - 1] += 1.0
    return counts / counts.sum()


def majority_choice(task: Task, answers: Sequence[Answer]) -> int:
    """Plain majority vote with lowest-index tie-breaking (1-based)."""
    counts = np.zeros(task.num_choices, dtype=int)
    for answer in answers:
        counts[answer.choice - 1] += 1
    return int(np.argmax(counts)) + 1
