"""Multi-domain detection metrics (the paper's proposed future metric).

Section 6.2 notes that real tasks can relate to several domains at once
("Harlem Globetrotters whistle song" is Entertain *and* Sports) and
that "it might be interesting to develop metrics on evaluating how a
method can compute a task's multiple domains correctly". This module
implements such metrics against the datasets' *behavioural* domain
mixtures (the ground-truth soft labels the simulation exposes):

- **Jensen-Shannon divergence** between the estimated domain vector and
  the behavioural mixture (0 = perfect soft detection);
- **top-2 recall**: of the (up to two) domains carrying real
  behavioural mass, how many appear among the estimate's top-2;
- **peak count agreement**: does the estimate have multiple modes
  exactly when the task does?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.base import CrowdDataset
from repro.errors import ValidationError
from repro.utils.math import safe_log

#: Behavioural mass below this is treated as "not really a domain".
MASS_THRESHOLD = 0.1


def jensen_shannon(p: np.ndarray, q: np.ndarray) -> float:
    """JS divergence (natural log), symmetric and bounded by ln 2."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValidationError("distribution shapes differ")
    mid = 0.5 * (p + q)

    def _kl(a, b):
        mask = a > 0
        return float(np.sum(a[mask] * (safe_log(a[mask]) - safe_log(b[mask]))))

    return 0.5 * _kl(p, mid) + 0.5 * _kl(q, mid)


def significant_domains(
    mixture: np.ndarray, threshold: float = MASS_THRESHOLD
) -> List[int]:
    """Domains carrying real behavioural mass, strongest first."""
    indices = np.flatnonzero(mixture >= threshold)
    return sorted(indices, key=lambda k: -mixture[k])


@dataclass
class MultiDomainResult:
    """Aggregated multi-domain detection metrics for one dataset.

    Attributes:
        dataset: dataset name.
        mean_js: mean JS divergence estimate-vs-behaviour.
        top2_recall: mean fraction of significant domains found in the
            estimate's top-2.
        multi_task_fraction: fraction of tasks with >= 2 significant
            behavioural domains.
        peak_agreement: fraction of tasks whose estimate is multi-modal
            exactly when the behaviour is.
    """

    dataset: str
    mean_js: float
    top2_recall: float
    multi_task_fraction: float
    peak_agreement: float


def evaluate_multidomain(
    dataset: CrowdDataset,
    domain_vectors: Optional[Sequence[np.ndarray]] = None,
    threshold: float = MASS_THRESHOLD,
) -> MultiDomainResult:
    """Score a dataset's domain vectors against behavioural mixtures.

    Args:
        dataset: the dataset (tasks must carry ``behavior_domains``).
        domain_vectors: vectors to score; defaults to each task's
            ``domain_vector``.
        threshold: significance threshold on behavioural mass.

    Returns:
        A :class:`MultiDomainResult`.
    """
    vectors = (
        list(domain_vectors)
        if domain_vectors is not None
        else [t.domain_vector for t in dataset.tasks]
    )
    if len(vectors) != dataset.num_tasks:
        raise ValidationError("domain_vectors misaligned with tasks")

    js_values: List[float] = []
    recalls: List[float] = []
    multi_flags: List[bool] = []
    agreements: List[bool] = []
    for task, estimate in zip(dataset.tasks, vectors):
        if task.behavior_domains is None or estimate is None:
            continue
        behaviour = task.behavior_domains
        js_values.append(jensen_shannon(estimate, behaviour))

        significant = significant_domains(behaviour, threshold)
        top2 = set(np.argsort(-estimate)[:2])
        if significant:
            hits = sum(1 for k in significant[:2] if k in top2)
            recalls.append(hits / min(len(significant), 2))
        is_multi = len(significant) >= 2
        multi_flags.append(is_multi)
        estimate_multi = (
            len(significant_domains(estimate, threshold)) >= 2
        )
        agreements.append(estimate_multi == is_multi)

    if not js_values:
        raise ValidationError(
            "dataset has no behavioural mixtures to score against"
        )
    return MultiDomainResult(
        dataset=dataset.name,
        mean_js=float(np.mean(js_values)),
        top2_recall=float(np.mean(recalls)) if recalls else 0.0,
        multi_task_fraction=float(np.mean(multi_flags)),
        peak_agreement=float(np.mean(agreements)),
    )


def format_multidomain(results: Sequence[MultiDomainResult]) -> str:
    """Render the multi-domain metric table."""
    lines = ["Multi-domain detection metrics (vs behavioural mixtures)"]
    lines.append(
        f"{'dataset':>8s}{'mean JS':>10s}{'top2 rec':>10s}"
        f"{'multi %':>9s}{'peak agr':>10s}"
    )
    for r in results:
        lines.append(
            f"{r.dataset:>8s}{r.mean_js:10.3f}{r.top2_recall:10.3f}"
            f"{100 * r.multi_task_fraction:9.1f}{r.peak_agreement:10.3f}"
        )
    return "\n".join(lines)
