"""Experiment harness: one module per table/figure of the evaluation.

Every module exposes ``run_*`` functions returning plain result rows and
``format_*`` helpers printing the same rows/series the paper reports.
``repro.experiments.context`` prepares the shared inputs (dataset, DVE,
crowd, answers, golden tasks) once per (dataset, seed) so the figures are
computed over a consistent world, exactly as the paper evaluates all
methods "on the same collected answers".
"""

from repro.experiments.context import ExperimentContext, build_context

__all__ = ["ExperimentContext", "build_context"]
