"""Shared experiment state: dataset + DVE + crowd + answers + golden.

Section 6.1's protocol: publish each dataset, batch k = 20 tasks per HIT,
collect 10 answers per task, select 20 golden tasks. ``build_context``
reproduces that setup deterministically from a seed; every figure module
consumes the same context so comparisons share their inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.base import GoldenContext
from repro.core.dve import DomainVectorEstimator
from repro.core.golden import select_golden_tasks
from repro.core.types import Answer
from repro.crowd.answer_model import collect_answers
from repro.crowd.worker_pool import WorkerPool, WorkerPoolConfig
from repro.datasets import make_dataset
from repro.datasets.base import CrowdDataset
from repro.linking import EntityLinker
from repro.utils.rng import SeedLike

#: Paper defaults (Section 6.1).
DEFAULT_ANSWERS_PER_TASK = 10
DEFAULT_GOLDEN_COUNT = 20
DEFAULT_POOL_SIZE = 50


@dataclass
class ExperimentContext:
    """Everything an experiment needs about one dataset instance.

    Attributes:
        dataset: tasks with ground truth and (after build) domain
            vectors.
        linker: the entity linker over the dataset's KB.
        estimator: the DVE estimator (linker + Algorithm 1).
        pool: the simulated workforce.
        answers: 10-answers-per-task collection (Figure 5's shared
            answer sets).
        golden: the selected golden tasks with truths.
        seed: the seed everything derives from.
    """

    dataset: CrowdDataset
    linker: EntityLinker
    estimator: DomainVectorEstimator
    pool: WorkerPool
    answers: List[Answer]
    golden: GoldenContext
    seed: int

    @property
    def name(self) -> str:
        """Dataset name."""
        return self.dataset.name


def build_context(
    dataset_name: str,
    seed: int = 0,
    answers_per_task: int = DEFAULT_ANSWERS_PER_TASK,
    golden_count: int = DEFAULT_GOLDEN_COUNT,
    pool_size: int = DEFAULT_POOL_SIZE,
    dataset_overrides: Optional[dict] = None,
) -> ExperimentContext:
    """Prepare one dataset exactly as Section 6.1 prescribes.

    Args:
        dataset_name: one of ``item``, ``4d``, ``qa``, ``sfv``.
        seed: master seed; dataset, pool, and answer randomness are
            derived deterministically from it.
        answers_per_task: answers collected per task (paper: 10).
        golden_count: golden tasks selected (paper: 20).
        pool_size: number of simulated workers.
        dataset_overrides: forwarded to the dataset config.

    Returns:
        A fully built :class:`ExperimentContext`.
    """
    dataset = make_dataset(dataset_name, seed=seed, **(dataset_overrides or {}))
    linker = EntityLinker(dataset.kb)
    estimator = DomainVectorEstimator(linker, dataset.taxonomy.size)
    pending = [t for t in dataset.tasks if t.domain_vector is None]
    if pending:
        # Batch path: shared candidate cache + vectorised DVE.
        vectors = estimator.estimate_batch([t.text for t in pending])
        for task, vector in zip(pending, vectors):
            task.domain_vector = vector

    active = tuple(d.taxonomy_index for d in dataset.domains)
    pool = WorkerPool.generate(
        WorkerPoolConfig(
            num_workers=pool_size,
            num_domains=dataset.taxonomy.size,
            active_domains=active,
            seed=seed + 1,
        )
    )
    answers = collect_answers(
        dataset.tasks, pool, answers_per_task=answers_per_task, seed=seed + 2
    )

    golden_count = min(golden_count, dataset.num_tasks)
    golden_indices = select_golden_tasks(
        [t.domain_vector for t in dataset.tasks], golden_count
    )
    golden_ids = [dataset.tasks[i].task_id for i in golden_indices]
    golden = GoldenContext(
        golden_ids,
        {
            tid: dataset.task_by_id(tid).ground_truth
            for tid in golden_ids
            if dataset.task_by_id(tid).ground_truth is not None
        },
    )
    return ExperimentContext(
        dataset=dataset,
        linker=linker,
        estimator=estimator,
        pool=pool,
        answers=answers,
        golden=golden,
        seed=seed,
    )
