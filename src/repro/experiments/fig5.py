"""Figure 5: truth-inference comparison — MV/ZC/DS/IC/FC/DOCS.

Protocol (Section 6.3): every method runs over the *same* collected
answers; all are initialised with the same golden tasks; IC and FC are
handed the ground-truth domain of every task. Reported: accuracy (5(a))
and execution time (5(b)).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines import TRUTH_METHODS, make_truth_method
from repro.experiments.context import ExperimentContext, build_context

#: Paper display order.
METHOD_ORDER = ("MV", "ZC", "DS", "IC", "FC", "DOCS")


@dataclass
class TiComparisonResult:
    """Figure 5 rows for one dataset (possibly seed-averaged).

    Attributes:
        dataset: dataset name.
        accuracy: method -> accuracy %.
        seconds: method -> mean execution time.
        seeds: the seeds averaged over.
    """

    dataset: str
    accuracy: Dict[str, float]
    seconds: Dict[str, float]
    seeds: List[int] = field(default_factory=list)


def run_ti_comparison(
    context: ExperimentContext,
    methods: Sequence[str] = METHOD_ORDER,
) -> TiComparisonResult:
    """Run the Figure 5 roster on one prepared context."""
    accuracy: Dict[str, float] = {}
    seconds: Dict[str, float] = {}
    for name in methods:
        method = make_truth_method(name)
        started = time.perf_counter()
        acc = method.accuracy(
            context.dataset.tasks, context.answers, context.golden
        )
        seconds[name] = time.perf_counter() - started
        accuracy[name] = 100.0 * acc
    return TiComparisonResult(
        dataset=context.name,
        accuracy=accuracy,
        seconds=seconds,
        seeds=[context.seed],
    )


def run_ti_comparison_averaged(
    dataset_name: str,
    seeds: Sequence[int] = (7, 17, 27),
    methods: Sequence[str] = METHOD_ORDER,
) -> TiComparisonResult:
    """Seed-averaged Figure 5 rows (smooths crowd-sampling noise)."""
    results = [
        run_ti_comparison(build_context(dataset_name, seed=s), methods)
        for s in seeds
    ]
    return TiComparisonResult(
        dataset=dataset_name,
        accuracy={
            name: float(np.mean([r.accuracy[name] for r in results]))
            for name in methods
        },
        seconds={
            name: float(np.mean([r.seconds[name] for r in results]))
            for name in methods
        },
        seeds=list(seeds),
    )


def format_ti_comparison(results: Sequence[TiComparisonResult]) -> str:
    """Render Figure 5(a)(b) as two ascii tables."""
    lines = ["Figure 5(a): truth-inference accuracy (%)"]
    header = f"{'dataset':>8s}" + "".join(
        f"{m:>8s}" for m in METHOD_ORDER
    )
    lines.append(header)
    for result in results:
        lines.append(
            f"{result.dataset:>8s}"
            + "".join(
                f"{result.accuracy[m]:8.1f}" for m in METHOD_ORDER
            )
        )
    lines.append("")
    lines.append("Figure 5(b): truth-inference execution time (s)")
    lines.append(header)
    for result in results:
        lines.append(
            f"{result.dataset:>8s}"
            + "".join(
                f"{result.seconds[m]:8.2f}" for m in METHOD_ORDER
            )
        )
    return "\n".join(lines)
