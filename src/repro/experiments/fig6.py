"""Figure 6: case study of worker qualities on the Item dataset.

- 6(a) histogram: for each dataset domain, how many workers fall in each
  of 10 true-quality bins.
- 6(b) calibration: estimated vs true quality for the three workers who
  answered the most tasks (4 points each, one per domain).
- 6(c) calibration in the NBA domain for all workers with > 20 answers.

"True quality" follows the paper: the fraction of the worker's answers
that match ground truth, per domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.baselines.docs_truth import DocsTruth
from repro.core.truth_inference import TruthInference
from repro.core.types import group_answers_by_worker
from repro.experiments.context import ExperimentContext
from repro.experiments.fig4 import _golden_qualities


@dataclass
class WorkerCaseStudy:
    """Figure 6's three panels.

    Attributes:
        histogram: domain label -> list of 10 bin counts (bin i covers
            true quality [i/10, (i+1)/10)).
        top_worker_points: worker id -> list of (true, estimated) pairs,
            one per dataset domain, for the 3 most active workers.
        nba_points: (true, estimated) pairs in the first dataset domain
            for workers with more than ``min_answers`` answers.
    """

    histogram: Dict[str, List[int]]
    top_worker_points: Dict[str, List[Tuple[float, float]]]
    nba_points: List[Tuple[float, float]]


def run_case_study(
    context: ExperimentContext, min_answers: int = 20
) -> WorkerCaseStudy:
    """Compute Figure 6's panels for one context (the paper uses Item)."""
    dataset = context.dataset
    truth_of = dataset.ground_truths()
    task_domain = {t.task_id: t.true_domain for t in dataset.tasks}
    by_worker = group_answers_by_worker(context.answers)

    # True quality per (worker, domain): empirical accuracy.
    true_quality: Dict[str, Dict[int, float]] = {}
    answer_counts: Dict[str, int] = {}
    domain_counts: Dict[str, Dict[int, int]] = {}
    for worker_id, worker_answers in by_worker.items():
        answer_counts[worker_id] = len(worker_answers)
        per_domain: Dict[int, List[float]] = {}
        for answer in worker_answers:
            domain = task_domain[answer.task_id]
            per_domain.setdefault(domain, []).append(
                1.0 if truth_of.get(answer.task_id) == answer.choice else 0.0
            )
        true_quality[worker_id] = {
            d: float(np.mean(v)) for d, v in per_domain.items()
        }
        domain_counts[worker_id] = {d: len(v) for d, v in per_domain.items()}

    # Estimated quality from TI.
    ti = TruthInference()
    initial = _golden_qualities(context, context.golden)
    result = ti.infer(
        dataset.tasks, context.answers, initial_qualities=initial
    )

    # 6(a): per-domain histograms of true quality.
    histogram: Dict[str, List[int]] = {}
    for domain in dataset.domains:
        bins = [0] * 10
        for worker_id, per_domain in true_quality.items():
            if domain.taxonomy_index not in per_domain:
                continue
            value = per_domain[domain.taxonomy_index]
            bin_index = min(int(value * 10), 9)
            bins[bin_index] += 1
        histogram[domain.label] = bins

    # 6(b): the 3 most active workers, one point per dataset domain.
    most_active = sorted(
        answer_counts, key=answer_counts.get, reverse=True
    )[:3]
    top_points: Dict[str, List[Tuple[float, float]]] = {}
    for worker_id in most_active:
        points = []
        estimated = result.worker_qualities.get(worker_id)
        if estimated is None:
            continue
        for domain in dataset.domains:
            true_value = true_quality[worker_id].get(domain.taxonomy_index)
            if true_value is None:
                continue
            points.append(
                (true_value, float(estimated[domain.taxonomy_index]))
            )
        top_points[worker_id] = points

    # 6(c): calibration in the first dataset domain (NBA for Item).
    nba = dataset.domains[0]
    nba_points: List[Tuple[float, float]] = []
    for worker_id, counts in domain_counts.items():
        if counts.get(nba.taxonomy_index, 0) <= min_answers:
            continue
        estimated = result.worker_qualities.get(worker_id)
        true_value = true_quality[worker_id].get(nba.taxonomy_index)
        if estimated is None or true_value is None:
            continue
        nba_points.append(
            (true_value, float(estimated[nba.taxonomy_index]))
        )
    return WorkerCaseStudy(
        histogram=histogram,
        top_worker_points=top_points,
        nba_points=nba_points,
    )


def calibration_error(points: List[Tuple[float, float]]) -> float:
    """Mean |true - estimated| over calibration points (lower = closer
    to the Y = X line of Figures 6(b)(c))."""
    if not points:
        return 0.0
    return float(np.mean([abs(t - e) for t, e in points]))


def format_case_study(study: WorkerCaseStudy) -> str:
    """Render Figure 6 as ascii."""
    lines = ["Figure 6(a): #workers per true-quality bin"]
    lines.append(
        f"{'domain':>10s}" + "".join(f"{i/10:>6.1f}" for i in range(10))
    )
    for label, bins in study.histogram.items():
        lines.append(
            f"{label:>10s}" + "".join(f"{b:>6d}" for b in bins)
        )
    lines.append("")
    lines.append(
        "Figure 6(b): (true, estimated) per domain for 3 most active "
        "workers"
    )
    for worker_id, points in study.top_worker_points.items():
        rendered = ", ".join(f"({t:.2f},{e:.2f})" for t, e in points)
        lines.append(f"  {worker_id}: {rendered}")
    lines.append(
        f"Figure 6(c): {len(study.nba_points)} calibration points in "
        f"first domain, mean |true-est| = "
        f"{calibration_error(study.nba_points):.3f}"
    )
    return "\n".join(lines)
