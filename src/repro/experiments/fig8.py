"""Figure 8: end-to-end online task assignment comparison.

- 8(a)/(b): Baseline / AskIt! / IC / QASCA / D-Max / DOCS, each driving
  a full simulated campaign on each dataset (k = 3 per HIT, total budget
  10 answers per task, as in Section 6.1's parallel-assignment protocol).
  Reported: final accuracy and the worst-case single-assignment time.
- 8(c): OTA scalability — assignment time vs task count n for HIT sizes
  k in {5, 10, 50} on synthetic task states (m = 20).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.core.arena import StateArena
from repro.core.assignment import TaskAssigner
from repro.core.types import Task
from repro.crowd.worker_pool import WorkerPool, WorkerPoolConfig
from repro.datasets import make_dataset
from repro.platform.amt_sim import PlatformSimulator
from repro.system import DocsConfig, DocsSystem
from repro.utils.rng import SeedLike, make_rng

#: Paper display order for Figure 8.
ENGINE_ORDER = ("Baseline", "AskIt!", "IC", "QASCA", "D-Max", "DOCS")


def _engine_factories(seed: int) -> Dict[str, Callable[[], object]]:
    # Every competitor comes out of the shared engine registry; DOCS
    # runs through the full campaign shell, same as production.
    from repro.engines import make_engine

    return {
        "Baseline": lambda: make_engine("random", seed=seed + 91),
        "AskIt!": lambda: make_engine("askit"),
        "IC": lambda: make_engine("icrowd"),
        "QASCA": lambda: make_engine("qasca"),
        "D-Max": lambda: make_engine("dmax"),
        "DOCS": lambda: DocsSystem(DocsConfig(seed=seed)),
    }


@dataclass
class OtaComparisonResult:
    """Figure 8(a)(b) rows for one dataset.

    Attributes:
        dataset: dataset name.
        accuracy: engine -> final accuracy %.
        max_assign_seconds: engine -> worst-case assignment time.
        seeds: seeds averaged over.
    """

    dataset: str
    accuracy: Dict[str, float]
    max_assign_seconds: Dict[str, float]
    seeds: List[int] = field(default_factory=list)


def run_ota_comparison(
    dataset_name: str,
    seed: int = 0,
    answers_per_task: int = 10,
    hit_size: int = 3,
    pool_size: int = 50,
    engines: Sequence[str] = ENGINE_ORDER,
    dataset_overrides: dict = None,
) -> OtaComparisonResult:
    """Run every engine through a full campaign on one dataset."""
    dataset = make_dataset(
        dataset_name, seed=seed, **(dataset_overrides or {})
    )
    active = tuple(d.taxonomy_index for d in dataset.domains)
    pool = WorkerPool.generate(
        WorkerPoolConfig(
            num_workers=pool_size,
            num_domains=dataset.taxonomy.size,
            active_domains=active,
            seed=seed + 1,
        )
    )
    factories = _engine_factories(seed)
    accuracy: Dict[str, float] = {}
    worst: Dict[str, float] = {}
    for name in engines:
        engine = factories[name]()
        # Fresh dataset copy per engine: engines mutate task domain
        # vectors; regenerating keeps campaigns independent.
        ds = make_dataset(
            dataset_name, seed=seed, **(dataset_overrides or {})
        )
        simulator = PlatformSimulator(
            ds,
            pool,
            answers_per_task=answers_per_task,
            hit_size=hit_size,
            seed=seed + 3,
        )
        report = simulator.run(engine)
        accuracy[name] = 100.0 * report.accuracy
        worst[name] = report.max_assign_seconds
    return OtaComparisonResult(
        dataset=dataset_name,
        accuracy=accuracy,
        max_assign_seconds=worst,
        seeds=[seed],
    )


def run_ota_comparison_averaged(
    dataset_name: str,
    seeds: Sequence[int] = (7, 17, 27),
    **kwargs,
) -> OtaComparisonResult:
    """Seed-averaged Figure 8(a)(b) rows."""
    results = [
        run_ota_comparison(dataset_name, seed=s, **kwargs) for s in seeds
    ]
    engines = list(results[0].accuracy.keys())
    return OtaComparisonResult(
        dataset=dataset_name,
        accuracy={
            name: float(np.mean([r.accuracy[name] for r in results]))
            for name in engines
        },
        max_assign_seconds={
            name: float(
                np.max([r.max_assign_seconds[name] for r in results])
            )
            for name in engines
        },
        seeds=list(seeds),
    )


@dataclass
class OtaScalabilityPoint:
    """One measurement of Figure 8(c).

    Attributes:
        num_tasks: n.
        k: HIT size.
        seconds: one assignment's wall time.
    """

    num_tasks: int
    k: int
    seconds: float


def run_ota_scalability(
    task_counts: Sequence[int] = (2000, 4000, 6000, 8000, 10000),
    hit_sizes: Sequence[int] = (5, 10, 50),
    num_domains: int = 20,
    num_choices: int = 2,
    seed: SeedLike = 0,
) -> List[OtaScalabilityPoint]:
    """Figure 8(c): assignment time on synthetic task states."""
    rng = make_rng(seed)
    points: List[OtaScalabilityPoint] = []
    for num_tasks in task_counts:
        arena = _synthetic_arena(num_tasks, num_domains, num_choices, rng)
        # Pay the one-off entropy-cache fill outside the timed region so
        # every (n, k) point measures the steady-state assignment cost.
        arena.refresh_entropies()
        quality = rng.uniform(0.3, 0.95, size=num_domains)
        for k in hit_sizes:
            assigner = TaskAssigner(hit_size=k)
            started = time.perf_counter()
            assigner.assign(arena, quality)
            points.append(
                OtaScalabilityPoint(
                    num_tasks=num_tasks,
                    k=k,
                    seconds=time.perf_counter() - started,
                )
            )
    return points


def _synthetic_arena(
    count: int,
    num_domains: int,
    num_choices: int,
    rng: np.random.Generator,
) -> StateArena:
    """An arena of random task states (random r, M) for timing."""
    arena = StateArena(num_domains)
    for task_id in range(count):
        task = Task(
            task_id=task_id,
            text=f"synthetic {task_id}",
            num_choices=num_choices,
        )
        r = rng.dirichlet(np.ones(num_domains))
        M = rng.dirichlet(np.ones(num_choices), size=num_domains)
        arena.add(task, r=r, M=M)
    return arena


def format_ota_comparison(results: Sequence[OtaComparisonResult]) -> str:
    """Render Figure 8(a)(b)."""
    lines = ["Figure 8(a): end-to-end assignment accuracy (%)"]
    header = f"{'dataset':>8s}" + "".join(
        f"{name:>10s}" for name in ENGINE_ORDER
    )
    lines.append(header)
    for result in results:
        lines.append(
            f"{result.dataset:>8s}"
            + "".join(
                f"{result.accuracy[name]:10.1f}" for name in ENGINE_ORDER
            )
        )
    lines.append("")
    lines.append("Figure 8(b): worst-case assignment time (ms)")
    lines.append(header)
    for result in results:
        lines.append(
            f"{result.dataset:>8s}"
            + "".join(
                f"{1000 * result.max_assign_seconds[name]:10.2f}"
                for name in ENGINE_ORDER
            )
        )
    return "\n".join(lines)


def format_ota_scalability(points: Sequence[OtaScalabilityPoint]) -> str:
    """Render Figure 8(c)."""
    lines = ["Figure 8(c): OTA scalability (one assignment)"]
    lines.append(f"{'n':>7s} {'k':>5s} {'seconds':>10s}")
    for p in points:
        lines.append(f"{p.num_tasks:>7d} {p.k:>5d} {p.seconds:10.4f}")
    return "\n".join(lines)
