"""Figure 4: the five TI studies — convergence, golden sweep, answer
sweep, worker-quality estimation, and scalability.

Each function reproduces one panel:

- 4(a) ``run_convergence`` — parameter change Delta per iteration.
- 4(b) ``run_golden_sweep`` — accuracy vs number of golden tasks.
- 4(c) ``run_answer_sweep`` — accuracy vs answers collected per task.
- 4(d) ``run_quality_estimation`` — mean |q_true - q_est| vs answered
  tasks per worker.
- 4(e) ``run_scalability`` — TI wall time vs task count and pool size
  (simulation; m = 20, 10 answers/task as in the paper).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import GoldenContext
from repro.baselines.docs_truth import DocsTruth
from repro.core.golden import select_golden_tasks
from repro.core.quality_store import WorkerQualityStore
from repro.core.truth_inference import TruthInference
from repro.core.types import Answer, Task, group_answers_by_worker
from repro.crowd.answer_model import collect_answers
from repro.crowd.worker_pool import WorkerPool, WorkerPoolConfig
from repro.experiments.context import ExperimentContext
from repro.utils.rng import make_rng


# -- 4(a): convergence ---------------------------------------------------

def run_convergence(
    context: ExperimentContext, iterations: int = 50
) -> List[float]:
    """Delta per iteration (Figure 4(a)'s series for one dataset)."""
    ti = TruthInference(max_iterations=iterations, tolerance=0.0)
    initial = _golden_qualities(context, context.golden)
    result = ti.infer(
        context.dataset.tasks, context.answers, initial_qualities=initial
    )
    return result.delta_history


# -- 4(b): golden-task sweep ----------------------------------------------

def run_golden_sweep(
    context: ExperimentContext,
    golden_counts: Sequence[int] = (0, 5, 10, 15, 20, 25, 30, 35, 40),
) -> Dict[int, float]:
    """Accuracy (%) as a function of the number of golden tasks."""
    accuracies: Dict[int, float] = {}
    method = DocsTruth()
    domain_vectors = [t.domain_vector for t in context.dataset.tasks]
    for count in golden_counts:
        if count == 0:
            golden = GoldenContext.empty()
        else:
            indices = select_golden_tasks(domain_vectors, count)
            ids = [context.dataset.tasks[i].task_id for i in indices]
            golden = GoldenContext(
                ids,
                {
                    tid: context.dataset.task_by_id(tid).ground_truth
                    for tid in ids
                },
            )
        accuracies[count] = 100.0 * method.accuracy(
            context.dataset.tasks, context.answers, golden
        )
    return accuracies


# -- 4(c): answers-per-task sweep ------------------------------------------

def run_answer_sweep(
    context: ExperimentContext,
    answer_counts: Sequence[int] = tuple(range(1, 11)),
) -> Dict[int, float]:
    """Accuracy (%) as a function of answers collected per task."""
    method = DocsTruth()
    per_task: Dict[int, List[Answer]] = {}
    for answer in context.answers:
        per_task.setdefault(answer.task_id, []).append(answer)
    accuracies: Dict[int, float] = {}
    for count in answer_counts:
        subset = [
            answer
            for answers in per_task.values()
            for answer in answers[:count]
        ]
        accuracies[count] = 100.0 * method.accuracy(
            context.dataset.tasks, subset, context.golden
        )
    return accuracies


# -- 4(d): worker-quality estimation ----------------------------------------

def run_quality_estimation(
    context: ExperimentContext,
    answered_counts: Sequence[int] = (1, 5, 10, 20, 40, 60, 80, 100),
) -> Dict[int, float]:
    """Mean |q_true - q_est| over (worker, active domain) pairs, as a
    function of how many answers each worker has contributed.

    True quality is the empirical accuracy of the worker's answers per
    domain (exactly the paper's definition), computed over the *full*
    answer set; the estimate comes from TI run on the truncated one.
    """
    dataset = context.dataset
    active = [d.taxonomy_index for d in dataset.domains]
    task_domain = {
        t.task_id: t.true_domain for t in dataset.tasks
    }
    truth_of = dataset.ground_truths()

    # Empirical true quality per (worker, active domain).
    true_quality: Dict[str, Dict[int, float]] = {}
    by_worker = group_answers_by_worker(context.answers)
    for worker_id, worker_answers in by_worker.items():
        per_domain: Dict[int, List[float]] = {}
        for answer in worker_answers:
            domain = task_domain[answer.task_id]
            if domain is None:
                continue
            per_domain.setdefault(domain, []).append(
                1.0 if truth_of.get(answer.task_id) == answer.choice else 0.0
            )
        true_quality[worker_id] = {
            domain: float(np.mean(vals))
            for domain, vals in per_domain.items()
            if len(vals) >= 3  # need evidence for a stable "true" value
        }

    ti = TruthInference()
    initial = _golden_qualities(context, context.golden)
    deviations: Dict[int, float] = {}
    for count in answered_counts:
        truncated: List[Answer] = []
        seen: Dict[str, int] = {}
        for answer in context.answers:
            used = seen.get(answer.worker_id, 0)
            if used < count:
                truncated.append(answer)
                seen[answer.worker_id] = used + 1
        result = ti.infer(
            dataset.tasks, truncated, initial_qualities=initial
        )
        errors: List[float] = []
        for worker_id, quality in result.worker_qualities.items():
            for domain, true_value in true_quality.get(
                worker_id, {}
            ).items():
                errors.append(abs(true_value - float(quality[domain])))
        deviations[count] = float(np.mean(errors)) if errors else 0.0
    return deviations


# -- 4(e): scalability -------------------------------------------------------

@dataclass
class TiScalabilityPoint:
    """One measurement of Figure 4(e).

    Attributes:
        num_tasks: n.
        num_workers: |W|.
        seconds: TI wall time.
    """

    num_tasks: int
    num_workers: int
    seconds: float


def run_scalability(
    task_counts: Sequence[int] = (2000, 4000, 6000, 8000, 10000),
    worker_counts: Sequence[int] = (10, 100, 500),
    num_domains: int = 20,
    answers_per_task: int = 10,
    seed: int = 0,
) -> List[TiScalabilityPoint]:
    """Time TI on synthetic workloads (m = 20, 10 answers per task)."""
    points: List[TiScalabilityPoint] = []
    rng = make_rng(seed)
    for num_workers in worker_counts:
        pool = WorkerPool.generate(
            WorkerPoolConfig(
                num_workers=num_workers,
                num_domains=num_domains,
                seed=int(rng.integers(0, 2**31)),
            )
        )
        for num_tasks in task_counts:
            tasks = _synthetic_tasks(num_tasks, num_domains, rng)
            answers = collect_answers(
                tasks,
                pool,
                answers_per_task=min(answers_per_task, num_workers),
                seed=int(rng.integers(0, 2**31)),
            )
            ti = TruthInference()
            started = time.perf_counter()
            ti.infer(tasks, answers)
            points.append(
                TiScalabilityPoint(
                    num_tasks=num_tasks,
                    num_workers=num_workers,
                    seconds=time.perf_counter() - started,
                )
            )
    return points


def _synthetic_tasks(
    count: int, num_domains: int, rng: np.random.Generator
) -> List[Task]:
    """Random two-choice tasks with one-hot-ish domain vectors."""
    tasks = []
    for task_id in range(count):
        domain = int(rng.integers(0, num_domains))
        r = np.full(num_domains, 0.1 / (num_domains - 1))
        r[domain] = 0.9
        tasks.append(
            Task(
                task_id=task_id,
                text=f"synthetic task {task_id}",
                num_choices=2,
                domain_vector=r,
                ground_truth=int(rng.integers(1, 3)),
                true_domain=domain,
            )
        )
    return tasks


def _golden_qualities(
    context: ExperimentContext, golden: GoldenContext
) -> Dict[str, np.ndarray]:
    """Initial qualities from golden answers (shared across panels)."""
    if not golden.task_ids:
        return {}
    store = WorkerQualityStore(context.dataset.taxonomy.size)
    domain_vectors = {
        t.task_id: t.domain_vector for t in context.dataset.tasks
    }
    golden_ids = set(golden.task_ids)
    for worker_id, worker_answers in group_answers_by_worker(
        context.answers
    ).items():
        relevant = {
            a.task_id: a.choice
            for a in worker_answers
            if a.task_id in golden_ids
        }
        if relevant:
            store.initialize_from_golden(
                worker_id, relevant, golden.truths, domain_vectors
            )
    return {
        worker_id: store.quality_or_default(worker_id)
        for worker_id in store.known_workers()
    }
