"""Figure 3: domain-detection accuracy — IC(LDA) vs FC(TwitterLDA) vs DOCS.

Protocol (Section 6.2): the topic models are fitted with the number of
latent domains set to the dataset's true domain count (m' = m'' = 4, "to
favor them"); each latent topic is then mapped to the dataset domain it
most frequently captures (the paper does this mapping manually; here it
is the same majority mapping computed automatically). DOCS detects with
its 26 explicit domains; a task counts as correct when the argmax of its
domain vector is the task's mapped taxonomy domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.topics.lda import LatentDirichletAllocation
from repro.topics.twitter_lda import TwitterLDA

#: Display names used in the paper's legend.
METHOD_LABELS = ("IC(LDA)", "FC(TwitterLDA)", "DOCS")


@dataclass
class DomainDetectionResult:
    """Figure 3 rows for one dataset.

    Attributes:
        dataset: dataset name.
        per_domain: method -> {dataset domain label -> accuracy %}.
        overall: method -> overall accuracy %.
    """

    dataset: str
    per_domain: Dict[str, Dict[str, float]]
    overall: Dict[str, float]


def _majority_topic_mapping(
    topics: np.ndarray, labels: List[str]
) -> Dict[int, str]:
    """Map each latent topic to the dataset domain it mostly captures."""
    counts: Dict[int, Dict[str, int]] = {}
    for topic, label in zip(topics, labels):
        counts.setdefault(int(topic), {}).setdefault(label, 0)
        counts[int(topic)][label] += 1
    return {
        topic: max(domain_counts, key=domain_counts.get)
        for topic, domain_counts in counts.items()
    }


def _score(
    predicted_labels: List[Optional[str]], labels: List[str]
) -> Dict[str, float]:
    """Per-domain accuracy (%) plus the 'overall' entry."""
    per_domain: Dict[str, List[float]] = {}
    for predicted, actual in zip(predicted_labels, labels):
        per_domain.setdefault(actual, []).append(
            100.0 if predicted == actual else 0.0
        )
    result = {label: float(np.mean(v)) for label, v in per_domain.items()}
    result["overall"] = float(
        np.mean(
            [
                100.0 if predicted == actual else 0.0
                for predicted, actual in zip(predicted_labels, labels)
            ]
        )
    )
    return result


def run_domain_detection(
    context: ExperimentContext,
    topic_iterations: int = 100,
) -> DomainDetectionResult:
    """Compute Figure 3's detection accuracies for one dataset.

    Args:
        context: the prepared dataset context.
        topic_iterations: Gibbs sweeps for the topic models.

    Returns:
        A :class:`DomainDetectionResult`.
    """
    dataset = context.dataset
    texts = [t.text for t in dataset.tasks]
    labels = list(dataset.task_labels)
    num_latent = len(dataset.domains)

    # IC: vanilla LDA, topic = argmax of theta.
    lda = LatentDirichletAllocation(
        num_topics=num_latent,
        iterations=topic_iterations,
        seed=context.seed + 31,
    )
    lda_result = lda.fit(texts)
    lda_topics = lda_result.document_topics.argmax(axis=1)
    lda_mapping = _majority_topic_mapping(lda_topics, labels)
    lda_predicted = [lda_mapping.get(int(t)) for t in lda_topics]

    # FC: TwitterLDA (short-text variant).
    tlda = TwitterLDA(
        num_topics=num_latent,
        iterations=topic_iterations,
        burn_in=topic_iterations // 3,
        seed=context.seed + 37,
    )
    tlda_result = tlda.fit(texts)
    tlda_topics = tlda_result.document_topics.argmax(axis=1)
    tlda_mapping = _majority_topic_mapping(tlda_topics, labels)
    tlda_predicted = [tlda_mapping.get(int(t)) for t in tlda_topics]

    # DOCS: argmax of the KB-derived domain vector.
    index_to_label = {
        d.taxonomy_index: d.label for d in dataset.domains
    }
    docs_predicted: List[Optional[str]] = []
    for task in dataset.tasks:
        detected = int(np.argmax(task.domain_vector))
        docs_predicted.append(index_to_label.get(detected))

    per_method = {
        "IC(LDA)": _score(lda_predicted, labels),
        "FC(TwitterLDA)": _score(tlda_predicted, labels),
        "DOCS": _score(docs_predicted, labels),
    }
    return DomainDetectionResult(
        dataset=dataset.name,
        per_domain={
            method: {
                k: v for k, v in scores.items() if k != "overall"
            }
            for method, scores in per_method.items()
        },
        overall={
            method: scores["overall"]
            for method, scores in per_method.items()
        },
    )


def format_domain_detection(result: DomainDetectionResult) -> str:
    """Render one dataset's Figure 3 panel as an ascii table."""
    domains = sorted(
        next(iter(result.per_domain.values())).keys()
    )
    lines = [f"Figure 3 ({result.dataset}): domain detection accuracy (%)"]
    header = f"{'method':16s}" + "".join(
        f"{d[:12]:>14s}" for d in domains
    ) + f"{'overall':>10s}"
    lines.append(header)
    for method in METHOD_LABELS:
        row = f"{method:16s}" + "".join(
            f"{result.per_domain[method][d]:14.1f}" for d in domains
        )
        row += f"{result.overall[method]:10.1f}"
        lines.append(row)
    return "\n".join(lines)
