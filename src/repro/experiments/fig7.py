"""Figure 7: golden-task selection — optimality and scalability.

- 7(a): for n' in [0, 20] and m = 10 with random target distributions,
  compare the paper's greedy approximation against brute-force
  enumeration over all compositions: execution time of both, and the
  approximation ratio gamma = |D - D_opt| / D_opt (paper: mean within
  0.1%).
- 7(b): greedy execution time for n' in [1K, 10K], m in {10, 20, 50}
  (flat in n', O(m^2 n) overall — here the task-count term is fixed so
  the curve is flat, as in the paper).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.golden import (
    enumerate_golden_counts,
    kl_objective,
    select_golden_counts,
)
from repro.utils.rng import SeedLike, make_rng


@dataclass
class GoldenComparisonPoint:
    """One n' measurement of Figure 7(a).

    Attributes:
        n_prime: golden budget.
        greedy_seconds: greedy wall time.
        enumeration_seconds: brute-force wall time.
        gamma: |D - D_opt| / D_opt (0 when both are optimal; when
            D_opt == 0 the ratio is defined as 0 iff D == 0).
    """

    n_prime: int
    greedy_seconds: float
    enumeration_seconds: float
    gamma: float


def run_golden_comparison(
    n_primes: Sequence[int] = tuple(range(1, 21)),
    num_domains: int = 10,
    seed: SeedLike = 0,
) -> List[GoldenComparisonPoint]:
    """Figure 7(a): greedy vs enumeration on random distributions."""
    rng = make_rng(seed)
    points: List[GoldenComparisonPoint] = []
    for n_prime in n_primes:
        tau = rng.dirichlet(np.ones(num_domains))

        started = time.perf_counter()
        greedy_counts = select_golden_counts(tau, n_prime)
        greedy_seconds = time.perf_counter() - started

        started = time.perf_counter()
        _, optimal_value = enumerate_golden_counts(tau, n_prime)
        enumeration_seconds = time.perf_counter() - started

        greedy_value = kl_objective(greedy_counts, tau, n_prime)
        if optimal_value > 0:
            gamma = abs(greedy_value - optimal_value) / optimal_value
        else:
            gamma = 0.0 if greedy_value <= 1e-12 else float("inf")
        points.append(
            GoldenComparisonPoint(
                n_prime=n_prime,
                greedy_seconds=greedy_seconds,
                enumeration_seconds=enumeration_seconds,
                gamma=gamma,
            )
        )
    return points


@dataclass
class GoldenScalabilityPoint:
    """One measurement of Figure 7(b).

    Attributes:
        n_prime: golden budget.
        num_domains: m.
        seconds: greedy wall time.
    """

    n_prime: int
    num_domains: int
    seconds: float


def run_golden_scalability(
    n_primes: Sequence[int] = (1000, 4000, 7000, 10000),
    domain_counts: Sequence[int] = (10, 20, 50),
    seed: SeedLike = 0,
) -> List[GoldenScalabilityPoint]:
    """Figure 7(b): greedy time across budgets and domain counts."""
    rng = make_rng(seed)
    points: List[GoldenScalabilityPoint] = []
    for num_domains in domain_counts:
        tau = rng.dirichlet(np.ones(num_domains))
        for n_prime in n_primes:
            started = time.perf_counter()
            select_golden_counts(tau, n_prime)
            points.append(
                GoldenScalabilityPoint(
                    n_prime=n_prime,
                    num_domains=num_domains,
                    seconds=time.perf_counter() - started,
                )
            )
    return points


def format_golden_comparison(
    points: List[GoldenComparisonPoint],
) -> str:
    """Render Figure 7(a)."""
    lines = ["Figure 7(a): golden selection, greedy vs enumeration"]
    lines.append(
        f"{'n_prime':>8s} {'greedy(s)':>12s} {'enum(s)':>12s} "
        f"{'gamma':>10s}"
    )
    for p in points:
        lines.append(
            f"{p.n_prime:>8d} {p.greedy_seconds:12.5f} "
            f"{p.enumeration_seconds:12.3f} {p.gamma:10.5f}"
        )
    mean_gamma = float(np.mean([p.gamma for p in points]))
    lines.append(f"mean gamma = {mean_gamma:.5f} (paper: <= 0.001)")
    return "\n".join(lines)


def format_golden_scalability(
    points: List[GoldenScalabilityPoint],
) -> str:
    """Render Figure 7(b)."""
    lines = ["Figure 7(b): golden selection scalability (greedy)"]
    lines.append(f"{'m':>5s} {'n_prime':>9s} {'seconds':>10s}")
    for p in points:
        lines.append(
            f"{p.num_domains:>5d} {p.n_prime:>9d} {p.seconds:10.5f}"
        )
    return "\n".join(lines)
