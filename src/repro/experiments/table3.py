"""Table 3: DVE efficiency — Algorithm 1 vs Enumeration at top-c cutoffs.

The paper times both methods over each full dataset at c in {20, 10, 3};
enumeration exceeds a day at c = 20/10 ("> 1 day"). Wall-clock budgets
don't transfer across machines, so the reproduction caps enumeration by
the number of linkings it would visit: if a dataset's total exceeds the
work budget, the harness reports the capped marker — the same semantics
as the paper's timeout, but deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.dve import (
    domain_vector,
    domain_vector_enumeration,
    enumeration_linking_count,
)
from repro.errors import WorkBudgetExceeded
from repro.experiments.context import ExperimentContext

#: The candidate cutoffs of Table 3 (top-20 is the paper's default).
CUTOFFS = (20, 10, 3)

#: Enumeration work budget, in linkings across the whole dataset. The
#: paper's ">1 day" corresponds to an astronomically larger number; this
#: budget keeps benchmarks in seconds while preserving the blow-up shape
#: (entity-rich datasets exceed it at top-20/top-10, nobody does at
#: top-3).
DEFAULT_WORK_BUDGET = 500_000


@dataclass
class DveEfficiencyRow:
    """One (dataset, cutoff) cell pair of Table 3.

    Attributes:
        dataset: dataset name.
        top_c: candidate cutoff.
        algorithm1_seconds: wall time of Algorithm 1 over all tasks.
        enumeration_seconds: wall time of enumeration, or None if the
            work budget was exceeded (render as "> budget").
        enumeration_linkings: total linkings enumeration must visit.
    """

    dataset: str
    top_c: int
    algorithm1_seconds: float
    enumeration_seconds: Optional[float]
    enumeration_linkings: int


def run_dve_efficiency(
    context: ExperimentContext,
    cutoffs: Tuple[int, ...] = CUTOFFS,
    work_budget: int = DEFAULT_WORK_BUDGET,
) -> List[DveEfficiencyRow]:
    """Time both DVE computations over a dataset for each cutoff.

    Returns:
        One row per cutoff.
    """
    rows: List[DveEfficiencyRow] = []
    for top_c in cutoffs:
        linked = [
            context.linker.link(task.text, top_c=top_c)
            for task in context.dataset.tasks
        ]
        linked = [entities for entities in linked if entities]

        started = time.perf_counter()
        for entities in linked:
            domain_vector(entities)
        alg1_seconds = time.perf_counter() - started

        total_linkings = sum(
            enumeration_linking_count(entities) for entities in linked
        )
        enum_seconds: Optional[float]
        if total_linkings > work_budget:
            enum_seconds = None
        else:
            started = time.perf_counter()
            try:
                for entities in linked:
                    domain_vector_enumeration(
                        entities, work_limit=work_budget
                    )
                enum_seconds = time.perf_counter() - started
            except WorkBudgetExceeded:
                enum_seconds = None
        rows.append(
            DveEfficiencyRow(
                dataset=context.name,
                top_c=top_c,
                algorithm1_seconds=alg1_seconds,
                enumeration_seconds=enum_seconds,
                enumeration_linkings=total_linkings,
            )
        )
    return rows


def format_dve_efficiency(rows: List[DveEfficiencyRow]) -> str:
    """Render Table 3 rows for one dataset."""
    lines = [f"Table 3 ({rows[0].dataset}): DVE efficiency"]
    lines.append(
        f"{'top-c':>6s} {'Alg.1 (s)':>12s} {'Enum. (s)':>14s} "
        f"{'#linkings':>12s}"
    )
    for row in rows:
        enum = (
            f"{row.enumeration_seconds:.2f}"
            if row.enumeration_seconds is not None
            else "> budget"
        )
        lines.append(
            f"{row.top_c:>6d} {row.algorithm1_seconds:12.2f} "
            f"{enum:>14s} {row.enumeration_linkings:12d}"
        )
    return "\n".join(lines)
