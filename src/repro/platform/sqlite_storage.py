"""SQLite-backed storage: durable tables for answers and worker stats.

Figure 1 shows DOCS persisting answers and worker statistics in a
database so that worker models survive across requesters and system
restarts. :mod:`repro.platform.storage` provides the in-memory tables
used by experiments; this module provides drop-in durable equivalents on
top of the standard library's ``sqlite3``:

- :class:`SqliteAnswerTable` — same interface as
  :class:`repro.platform.storage.AnswerTable`;
- :class:`SqliteSystemDatabase` — same interface as
  :class:`repro.platform.storage.SystemDatabase` (task catalogue +
  answers + golden registry), with the ingest plane's bulk
  ``add_tasks`` / ``add_answers`` running as single ``executemany``
  round-trips;
- :class:`SqliteWorkerQualityStore` — same interface as
  :class:`repro.core.quality_store.WorkerQualityStore`, persisting the
  (quality, weight) vectors of Theorem 1.

All accept a filesystem path or ``":memory:"``.
"""

from __future__ import annotations

import sqlite3
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.core.types import Answer, Task
from repro.core.quality_store import WorkerStats
from repro.errors import UnknownTaskError, UnknownWorkerError, ValidationError
from repro.platform.journal import AnswerJournal, JournaledAnswerTable

_ANSWER_SCHEMA = """
CREATE TABLE IF NOT EXISTS answers (
    worker_id TEXT NOT NULL,
    task_id   INTEGER NOT NULL,
    choice    INTEGER NOT NULL,
    seq       INTEGER PRIMARY KEY AUTOINCREMENT,
    UNIQUE (worker_id, task_id)
);
CREATE INDEX IF NOT EXISTS idx_answers_task ON answers (task_id);
CREATE INDEX IF NOT EXISTS idx_answers_worker ON answers (worker_id);
"""

_TASK_SCHEMA = """
CREATE TABLE IF NOT EXISTS tasks (
    task_id       INTEGER PRIMARY KEY,
    text          TEXT NOT NULL,
    num_choices   INTEGER NOT NULL,
    domain_vector BLOB,
    ground_truth  INTEGER,
    true_domain   INTEGER,
    distractor    INTEGER,
    golden_rank   INTEGER,
    ingest_seq    INTEGER
);
"""

_WORKER_SCHEMA = """
CREATE TABLE IF NOT EXISTS worker_stats (
    worker_id TEXT NOT NULL,
    domain    INTEGER NOT NULL,
    quality   REAL NOT NULL,
    weight    REAL NOT NULL,
    PRIMARY KEY (worker_id, domain)
);
"""


class SqliteAnswerTable:
    """Durable answers relation with the AnswerTable interface.

    Args:
        path: SQLite database path (or ``":memory:"``).
        conn: an existing connection to attach to instead of opening
            ``path`` (used by :class:`SqliteSystemDatabase` so tasks and
            answers share one database file and one transaction scope).
    """

    def __init__(
        self,
        path: str = ":memory:",
        conn: Optional[sqlite3.Connection] = None,
    ):
        self._conn = conn if conn is not None else sqlite3.connect(path)
        self._conn.executescript(_ANSWER_SCHEMA)
        self._conn.commit()
        #: Per-worker answered-task sets, mirroring the in-memory
        #: table's O(1) ``tasks_answered_by``. Populated lazily from the
        #: database (the file may pre-exist), then kept fresh on insert.
        #: This assumes the table object is the file's only *writer*
        #: while open — writes made through another connection are not
        #: reflected in already-hydrated sets.
        self._worker_tasks: Dict[str, Set[int]] = {}

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def insert(self, answer: Answer) -> None:
        """Append one answer.

        Raises:
            ValidationError: if this (worker, task) pair already exists
                (the paper's at-most-once constraint, enforced by the
                UNIQUE index).
        """
        try:
            self._conn.execute(
                "INSERT INTO answers (worker_id, task_id, choice) "
                "VALUES (?, ?, ?)",
                (answer.worker_id, answer.task_id, answer.choice),
            )
            self._conn.commit()
        except sqlite3.IntegrityError:
            raise ValidationError(
                f"worker {answer.worker_id} already answered task "
                f"{answer.task_id}"
            ) from None
        cached = self._worker_tasks.get(answer.worker_id)
        if cached is not None:
            cached.add(answer.task_id)

    def add_answers(self, answers: Sequence[Answer]) -> None:
        """Batch-append answers: one ``executemany`` round-trip.

        The enclosing transaction makes the batch atomic — a duplicate
        (worker, task) pair anywhere in it rolls the whole batch back.

        Raises:
            ValidationError: if any pair violates the at-most-once
                constraint.
        """
        try:
            with self._conn:
                self._conn.executemany(
                    "INSERT INTO answers (worker_id, task_id, choice) "
                    "VALUES (?, ?, ?)",
                    [(a.worker_id, a.task_id, a.choice) for a in answers],
                )
        except sqlite3.IntegrityError:
            raise ValidationError(
                "batch contains a (worker, task) pair that was already "
                "answered"
            ) from None
        for answer in answers:
            cached = self._worker_tasks.get(answer.worker_id)
            if cached is not None:
                cached.add(answer.task_id)

    def all(self) -> List[Answer]:
        """All answers in arrival order."""
        rows = self._conn.execute(
            "SELECT worker_id, task_id, choice FROM answers ORDER BY seq"
        ).fetchall()
        return [Answer(w, t, c) for w, t, c in rows]

    def for_task(self, task_id: int) -> List[Answer]:
        """The answer set V(i) of one task (arrival order)."""
        rows = self._conn.execute(
            "SELECT worker_id, task_id, choice FROM answers "
            "WHERE task_id = ? ORDER BY seq",
            (task_id,),
        ).fetchall()
        return [Answer(w, t, c) for w, t, c in rows]

    def for_worker(self, worker_id: str) -> List[Answer]:
        """The answered set T(w) of one worker (arrival order)."""
        rows = self._conn.execute(
            "SELECT worker_id, task_id, choice FROM answers "
            "WHERE worker_id = ? ORDER BY seq",
            (worker_id,),
        ).fetchall()
        return [Answer(w, t, c) for w, t, c in rows]

    def tasks_answered_by(self, worker_id: str) -> Set[int]:
        """Task ids answered by a worker.

        Amortised O(1): the first call per worker hydrates a persistent
        set from the database; later calls return it directly (inserts
        through *this* object keep it fresh — see the single-writer
        note on ``_worker_tasks``). The set is live — treat it as
        read-only.
        """
        cached = self._worker_tasks.get(worker_id)
        if cached is None:
            rows = self._conn.execute(
                "SELECT task_id FROM answers WHERE worker_id = ?",
                (worker_id,),
            ).fetchall()
            cached = {t for (t,) in rows}
            self._worker_tasks[worker_id] = cached
        return cached

    def count_for_task(self, task_id: int) -> int:
        """|V(i)| for one task."""
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM answers WHERE task_id = ?",
            (task_id,),
        ).fetchone()
        return int(count)

    def has_answered(self, worker_id: str, task_id: int) -> bool:
        """Integrity-check helper."""
        row = self._conn.execute(
            "SELECT 1 FROM answers WHERE worker_id = ? AND task_id = ?",
            (worker_id, task_id),
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM answers"
        ).fetchone()
        return int(count)


def _encode_vector(vector: Optional[np.ndarray]) -> Optional[bytes]:
    if vector is None:
        return None
    return np.asarray(vector, dtype=np.float64).tobytes()


def _decode_vector(blob: Optional[bytes]) -> Optional[np.ndarray]:
    if blob is None:
        return None
    return np.frombuffer(blob, dtype=np.float64).copy()


class SqliteSystemDatabase:
    """Durable task catalogue + answers + golden registry.

    A drop-in :class:`repro.platform.storage.SystemDatabase` with all
    tables in one SQLite file; the ingest plane's bulk ``add_tasks`` /
    ``add_answers`` each run as a single ``executemany`` round-trip
    inside one transaction. ``behavior_domains`` (a simulation-only
    field) is not persisted.

    Two answer-plane modes:

    - ``journal_batch_size=None`` (default): answers go straight to the
      durable ``answers`` relation (:class:`SqliteAnswerTable`), one
      commit per insert — the drop-in analytical mode.
    - ``journal_batch_size=N``: answers ride the crash-safe write-behind
      :class:`repro.platform.journal.AnswerJournal` (``answers_log``
      table, flushed every N events / on :meth:`checkpoint` /
      :meth:`close`), with serving-path reads answered from an in-memory
      index (:class:`repro.platform.journal.JournaledAnswerTable`).
      This is the mode ``DocsSystem(storage="sqlite")`` runs campaigns
      on; ``DocsSystem.resume`` replays the journal.

    Files created before the journal era are migrated in place: the
    ``ingest_seq`` column (arena registration order, needed for replay)
    is added when missing and backfilled in task-id order.

    Args:
        path: SQLite database path (or ``":memory:"``).
        journal_batch_size: enable journaled answer mode with this
            flush threshold; ``None`` keeps the direct-write mode.
    """

    def __init__(
        self,
        path: str = ":memory:",
        journal_batch_size: Optional[int] = None,
    ):
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_TASK_SCHEMA)
        self._migrate()
        self._conn.commit()
        self._closed = False
        self.journal: Optional["AnswerJournal"] = None
        if journal_batch_size is None:
            self.answers = SqliteAnswerTable(conn=self._conn)
        else:
            # Write-behind mode trades per-commit fsyncs for the
            # checkpoint contract: WAL keeps every batch atomic (a torn
            # batch is impossible), synchronous=NORMAL defers the fsync
            # to WAL checkpoints — an OS-level crash can roll the file
            # back to an earlier *complete* batch, never a partial one,
            # which is exactly the loss window the journal documents.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self.journal = AnswerJournal(
                self._conn, batch_size=journal_batch_size
            )
            self.answers = JournaledAnswerTable(self.journal)

    def _migrate(self) -> None:
        """Bring a pre-existing file up to the current schema."""
        columns = {
            row[1]
            for row in self._conn.execute("PRAGMA table_info(tasks)")
        }
        if "ingest_seq" not in columns:
            self._conn.execute(
                "ALTER TABLE tasks ADD COLUMN ingest_seq INTEGER"
            )
        # Backfill rows that predate the column (or were written by the
        # plain-storage path) with dense task-id-ordered ranks, so
        # replay has a deterministic registration order to rebuild.
        (base,) = self._conn.execute(
            "SELECT COALESCE(MAX(ingest_seq), -1) FROM tasks"
        ).fetchone()
        unranked = self._conn.execute(
            "SELECT task_id FROM tasks WHERE ingest_seq IS NULL "
            "ORDER BY task_id"
        ).fetchall()
        if unranked:
            self._conn.executemany(
                "UPDATE tasks SET ingest_seq = ? WHERE task_id = ?",
                [
                    (base + 1 + offset, task_id)
                    for offset, (task_id,) in enumerate(unranked)
                ],
            )

    def checkpoint(self) -> int:
        """Flush the write-behind journal (no-op in direct mode).

        Returns:
            Rows made durable by this call.
        """
        if self.journal is None:
            return 0
        return self.journal.flush()

    def close(self) -> None:
        """Checkpoint, then close the connection (idempotent)."""
        if self._closed:
            return
        self.checkpoint()
        self._conn.close()
        self._closed = True

    @staticmethod
    def _row_to_task(row: Tuple) -> Task:
        task_id, text, ell, r_blob, truth, domain, distractor = row
        return Task(
            task_id=task_id,
            text=text,
            num_choices=ell,
            domain_vector=_decode_vector(r_blob),
            ground_truth=truth,
            true_domain=domain,
            distractor=distractor,
        )

    def insert_task(self, task: Task) -> None:
        """Register a task.

        Raises:
            ValidationError: on duplicate ids.
        """
        self.add_tasks([task])

    def insert_tasks(self, tasks: Iterable[Task]) -> None:
        """Register many tasks."""
        self.add_tasks(list(tasks))

    def add_tasks(self, tasks: Sequence[Task]) -> None:
        """Batch-register tasks: one ``executemany`` round-trip.

        Atomic: a duplicate id anywhere in the batch (against the
        catalogue or within the batch) rolls the whole batch back.

        Raises:
            ValidationError: naming the first offending task id.
        """
        ids = [task.task_id for task in tasks]
        seen: Set[int] = set()
        for task_id in ids:
            if task_id in seen:
                raise ValidationError(
                    f"duplicate task id {task_id}; task ids must be "
                    "unique — deduplicate the batch before storing it"
                )
            seen.add(task_id)
        (base,) = self._conn.execute(
            "SELECT COALESCE(MAX(ingest_seq), -1) FROM tasks"
        ).fetchone()
        try:
            with self._conn:
                self._conn.executemany(
                    "INSERT INTO tasks (task_id, text, num_choices, "
                    "domain_vector, ground_truth, true_domain, distractor, "
                    "ingest_seq) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    [
                        (
                            t.task_id,
                            t.text,
                            t.num_choices,
                            _encode_vector(t.domain_vector),
                            t.ground_truth,
                            t.true_domain,
                            t.distractor,
                            base + 1 + offset,
                        )
                        for offset, t in enumerate(tasks)
                    ],
                )
        except sqlite3.IntegrityError as exc:
            existing = {
                tid for (tid,) in self._conn.execute(
                    "SELECT task_id FROM tasks"
                ).fetchall()
            }
            offender = next(
                (tid for tid in ids if tid in existing), None
            )
            if offender is not None:
                raise ValidationError(
                    f"duplicate task id {offender}; it is already in "
                    "the catalogue — pass only new tasks, or use "
                    "fresh ids"
                ) from None
            raise ValidationError(
                f"task batch violates a storage constraint: {exc}"
            ) from None

    def remove_tasks(self, task_ids: Sequence[int]) -> None:
        """Drop tasks from the catalogue in one transaction (the ingest
        plane's rollback hook — see
        :meth:`repro.platform.storage.SystemDatabase.remove_tasks`)."""
        with self._conn:
            self._conn.executemany(
                "DELETE FROM tasks WHERE task_id = ?",
                [(task_id,) for task_id in task_ids],
            )

    def add_answers(self, answers: Sequence[Answer]) -> None:
        """Batch-append answers (see :meth:`SqliteAnswerTable.add_answers`)."""
        self.answers.add_answers(answers)

    def task(self, task_id: int) -> Task:
        """Fetch a task.

        Raises:
            UnknownTaskError: if missing.
        """
        row = self._conn.execute(
            "SELECT task_id, text, num_choices, domain_vector, "
            "ground_truth, true_domain, distractor FROM tasks "
            "WHERE task_id = ?",
            (task_id,),
        ).fetchone()
        if row is None:
            raise UnknownTaskError(task_id)
        return self._row_to_task(row)

    def tasks(self) -> List[Task]:
        """All tasks, id-ordered."""
        rows = self._conn.execute(
            "SELECT task_id, text, num_choices, domain_vector, "
            "ground_truth, true_domain, distractor FROM tasks "
            "ORDER BY task_id"
        ).fetchall()
        return [self._row_to_task(row) for row in rows]

    def task_ids(self) -> List[int]:
        """All task ids, ordered."""
        rows = self._conn.execute(
            "SELECT task_id FROM tasks ORDER BY task_id"
        ).fetchall()
        return [tid for (tid,) in rows]

    def tasks_in_ingest_order(self) -> List[Task]:
        """All tasks in their original arena registration order.

        ``DocsSystem.resume`` re-registers tasks in this order, so the
        journal's persisted arena rows stay valid across restarts.
        """
        rows = self._conn.execute(
            "SELECT task_id, text, num_choices, domain_vector, "
            "ground_truth, true_domain, distractor FROM tasks "
            "ORDER BY ingest_seq, task_id"
        ).fetchall()
        return [self._row_to_task(row) for row in rows]

    def mark_golden(self, task_ids: Sequence[int]) -> None:
        """Record the golden-task set (tasks with known ground truth)."""
        for task_id in task_ids:
            if self.task(task_id).ground_truth is None:
                raise ValidationError(
                    f"golden task {task_id} has no ground truth"
                )
        with self._conn:
            self._conn.execute("UPDATE tasks SET golden_rank = NULL")
            self._conn.executemany(
                "UPDATE tasks SET golden_rank = ? WHERE task_id = ?",
                [(rank, tid) for rank, tid in enumerate(task_ids)],
            )

    @property
    def golden_ids(self) -> List[int]:
        """Ids of the golden tasks (selection order)."""
        rows = self._conn.execute(
            "SELECT task_id FROM tasks WHERE golden_rank IS NOT NULL "
            "ORDER BY golden_rank"
        ).fetchall()
        return [tid for (tid,) in rows]

    def __len__(self) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM tasks"
        ).fetchone()
        return int(count)


class SqliteWorkerQualityStore:
    """Durable worker model with the WorkerQualityStore interface.

    Persists one row per (worker, domain) carrying the Theorem 1
    statistics; the merge runs as an upsert inside a transaction.

    Args:
        num_domains: m, the taxonomy size.
        path: SQLite database path (or ``":memory:"``).
        default_quality: quality reported for unknown workers/domains.
    """

    def __init__(
        self,
        num_domains: int,
        path: str = ":memory:",
        default_quality: float = 0.7,
    ):
        if num_domains <= 0:
            raise ValidationError("num_domains must be positive")
        if not 0.0 < default_quality < 1.0:
            raise ValidationError("default_quality must be in (0, 1)")
        self._m = num_domains
        self._default_quality = default_quality
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_WORKER_SCHEMA)
        self._conn.commit()

    @property
    def num_domains(self) -> int:
        """Taxonomy size m."""
        return self._m

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def known_workers(self) -> Iterable[str]:
        """Ids of workers with stored statistics."""
        rows = self._conn.execute(
            "SELECT DISTINCT worker_id FROM worker_stats"
        ).fetchall()
        return [w for (w,) in rows]

    def __contains__(self, worker_id: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM worker_stats WHERE worker_id = ? LIMIT 1",
            (worker_id,),
        ).fetchone()
        return row is not None

    def _fetch(self, worker_id: str) -> Optional[WorkerStats]:
        rows = self._conn.execute(
            "SELECT domain, quality, weight FROM worker_stats "
            "WHERE worker_id = ?",
            (worker_id,),
        ).fetchall()
        if not rows:
            return None
        quality = np.full(self._m, self._default_quality)
        weight = np.zeros(self._m)
        for domain, q, u in rows:
            if not 0 <= domain < self._m:
                raise ValidationError(
                    f"stored domain {domain} out of range for m={self._m}"
                )
            quality[domain] = q
            weight[domain] = u
        return WorkerStats(quality, weight)

    def get(self, worker_id: str) -> WorkerStats:
        """Stored stats for a worker.

        Raises:
            UnknownWorkerError: if the worker has no record.
        """
        stats = self._fetch(worker_id)
        if stats is None:
            raise UnknownWorkerError(worker_id)
        return stats

    def quality_or_default(self, worker_id: str) -> np.ndarray:
        """Quality vector with per-domain defaulting (zero weight)."""
        stats = self._fetch(worker_id)
        if stats is None:
            return np.full(self._m, self._default_quality)
        quality = stats.quality.copy()
        quality[stats.weight <= 0] = self._default_quality
        return quality

    def blended_quality(
        self, worker_id: str, pseudo_weight: float = 1.0
    ) -> np.ndarray:
        """Weight-shrunk quality (see the in-memory store's docstring)."""
        if pseudo_weight < 0:
            raise ValidationError("pseudo_weight must be non-negative")
        stats = self._fetch(worker_id)
        if stats is None:
            return np.full(self._m, self._default_quality)
        return (
            stats.quality * stats.weight
            + self._default_quality * pseudo_weight
        ) / (stats.weight + pseudo_weight)

    def set(
        self, worker_id: str, quality: np.ndarray, weight: np.ndarray
    ) -> None:
        """Overwrite a worker's stats."""
        quality, weight = self._validated(quality, weight)
        with self._conn:
            self._conn.execute(
                "DELETE FROM worker_stats WHERE worker_id = ?",
                (worker_id,),
            )
            self._conn.executemany(
                "INSERT INTO worker_stats "
                "(worker_id, domain, quality, weight) VALUES (?, ?, ?, ?)",
                [
                    (worker_id, k, float(quality[k]), float(weight[k]))
                    for k in range(self._m)
                ],
            )

    def merge(
        self, worker_id: str, quality: np.ndarray, weight: np.ndarray
    ) -> WorkerStats:
        """Theorem 1 update as a transactional upsert."""
        quality, weight = self._validated(quality, weight)
        existing = self._fetch(worker_id)
        if existing is None:
            merged = WorkerStats(quality.copy(), weight.copy())
        else:
            total = existing.weight + weight
            merged_quality = existing.quality.copy()
            mask = total > 0
            merged_quality[mask] = (
                existing.quality[mask] * existing.weight[mask]
                + quality[mask] * weight[mask]
            ) / total[mask]
            merged = WorkerStats(merged_quality, total)
        self.set(worker_id, merged.quality, merged.weight)
        return merged

    def initialize_from_golden(
        self,
        worker_id: str,
        golden_answers: Mapping[int, int],
        golden_truths: Mapping[int, int],
        domain_vectors: Mapping[int, np.ndarray],
        shrinkage: float = 1.0,
    ) -> WorkerStats:
        """Golden bootstrap, identical to the in-memory store's."""
        if shrinkage < 0:
            raise ValidationError("shrinkage must be non-negative")
        numerator = np.zeros(self._m)
        denominator = np.zeros(self._m)
        for task_id, choice in golden_answers.items():
            if task_id not in golden_truths:
                raise ValidationError(
                    f"golden task {task_id} has no recorded truth"
                )
            r = np.asarray(domain_vectors[task_id], dtype=float)
            correct = 1.0 if choice == golden_truths[task_id] else 0.0
            numerator += r * correct
            denominator += r
        quality = np.full(self._m, self._default_quality)
        mask = denominator > 0
        quality[mask] = (
            numerator[mask] + shrinkage * self._default_quality
        ) / (denominator[mask] + shrinkage)
        stats = WorkerStats(quality, denominator)
        self.set(worker_id, stats.quality, stats.weight)
        return stats

    def snapshot(self) -> Dict[str, WorkerStats]:
        """All stored stats (deep copies)."""
        return {
            worker_id: self.get(worker_id)
            for worker_id in self.known_workers()
        }

    def _validated(
        self, quality: np.ndarray, weight: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        quality = np.asarray(quality, dtype=float)
        weight = np.asarray(weight, dtype=float)
        if quality.shape != (self._m,) or weight.shape != (self._m,):
            raise ValidationError(
                f"quality/weight must have shape ({self._m},)"
            )
        if np.any(weight < 0):
            raise ValidationError("weights must be non-negative")
        return quality, weight
