"""SQLite-backed storage: durable tables for answers and worker stats.

Figure 1 shows DOCS persisting answers and worker statistics in a
database so that worker models survive across requesters and system
restarts. :mod:`repro.platform.storage` provides the in-memory tables
used by experiments; this module provides drop-in durable equivalents on
top of the standard library's ``sqlite3``:

- :class:`SqliteAnswerTable` — same interface as
  :class:`repro.platform.storage.AnswerTable`;
- :class:`SqliteSystemDatabase` — same interface as
  :class:`repro.platform.storage.SystemDatabase` (task catalogue +
  answers + golden registry), with the ingest plane's bulk
  ``add_tasks`` / ``add_answers`` running as single ``executemany``
  round-trips;
- :class:`SqliteWorkerQualityStore` — same interface as
  :class:`repro.core.quality_store.WorkerQualityStore`, persisting the
  (quality, weight) vectors of Theorem 1.

All accept a filesystem path or ``":memory:"``.
"""

from __future__ import annotations

import json
import logging
import sqlite3
import time
import zlib
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.core.arena import AnswerLogState, GroupState
from repro.core.types import Answer, Task
from repro.core.quality_store import WorkerStats, _blend
from repro.errors import (
    SchemaVersionError,
    UnknownTaskError,
    UnknownWorkerError,
    ValidationError,
)
from repro.platform import faults
from repro.platform.journal import AnswerJournal, JournaledAnswerTable
from repro.platform.retry import (
    DEFAULT_POLICY,
    RetryPolicy,
    apply_busy_timeout,
)

logger = logging.getLogger(__name__)

#: Layout version stamped into every durable file this module creates
#: (``repro_meta`` table). Bump it when the on-disk layout changes in a
#: way older readers would misdecode; opening a file stamped with a
#: NEWER version raises :class:`repro.errors.SchemaVersionError`
#: instead of crashing mid-decode. Files from before the stamp existed
#: are adopted as the current version in place.
#:
#: History:
#:
#: - 1 — initial stamped layout (journal + compacted snapshots).
#: - 2 — index-carrying snapshots: ``snapshot_answer_index`` rows fold
#:   into the snapshot checksum. A v1 reader would see such a snapshot
#:   as checksum-corrupt and (on a truncated journal) report the file
#:   as unrecoverable, so writing one stamps the file as v2 and older
#:   builds refuse it cleanly instead. Files that never carry an index
#:   snapshot stay readable either way.
SCHEMA_VERSION = 2

_META_SCHEMA = """
CREATE TABLE IF NOT EXISTS repro_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


def _check_schema_version(conn: sqlite3.Connection, path: str) -> None:
    """Stamp a new file / adopt a legacy one / refuse a newer one."""
    conn.executescript(_META_SCHEMA)
    row = conn.execute(
        "SELECT value FROM repro_meta WHERE key = 'schema_version'"
    ).fetchone()
    if row is None:
        conn.execute(
            "INSERT INTO repro_meta (key, value) VALUES "
            "('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
        conn.commit()
        return
    try:
        found = int(row[0])
    except (TypeError, ValueError):
        raise SchemaVersionError(path, -1, SCHEMA_VERSION) from None
    if found > SCHEMA_VERSION:
        raise SchemaVersionError(path, found, SCHEMA_VERSION)

_ANSWER_SCHEMA = """
CREATE TABLE IF NOT EXISTS answers (
    worker_id TEXT NOT NULL,
    task_id   INTEGER NOT NULL,
    choice    INTEGER NOT NULL,
    seq       INTEGER PRIMARY KEY AUTOINCREMENT,
    UNIQUE (worker_id, task_id)
);
CREATE INDEX IF NOT EXISTS idx_answers_task ON answers (task_id);
CREATE INDEX IF NOT EXISTS idx_answers_worker ON answers (worker_id);
"""

_TASK_SCHEMA = """
CREATE TABLE IF NOT EXISTS tasks (
    task_id       INTEGER PRIMARY KEY,
    text          TEXT NOT NULL,
    num_choices   INTEGER NOT NULL,
    domain_vector BLOB,
    ground_truth  INTEGER,
    true_domain   INTEGER,
    distractor    INTEGER,
    golden_rank   INTEGER,
    ingest_seq    INTEGER
);
"""

_WORKER_SCHEMA = """
CREATE TABLE IF NOT EXISTS worker_stats (
    worker_id TEXT NOT NULL,
    domain    INTEGER NOT NULL,
    quality   REAL NOT NULL,
    weight    REAL NOT NULL,
    PRIMARY KEY (worker_id, domain)
);
"""

_SNAPSHOT_SCHEMA = """
CREATE TABLE IF NOT EXISTS snapshot_meta (
    snap_id      INTEGER PRIMARY KEY,
    journal_seq  INTEGER NOT NULL,
    num_domains  INTEGER NOT NULL,
    rerun_cursor INTEGER NOT NULL,
    created_ts   REAL NOT NULL,
    checksum     INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS snapshot_groups (
    snap_id   INTEGER NOT NULL,
    ell       INTEGER NOT NULL,
    row_count INTEGER NOT NULL,
    R    BLOB NOT NULL,
    M    BLOB NOT NULL,
    S    BLOB NOT NULL,
    logN BLOB NOT NULL,
    H    BLOB NOT NULL,
    dirty BLOB NOT NULL,
    PRIMARY KEY (snap_id, ell)
);
CREATE TABLE IF NOT EXISTS snapshot_workers (
    snap_id      INTEGER NOT NULL,
    worker_id    TEXT NOT NULL,
    quality      BLOB,
    weight       BLOB,
    golden_quality BLOB,
    bootstrapped INTEGER NOT NULL,
    exported_quality BLOB,
    exported_weight  BLOB,
    PRIMARY KEY (snap_id, worker_id)
);
CREATE TABLE IF NOT EXISTS snapshot_answer_index (
    snap_id     INTEGER PRIMARY KEY,
    row_count   INTEGER NOT NULL,
    task_rows   BLOB NOT NULL,
    worker_rows BLOB NOT NULL,
    choices     BLOB NOT NULL,
    worker_ids  TEXT NOT NULL
);
"""


@dataclass
class CampaignSnapshot:
    """One serialised image of a campaign's hot state.

    Everything ``DocsSystem.resume`` would otherwise reconstruct by
    replaying the whole journal through the serving plane: the arena's
    choice-group buffers, the campaign worker model, the pristine
    golden-bootstrap qualities the full TI initialises from, the
    bootstrapped-worker set, the shared-store export baselines, and the
    rerun cursor. ``journal_seq`` is the watermark: every journal row
    with ``seq <= journal_seq`` is already baked into this state, so
    resume replays only the tail beyond it.

    Attributes:
        num_domains: taxonomy size m the buffers are shaped to.
        rerun_cursor: submissions since the last full-TI re-run.
        groups: choice count -> captured arena rows.
        workers: campaign worker-model stats by worker id.
        golden_qualities: worker id -> pristine golden-test quality.
        bootstrapped: workers that completed (or skipped) the pre-test.
        exported: worker id -> (quality, weight) last exported to a
            shared cross-campaign store (Theorem-1 delta baseline).
        answer_index: the ``AnswerLog``'s columnar answer arrays as of
            the watermark (schema v2). When present, resume installs
            them directly instead of re-reading the archived answer
            prefix (``committed_answers_through``) — the O(snapshot +
            tail) path. ``None`` in snapshots written with
            ``snapshot_carry_index=False`` and in pre-v2 files, where
            resume falls back to the archive scan.
        journal_seq: watermark; filled in by
            :meth:`SqliteSystemDatabase.write_snapshot`.
    """

    num_domains: int
    rerun_cursor: int
    groups: Dict[int, GroupState]
    workers: Dict[str, WorkerStats]
    golden_qualities: Dict[str, np.ndarray]
    bootstrapped: Set[str]
    exported: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )
    answer_index: Optional[AnswerLogState] = None
    journal_seq: int = -1


def _snapshot_crc(
    meta: Tuple[int, int, int],
    group_rows: Sequence[Tuple],
    worker_rows: Sequence[Tuple],
    index_row: Optional[Tuple] = None,
) -> int:
    """CRC-32 over a snapshot's logical content (order-normalised).

    ``index_row`` (the serialised answer-index columns, schema v2) only
    folds in when present, so v1 snapshots without one keep verifying
    against their stored checksum.
    """
    crc = zlib.crc32(repr(meta).encode("utf-8"))
    for row in group_rows:
        for part in row:
            if isinstance(part, (bytes, memoryview)):
                crc = zlib.crc32(bytes(part), crc)
            else:
                crc = zlib.crc32(repr(part).encode("utf-8"), crc)
    for row in worker_rows:
        for part in row:
            if isinstance(part, (bytes, memoryview)):
                crc = zlib.crc32(bytes(part), crc)
            elif part is None:
                crc = zlib.crc32(b"\x00none", crc)
            else:
                crc = zlib.crc32(repr(part).encode("utf-8"), crc)
    if index_row is not None:
        crc = zlib.crc32(b"\x00answer-index", crc)
        for part in index_row:
            if isinstance(part, (bytes, memoryview)):
                crc = zlib.crc32(bytes(part), crc)
            else:
                crc = zlib.crc32(repr(part).encode("utf-8"), crc)
    return crc


class SqliteAnswerTable:
    """Durable answers relation with the AnswerTable interface.

    Args:
        path: SQLite database path (or ``":memory:"``).
        conn: an existing connection to attach to instead of opening
            ``path`` (used by :class:`SqliteSystemDatabase` so tasks and
            answers share one database file and one transaction scope).
    """

    def __init__(
        self,
        path: str = ":memory:",
        conn: Optional[sqlite3.Connection] = None,
    ):
        self._conn = conn if conn is not None else sqlite3.connect(path)
        self._conn.executescript(_ANSWER_SCHEMA)
        self._conn.commit()
        #: Per-worker answered-task sets, mirroring the in-memory
        #: table's O(1) ``tasks_answered_by``. Populated lazily from the
        #: database (the file may pre-exist), then kept fresh on insert.
        #: This assumes the table object is the file's only *writer*
        #: while open — writes made through another connection are not
        #: reflected in already-hydrated sets.
        self._worker_tasks: Dict[str, Set[int]] = {}

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def insert(self, answer: Answer) -> None:
        """Append one answer.

        Raises:
            ValidationError: if this (worker, task) pair already exists
                (the paper's at-most-once constraint, enforced by the
                UNIQUE index).
        """
        try:
            self._conn.execute(
                "INSERT INTO answers (worker_id, task_id, choice) "
                "VALUES (?, ?, ?)",
                (answer.worker_id, answer.task_id, answer.choice),
            )
            self._conn.commit()
        except sqlite3.IntegrityError:
            raise ValidationError(
                f"worker {answer.worker_id} already answered task "
                f"{answer.task_id}"
            ) from None
        cached = self._worker_tasks.get(answer.worker_id)
        if cached is not None:
            cached.add(answer.task_id)

    def add_answers(self, answers: Sequence[Answer]) -> None:
        """Batch-append answers: one ``executemany`` round-trip.

        The enclosing transaction makes the batch atomic — a duplicate
        (worker, task) pair anywhere in it rolls the whole batch back.

        Raises:
            ValidationError: if any pair violates the at-most-once
                constraint.
        """
        try:
            with self._conn:
                self._conn.executemany(
                    "INSERT INTO answers (worker_id, task_id, choice) "
                    "VALUES (?, ?, ?)",
                    [(a.worker_id, a.task_id, a.choice) for a in answers],
                )
        except sqlite3.IntegrityError:
            raise ValidationError(
                "batch contains a (worker, task) pair that was already "
                "answered"
            ) from None
        for answer in answers:
            cached = self._worker_tasks.get(answer.worker_id)
            if cached is not None:
                cached.add(answer.task_id)

    def all(self) -> List[Answer]:
        """All answers in arrival order."""
        rows = self._conn.execute(
            "SELECT worker_id, task_id, choice FROM answers ORDER BY seq"
        ).fetchall()
        return [Answer(w, t, c) for w, t, c in rows]

    def for_task(self, task_id: int) -> List[Answer]:
        """The answer set V(i) of one task (arrival order)."""
        rows = self._conn.execute(
            "SELECT worker_id, task_id, choice FROM answers "
            "WHERE task_id = ? ORDER BY seq",
            (task_id,),
        ).fetchall()
        return [Answer(w, t, c) for w, t, c in rows]

    def for_worker(self, worker_id: str) -> List[Answer]:
        """The answered set T(w) of one worker (arrival order)."""
        rows = self._conn.execute(
            "SELECT worker_id, task_id, choice FROM answers "
            "WHERE worker_id = ? ORDER BY seq",
            (worker_id,),
        ).fetchall()
        return [Answer(w, t, c) for w, t, c in rows]

    def tasks_answered_by(self, worker_id: str) -> Set[int]:
        """Task ids answered by a worker.

        Amortised O(1): the first call per worker hydrates a persistent
        set from the database; later calls return it directly (inserts
        through *this* object keep it fresh — see the single-writer
        note on ``_worker_tasks``). The set is live — treat it as
        read-only.
        """
        cached = self._worker_tasks.get(worker_id)
        if cached is None:
            rows = self._conn.execute(
                "SELECT task_id FROM answers WHERE worker_id = ?",
                (worker_id,),
            ).fetchall()
            cached = {t for (t,) in rows}
            self._worker_tasks[worker_id] = cached
        return cached

    def count_for_task(self, task_id: int) -> int:
        """|V(i)| for one task."""
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM answers WHERE task_id = ?",
            (task_id,),
        ).fetchone()
        return int(count)

    def has_answered(self, worker_id: str, task_id: int) -> bool:
        """Integrity-check helper."""
        row = self._conn.execute(
            "SELECT 1 FROM answers WHERE worker_id = ? AND task_id = ?",
            (worker_id, task_id),
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM answers"
        ).fetchone()
        return int(count)


def _encode_vector(vector: Optional[np.ndarray]) -> Optional[bytes]:
    if vector is None:
        return None
    return np.asarray(vector, dtype=np.float64).tobytes()


def _decode_vector(blob: Optional[bytes]) -> Optional[np.ndarray]:
    if blob is None:
        return None
    return np.frombuffer(blob, dtype=np.float64).copy()


def _decode_matrix(blob: bytes, shape: Tuple[int, ...]) -> np.ndarray:
    """Decode a float64 blob into the given shape (raises on mismatch)."""
    return np.frombuffer(blob, dtype=np.float64).reshape(shape).copy()


class SqliteSystemDatabase:
    """Durable task catalogue + answers + golden registry.

    A drop-in :class:`repro.platform.storage.SystemDatabase` with all
    tables in one SQLite file; the ingest plane's bulk ``add_tasks`` /
    ``add_answers`` each run as a single ``executemany`` round-trip
    inside one transaction. ``behavior_domains`` (a simulation-only
    field) is not persisted.

    Two answer-plane modes:

    - ``journal_batch_size=None`` (default): answers go straight to the
      durable ``answers`` relation (:class:`SqliteAnswerTable`), one
      commit per insert — the drop-in analytical mode.
    - ``journal_batch_size=N``: answers ride the crash-safe write-behind
      :class:`repro.platform.journal.AnswerJournal` (``answers_log``
      table, flushed every N events / on :meth:`checkpoint` /
      :meth:`close`), with serving-path reads answered from an in-memory
      index (:class:`repro.platform.journal.JournaledAnswerTable`).
      This is the mode ``DocsSystem(storage="sqlite")`` runs campaigns
      on; ``DocsSystem.resume`` replays the journal.

    Files created before the journal era are migrated in place: the
    ``ingest_seq`` column (arena registration order, needed for replay)
    is added when missing and backfilled in task-id order.

    Args:
        path: SQLite database path (or ``":memory:"``).
        journal_batch_size: enable journaled answer mode with this
            flush threshold; ``None`` keeps the direct-write mode.
        busy_timeout_ms: ``PRAGMA busy_timeout`` for the connection —
            SQLite spin-waits this long on a held lock before
            surfacing ``database is locked`` to the retry layer.
        retry: backoff policy applied to journal flush commits under
            lock contention; defaults to
            :data:`repro.platform.retry.DEFAULT_POLICY`.

    Raises:
        SchemaVersionError: if the file was written by a newer schema
            version than this build supports.
    """

    def __init__(
        self,
        path: str = ":memory:",
        journal_batch_size: Optional[int] = None,
        busy_timeout_ms: int = 5000,
        retry: Optional[RetryPolicy] = None,
    ):
        self.path = path
        self._retry = retry if retry is not None else DEFAULT_POLICY
        faults.fire("db.connect")
        self._conn = sqlite3.connect(
            path, timeout=busy_timeout_ms / 1000.0
        )
        apply_busy_timeout(self._conn, busy_timeout_ms)
        try:
            _check_schema_version(self._conn, path)
        except SchemaVersionError:
            self._conn.close()
            raise
        self._conn.executescript(_TASK_SCHEMA)
        self._conn.executescript(_SNAPSHOT_SCHEMA)
        self._migrate()
        self._conn.commit()
        self._closed = False
        self.journal: Optional["AnswerJournal"] = None
        if journal_batch_size is None:
            self.answers = SqliteAnswerTable(conn=self._conn)
        else:
            # Write-behind mode trades per-commit fsyncs for the
            # checkpoint contract: WAL keeps every batch atomic (a torn
            # batch is impossible), synchronous=NORMAL defers the fsync
            # to WAL checkpoints — an OS-level crash can roll the file
            # back to an earlier *complete* batch, never a partial one,
            # which is exactly the loss window the journal documents.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self.journal = AnswerJournal(
                self._conn,
                batch_size=journal_batch_size,
                retry=retry,
            )
            self.answers = JournaledAnswerTable(self.journal)

    def _migrate(self) -> None:
        """Bring a pre-existing file up to the current schema."""
        columns = {
            row[1]
            for row in self._conn.execute("PRAGMA table_info(tasks)")
        }
        if "ingest_seq" not in columns:
            self._conn.execute(
                "ALTER TABLE tasks ADD COLUMN ingest_seq INTEGER"
            )
        # Backfill rows that predate the column (or were written by the
        # plain-storage path) with dense task-id-ordered ranks, so
        # replay has a deterministic registration order to rebuild.
        (base,) = self._conn.execute(
            "SELECT COALESCE(MAX(ingest_seq), -1) FROM tasks"
        ).fetchone()
        unranked = self._conn.execute(
            "SELECT task_id FROM tasks WHERE ingest_seq IS NULL "
            "ORDER BY task_id"
        ).fetchall()
        if unranked:
            self._conn.executemany(
                "UPDATE tasks SET ingest_seq = ? WHERE task_id = ?",
                [
                    (base + 1 + offset, task_id)
                    for offset, (task_id,) in enumerate(unranked)
                ],
            )

    def checkpoint(self) -> int:
        """Flush the write-behind journal (no-op in direct mode).

        Also runs ``PRAGMA optimize`` so long-lived campaign files keep
        fresh planner statistics for the analytics covering indexes —
        the pragma re-analyzes only when SQLite judges it worthwhile,
        so per-checkpoint cost stays negligible.

        Returns:
            Rows made durable by this call.
        """
        if self.journal is None:
            return 0
        flushed = self.journal.flush()
        self._conn.execute("PRAGMA optimize")
        return flushed

    # -- compacted snapshots ---------------------------------------------

    def write_snapshot(self, snapshot: CampaignSnapshot) -> int:
        """Persist a hot-state snapshot atomically with a journal flush.

        One transaction writes the pending journal tail and the
        snapshot covering it, then drops every older snapshot (only the
        newest is kept — the compaction policy). A crash can therefore
        never leave a snapshot that claims events the journal does not
        hold, and the file never accumulates stale images.

        Args:
            snapshot: the payload; its ``journal_seq`` is set to the
                newest durable seq as of this transaction.

        Returns:
            Journal rows made durable by the embedded flush.

        Raises:
            ValidationError: if the database is not in journaled mode.
        """
        if self.journal is None:
            raise ValidationError(
                "snapshots require the journaled answer mode; open the "
                "database with journal_batch_size=N"
            )
        # Serialise everything BEFORE the transaction so only sqlite
        # statements run inside it, and capture the journal cursors so
        # a rollback cannot strand the write-behind buffer ahead of
        # the file (the pending events would be silently lost).
        cursor_state = self.journal.cursor_state()
        # The watermark after the embedded flush: every pending event
        # gets a seq and commits with this snapshot.
        snapshot.journal_seq = (
            self.journal.last_committed_seq + self.journal.pending
        )
        group_rows = [
            (
                ell,
                state.count,
                state.R.astype(np.float64, copy=False).tobytes(),
                state.M.astype(np.float64, copy=False).tobytes(),
                state.S.astype(np.float64, copy=False).tobytes(),
                state.logN.astype(np.float64, copy=False).tobytes(),
                state.H.astype(np.float64, copy=False).tobytes(),
                state.dirty.astype(np.uint8).tobytes(),
            )
            for ell, state in sorted(snapshot.groups.items())
        ]
        worker_ids = sorted(
            set(snapshot.workers)
            | set(snapshot.golden_qualities)
            | set(snapshot.bootstrapped)
            | set(snapshot.exported)
        )
        worker_rows = []
        for worker_id in worker_ids:
            stats = snapshot.workers.get(worker_id)
            golden = snapshot.golden_qualities.get(worker_id)
            exported = snapshot.exported.get(worker_id)
            worker_rows.append(
                (
                    worker_id,
                    _encode_vector(stats.quality if stats else None),
                    _encode_vector(stats.weight if stats else None),
                    _encode_vector(golden),
                    int(worker_id in snapshot.bootstrapped),
                    _encode_vector(exported[0] if exported else None),
                    _encode_vector(exported[1] if exported else None),
                )
            )
        index_row = None
        if snapshot.answer_index is not None:
            index = snapshot.answer_index
            index_row = (
                int(index.task_rows.shape[0]),
                np.ascontiguousarray(
                    index.task_rows, dtype=np.int64
                ).tobytes(),
                np.ascontiguousarray(
                    index.worker_rows, dtype=np.int64
                ).tobytes(),
                np.ascontiguousarray(
                    index.choices, dtype=np.int64
                ).tobytes(),
                json.dumps(list(index.worker_ids)),
            )
        checksum = _snapshot_crc(
            (
                snapshot.journal_seq,
                snapshot.num_domains,
                snapshot.rerun_cursor,
            ),
            group_rows,
            worker_rows,
            index_row,
        )
        def attempt() -> int:
            try:
                faults.fire("snapshot.write.post-crc")
                with self._conn:
                    flushed = self.journal.flush_in_transaction()
                    (prev,) = self._conn.execute(
                        "SELECT COALESCE(MAX(snap_id), 0) "
                        "FROM snapshot_meta"
                    ).fetchone()
                    snap_id = int(prev) + 1
                    for table in (
                        "snapshot_meta", "snapshot_groups",
                        "snapshot_workers", "snapshot_answer_index",
                    ):
                        self._conn.execute(f"DELETE FROM {table}")
                    self._conn.execute(
                        "INSERT INTO snapshot_meta (snap_id, "
                        "journal_seq, num_domains, rerun_cursor, "
                        "created_ts, checksum) VALUES (?, ?, ?, ?, ?, ?)",
                        (
                            snap_id,
                            snapshot.journal_seq,
                            snapshot.num_domains,
                            snapshot.rerun_cursor,
                            time.time(),
                            checksum,
                        ),
                    )
                    faults.fire("snapshot.write.mid-transaction")
                    self._conn.executemany(
                        "INSERT INTO snapshot_groups (snap_id, ell, "
                        "row_count, R, M, S, logN, H, dirty) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        [(snap_id,) + row for row in group_rows],
                    )
                    self._conn.executemany(
                        "INSERT INTO snapshot_workers (snap_id, "
                        "worker_id, quality, weight, golden_quality, "
                        "bootstrapped, exported_quality, "
                        "exported_weight) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        [(snap_id,) + row for row in worker_rows],
                    )
                    if index_row is not None:
                        self._conn.execute(
                            "INSERT INTO snapshot_answer_index "
                            "(snap_id, row_count, task_rows, "
                            "worker_rows, choices, worker_ids) "
                            "VALUES (?, ?, ?, ?, ?, ?)",
                            (snap_id,) + index_row,
                        )
                        # An index-carrying snapshot folds into the
                        # checksum, which a v1 reader would take for
                        # corruption — stamp the file v2 in the same
                        # transaction so older builds refuse it
                        # cleanly instead (see SCHEMA_VERSION).
                        self._conn.execute(
                            "INSERT OR REPLACE INTO repro_meta "
                            "(key, value) VALUES "
                            "('schema_version', ?)",
                            (str(SCHEMA_VERSION),),
                        )
                    return flushed
            except BaseException:
                # Roll the write-behind cursors back in step with the
                # file whatever unwound the transaction — a sqlite
                # error, lock contention, or an injected crash
                # mid-transaction — so a retry (or a later flush)
                # replays the identical pending events.
                self.journal.restore_cursor_state(cursor_state)
                raise

        flushed = self._retry.run(attempt, description="snapshot write")
        faults.fire("snapshot.write.post-commit")
        return flushed

    def load_snapshot(self) -> Optional[CampaignSnapshot]:
        """Load the newest snapshot, or ``None`` when unusable.

        A snapshot is an optimisation, never a requirement: a missing,
        truncated, or checksum-failing snapshot logs a warning and
        returns ``None`` so the caller falls back to full journal
        replay (the journal itself is validated separately).
        """
        meta = self._conn.execute(
            "SELECT snap_id, journal_seq, num_domains, rerun_cursor, "
            "checksum FROM snapshot_meta "
            "ORDER BY snap_id DESC LIMIT 1"
        ).fetchone()
        if meta is None:
            return None
        snap_id, journal_seq, m, rerun_cursor, checksum = meta
        try:
            group_rows = self._conn.execute(
                "SELECT ell, row_count, R, M, S, logN, H, dirty "
                "FROM snapshot_groups WHERE snap_id = ? ORDER BY ell",
                (snap_id,),
            ).fetchall()
            worker_rows = self._conn.execute(
                "SELECT worker_id, quality, weight, golden_quality, "
                "bootstrapped, exported_quality, exported_weight "
                "FROM snapshot_workers WHERE snap_id = ? "
                "ORDER BY worker_id",
                (snap_id,),
            ).fetchall()
            index_row = self._conn.execute(
                "SELECT row_count, task_rows, worker_rows, choices, "
                "worker_ids FROM snapshot_answer_index "
                "WHERE snap_id = ?",
                (snap_id,),
            ).fetchone()
            expected = _snapshot_crc(
                (journal_seq, m, rerun_cursor),
                group_rows,
                worker_rows,
                index_row,
            )
            if expected != checksum:
                raise ValidationError(
                    f"snapshot {snap_id} fails its checksum"
                )
            answer_index: Optional[AnswerLogState] = None
            if index_row is not None:
                count, task_rows, worker_rows_blob, choices, ids = (
                    index_row
                )
                answer_index = AnswerLogState(
                    task_rows=np.frombuffer(
                        task_rows, dtype=np.int64
                    ).reshape((count,)).copy(),
                    worker_rows=np.frombuffer(
                        worker_rows_blob, dtype=np.int64
                    ).reshape((count,)).copy(),
                    choices=np.frombuffer(
                        choices, dtype=np.int64
                    ).reshape((count,)).copy(),
                    worker_ids=list(json.loads(ids)),
                )
            groups: Dict[int, GroupState] = {}
            for ell, count, R, M, S, logN, H, dirty in group_rows:
                groups[ell] = GroupState(
                    ell=ell,
                    count=count,
                    R=_decode_matrix(R, (count, m)),
                    M=_decode_matrix(M, (count, m, ell)),
                    S=_decode_matrix(S, (count, ell)),
                    logN=_decode_matrix(logN, (count, m, ell)),
                    H=_decode_matrix(H, (count,)),
                    dirty=np.frombuffer(
                        dirty, dtype=np.uint8
                    ).astype(bool).reshape((count,)),
                )
            workers: Dict[str, WorkerStats] = {}
            golden: Dict[str, np.ndarray] = {}
            bootstrapped: Set[str] = set()
            exported: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
            for (
                worker_id, quality, weight, golden_quality,
                was_bootstrapped, exported_q, exported_u,
            ) in worker_rows:
                if quality is not None:
                    workers[worker_id] = WorkerStats(
                        _decode_matrix(quality, (m,)),
                        _decode_matrix(weight, (m,)),
                    )
                if golden_quality is not None:
                    golden[worker_id] = _decode_matrix(
                        golden_quality, (m,)
                    )
                if was_bootstrapped:
                    bootstrapped.add(worker_id)
                if exported_q is not None:
                    exported[worker_id] = (
                        _decode_matrix(exported_q, (m,)),
                        _decode_matrix(exported_u, (m,)),
                    )
        except (ValidationError, ValueError) as exc:
            # Exactly the decode failure modes a corrupt snapshot can
            # produce: the local checksum ValidationError above, and
            # numpy's ValueError on a blob whose size disagrees with
            # its recorded shape. Anything else is a real bug and must
            # propagate — a broad guard here once swallowed the cause.
            logger.warning(
                "snapshot %s at %r is unusable (%s: %s); falling back "
                "to full journal replay",
                snap_id, self.path, type(exc).__name__, exc,
                exc_info=True,
            )
            return None
        return CampaignSnapshot(
            num_domains=m,
            rerun_cursor=rerun_cursor,
            groups=groups,
            workers=workers,
            golden_qualities=golden,
            bootstrapped=bootstrapped,
            exported=exported,
            answer_index=answer_index,
            journal_seq=journal_seq,
        )

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has already run."""
        return self._closed

    def close(self) -> None:
        """Checkpoint, then close the connection (idempotent).

        Direct-write mode gets its ``PRAGMA optimize`` here (the
        journaled mode's runs inside :meth:`checkpoint`), so every
        campaign file leaves with current planner statistics.
        """
        if self._closed:
            return
        self.checkpoint()
        if self.journal is None:
            self._conn.execute("PRAGMA optimize")
        self._conn.close()
        self._closed = True

    @staticmethod
    def _rows_to_tasks(rows: Sequence[Tuple]) -> List[Task]:
        """Decode catalogue rows in bulk.

        Values re-entering from the catalogue already passed the
        ``Task`` constructor's validation when they were stored, so the
        per-task numpy checks are replaced by one vectorised
        Definition-2 check per vector length — at resume scale (the
        whole catalogue in one call) the per-task path dominated the
        load time.
        """
        tasks: List[Task] = []
        by_length: Dict[int, List[int]] = {}
        for row in rows:
            task_id, text, ell, r_blob, truth, domain, distractor = row
            # Scalar sanity stays per-row (cheap int compares); only
            # the numpy distribution check is batched below.
            if ell < 2 or (
                truth is not None and not 1 <= truth <= ell
            ) or (
                distractor is not None and not 1 <= distractor <= ell
            ):
                raise ValidationError(
                    f"task {task_id}: stored row is malformed "
                    f"(num_choices={ell}, ground_truth={truth}, "
                    f"distractor={distractor}); the file was modified "
                    "outside the system"
                )
            vector = _decode_vector(r_blob)
            if vector is not None:
                by_length.setdefault(vector.shape[0], []).append(
                    len(tasks)
                )
            tasks.append(
                Task.rehydrate(
                    task_id, text, ell, vector, truth, domain, distractor
                )
            )
        for indices in by_length.values():
            stacked = np.stack(
                [tasks[idx].domain_vector for idx in indices]
            )
            bad = ~(
                (stacked >= -1e-6).all(axis=1)
                & np.isclose(stacked.sum(axis=1), 1.0, atol=1e-6)
            )
            if bad.any():
                offender = tasks[indices[int(np.flatnonzero(bad)[0])]]
                raise ValidationError(
                    f"task {offender.task_id}: stored domain vector is "
                    "not a probability distribution; the file was "
                    "modified outside the system"
                )
        return tasks

    @classmethod
    def _row_to_task(cls, row: Tuple) -> Task:
        return cls._rows_to_tasks([row])[0]

    def insert_task(self, task: Task) -> None:
        """Register a task.

        Raises:
            ValidationError: on duplicate ids.
        """
        self.add_tasks([task])

    def insert_tasks(self, tasks: Iterable[Task]) -> None:
        """Register many tasks."""
        self.add_tasks(list(tasks))

    def add_tasks(self, tasks: Sequence[Task]) -> None:
        """Batch-register tasks: one ``executemany`` round-trip.

        Atomic: a duplicate id anywhere in the batch (against the
        catalogue or within the batch) rolls the whole batch back.

        Raises:
            ValidationError: naming the first offending task id.
        """
        ids = [task.task_id for task in tasks]
        seen: Set[int] = set()
        for task_id in ids:
            if task_id in seen:
                raise ValidationError(
                    f"duplicate task id {task_id}; task ids must be "
                    "unique — deduplicate the batch before storing it"
                )
            seen.add(task_id)
        (base,) = self._conn.execute(
            "SELECT COALESCE(MAX(ingest_seq), -1) FROM tasks"
        ).fetchone()
        try:
            with self._conn:
                self._conn.executemany(
                    "INSERT INTO tasks (task_id, text, num_choices, "
                    "domain_vector, ground_truth, true_domain, distractor, "
                    "ingest_seq) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    [
                        (
                            t.task_id,
                            t.text,
                            t.num_choices,
                            _encode_vector(t.domain_vector),
                            t.ground_truth,
                            t.true_domain,
                            t.distractor,
                            base + 1 + offset,
                        )
                        for offset, t in enumerate(tasks)
                    ],
                )
        except sqlite3.IntegrityError as exc:
            existing = {
                tid for (tid,) in self._conn.execute(
                    "SELECT task_id FROM tasks"
                ).fetchall()
            }
            offender = next(
                (tid for tid in ids if tid in existing), None
            )
            if offender is not None:
                raise ValidationError(
                    f"duplicate task id {offender}; it is already in "
                    "the catalogue — pass only new tasks, or use "
                    "fresh ids"
                ) from None
            raise ValidationError(
                f"task batch violates a storage constraint: {exc}"
            ) from None

    def remove_tasks(self, task_ids: Sequence[int]) -> None:
        """Drop tasks from the catalogue in one transaction (the ingest
        plane's rollback hook — see
        :meth:`repro.platform.storage.SystemDatabase.remove_tasks`)."""
        with self._conn:
            self._conn.executemany(
                "DELETE FROM tasks WHERE task_id = ?",
                [(task_id,) for task_id in task_ids],
            )

    def add_answers(self, answers: Sequence[Answer]) -> None:
        """Batch-append answers (see :meth:`SqliteAnswerTable.add_answers`)."""
        self.answers.add_answers(answers)

    def task(self, task_id: int) -> Task:
        """Fetch a task.

        Raises:
            UnknownTaskError: if missing.
        """
        row = self._conn.execute(
            "SELECT task_id, text, num_choices, domain_vector, "
            "ground_truth, true_domain, distractor FROM tasks "
            "WHERE task_id = ?",
            (task_id,),
        ).fetchone()
        if row is None:
            raise UnknownTaskError(task_id)
        return self._row_to_task(row)

    def tasks(self) -> List[Task]:
        """All tasks, id-ordered."""
        rows = self._conn.execute(
            "SELECT task_id, text, num_choices, domain_vector, "
            "ground_truth, true_domain, distractor FROM tasks "
            "ORDER BY task_id"
        ).fetchall()
        return self._rows_to_tasks(rows)

    def task_ids(self) -> List[int]:
        """All task ids, ordered."""
        rows = self._conn.execute(
            "SELECT task_id FROM tasks ORDER BY task_id"
        ).fetchall()
        return [tid for (tid,) in rows]

    def tasks_in_ingest_order(self) -> List[Task]:
        """All tasks in their original arena registration order.

        ``DocsSystem.resume`` re-registers tasks in this order, so the
        journal's persisted arena rows stay valid across restarts.
        """
        rows = self._conn.execute(
            "SELECT task_id, text, num_choices, domain_vector, "
            "ground_truth, true_domain, distractor FROM tasks "
            "ORDER BY ingest_seq, task_id"
        ).fetchall()
        return self._rows_to_tasks(rows)

    def mark_golden(self, task_ids: Sequence[int]) -> None:
        """Record the golden-task set (tasks with known ground truth)."""
        for task_id in task_ids:
            if self.task(task_id).ground_truth is None:
                raise ValidationError(
                    f"golden task {task_id} has no ground truth"
                )
        with self._conn:
            self._conn.execute("UPDATE tasks SET golden_rank = NULL")
            self._conn.executemany(
                "UPDATE tasks SET golden_rank = ? WHERE task_id = ?",
                [(rank, tid) for rank, tid in enumerate(task_ids)],
            )

    @property
    def golden_ids(self) -> List[int]:
        """Ids of the golden tasks (selection order)."""
        rows = self._conn.execute(
            "SELECT task_id FROM tasks WHERE golden_rank IS NOT NULL "
            "ORDER BY golden_rank"
        ).fetchall()
        return [tid for (tid,) in rows]

    def __len__(self) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM tasks"
        ).fetchone()
        return int(count)


class SqliteWorkerQualityStore:
    """Durable worker model with the WorkerQualityStore interface.

    Persists one row per (worker, domain) carrying the Theorem 1
    statistics; the merge runs as an upsert inside a transaction.

    Args:
        num_domains: m, the taxonomy size.
        path: SQLite database path (or ``":memory:"``).
        default_quality: quality reported for unknown workers/domains.
        busy_timeout_ms: ``PRAGMA busy_timeout`` for the connection —
            the store is the cross-campaign contention hot spot, so
            short lock windows are absorbed below the statement.
        retry: backoff policy for :meth:`apply_batch_delta` under lock
            contention; defaults to
            :data:`repro.platform.retry.DEFAULT_POLICY`.

    Raises:
        SchemaVersionError: if the file was written by a newer schema
            version than this build supports.
    """

    def __init__(
        self,
        num_domains: int,
        path: str = ":memory:",
        default_quality: float = 0.7,
        busy_timeout_ms: int = 5000,
        retry: Optional[RetryPolicy] = None,
    ):
        if num_domains <= 0:
            raise ValidationError("num_domains must be positive")
        if not 0.0 < default_quality < 1.0:
            raise ValidationError("default_quality must be in (0, 1)")
        self._m = num_domains
        self._default_quality = default_quality
        self._retry = retry if retry is not None else DEFAULT_POLICY
        faults.fire("db.connect")
        self._conn = sqlite3.connect(
            path, timeout=busy_timeout_ms / 1000.0
        )
        apply_busy_timeout(self._conn, busy_timeout_ms)
        try:
            _check_schema_version(self._conn, path)
        except SchemaVersionError:
            self._conn.close()
            raise
        self._conn.executescript(_WORKER_SCHEMA)
        self._conn.commit()

    @property
    def num_domains(self) -> int:
        """Taxonomy size m."""
        return self._m

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def known_workers(self) -> Iterable[str]:
        """Ids of workers with stored statistics."""
        rows = self._conn.execute(
            "SELECT DISTINCT worker_id FROM worker_stats"
        ).fetchall()
        return [w for (w,) in rows]

    def __contains__(self, worker_id: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM worker_stats WHERE worker_id = ? LIMIT 1",
            (worker_id,),
        ).fetchone()
        return row is not None

    def _fetch(self, worker_id: str) -> Optional[WorkerStats]:
        rows = self._conn.execute(
            "SELECT domain, quality, weight FROM worker_stats "
            "WHERE worker_id = ?",
            (worker_id,),
        ).fetchall()
        if not rows:
            return None
        quality = np.full(self._m, self._default_quality)
        weight = np.zeros(self._m)
        for domain, q, u in rows:
            if not 0 <= domain < self._m:
                raise ValidationError(
                    f"stored domain {domain} out of range for m={self._m}"
                )
            quality[domain] = q
            weight[domain] = u
        return WorkerStats(quality, weight)

    def get(self, worker_id: str) -> WorkerStats:
        """Stored stats for a worker.

        Raises:
            UnknownWorkerError: if the worker has no record.
        """
        stats = self._fetch(worker_id)
        if stats is None:
            raise UnknownWorkerError(worker_id)
        return stats

    def quality_or_default(self, worker_id: str) -> np.ndarray:
        """Quality vector with per-domain defaulting (zero weight)."""
        stats = self._fetch(worker_id)
        if stats is None:
            return np.full(self._m, self._default_quality)
        quality = stats.quality.copy()
        quality[stats.weight <= 0] = self._default_quality
        return quality

    def blended_quality(
        self, worker_id: str, pseudo_weight: float = 1.0
    ) -> np.ndarray:
        """Weight-shrunk quality (see the in-memory store's docstring);
        zero-total domains report the default quality."""
        if pseudo_weight < 0:
            raise ValidationError("pseudo_weight must be non-negative")
        stats = self._fetch(worker_id)
        if stats is None:
            return np.full(self._m, self._default_quality)
        return _blend(
            stats.quality, stats.weight, pseudo_weight, self._default_quality
        )

    def set(
        self, worker_id: str, quality: np.ndarray, weight: np.ndarray
    ) -> None:
        """Overwrite a worker's stats."""
        quality, weight = self._validated(quality, weight)
        with self._conn:
            self._conn.execute(
                "DELETE FROM worker_stats WHERE worker_id = ?",
                (worker_id,),
            )
            self._conn.executemany(
                "INSERT INTO worker_stats "
                "(worker_id, domain, quality, weight) VALUES (?, ?, ?, ?)",
                [
                    (worker_id, k, float(quality[k]), float(weight[k]))
                    for k in range(self._m)
                ],
            )

    def merge(
        self, worker_id: str, quality: np.ndarray, weight: np.ndarray
    ) -> WorkerStats:
        """Theorem 1 update as a transactional upsert."""
        quality, weight = self._validated(quality, weight)
        existing = self._fetch(worker_id)
        if existing is None:
            merged = WorkerStats(quality.copy(), weight.copy())
        else:
            total = existing.weight + weight
            merged_quality = existing.quality.copy()
            mask = total > 0
            merged_quality[mask] = (
                existing.quality[mask] * existing.weight[mask]
                + quality[mask] * weight[mask]
            ) / total[mask]
            merged = WorkerStats(merged_quality, total)
        self.set(worker_id, merged.quality, merged.weight)
        return merged

    def apply_batch_delta(
        self, worker_id: str, delta_mass: np.ndarray,
        delta_weight: np.ndarray,
    ) -> WorkerStats:
        """Mass-form Theorem 1 update, folded atomically *in SQL*.

        Many campaigns may export into one shared file concurrently, so
        the fold must not be a fetch-compute-set round trip (two
        connections would read the same base and the second write would
        erase the first). Each domain runs as **one**
        ``INSERT ... ON CONFLICT DO UPDATE`` whose update arm computes
        ``(q·u + Δmass) / (u + Δu)`` from the committed row under the
        write lock — SQLite serialises writers, so interleaved exports
        from concurrent campaigns fold without losing updates and
        without the insert-then-update double round-trip per domain.
        The result is clamped into [0, 1] like the in-memory fold; a
        zero-weight fold reports the default quality.

        The transaction runs under the store's retry policy: a
        ``database is locked`` from a concurrently exporting campaign
        (or an armed ``worker_store.apply_delta`` fault) is backed off
        and the whole fold re-run — the SQL fold is idempotent per
        transaction, so a retry replays identical work against the
        committed state.
        """
        delta_mass = np.asarray(delta_mass, dtype=float)
        delta_weight = np.asarray(delta_weight, dtype=float)
        if delta_mass.shape != (self._m,) or (
            delta_weight.shape != (self._m,)
        ):
            raise ValidationError(
                f"delta_mass/delta_weight must have shape ({self._m},)"
            )
        if np.any(delta_weight < 0):
            raise ValidationError("delta weights must be non-negative")

        def attempt() -> None:
            with self._conn:
                faults.fire("worker_store.apply_delta")
                self._run_fold(worker_id, delta_mass, delta_weight)

        self._retry.run(attempt, description="worker store delta")
        return self.get(worker_id)

    def _run_fold(
        self, worker_id: str, delta_mass: np.ndarray,
        delta_weight: np.ndarray,
    ) -> None:
        # ?3 = Δmass, ?4 = Δu, ?5 = default quality. The insert arm
        # is the fold against an implicit (default, 0) base; the
        # conflict arm folds against the committed row.
        self._conn.executemany(
            "INSERT INTO worker_stats "
            "(worker_id, domain, quality, weight) VALUES "
            "(?1, ?2, MAX(0.0, MIN(1.0, "
            "  CASE WHEN ?4 > 0 THEN ?3 / ?4 ELSE ?5 END)), ?4) "
            "ON CONFLICT (worker_id, domain) DO UPDATE SET "
            "quality = MAX(0.0, MIN(1.0, "
            "  CASE WHEN worker_stats.weight + ?4 > 0 "
            "  THEN (worker_stats.quality * worker_stats.weight + ?3)"
            "       / (worker_stats.weight + ?4) "
            "  ELSE ?5 END)), "
            "weight = worker_stats.weight + ?4",
            [
                (
                    worker_id,
                    domain,
                    float(delta_mass[domain]),
                    float(delta_weight[domain]),
                    self._default_quality,
                )
                for domain in range(self._m)
            ],
        )

    def initialize_from_golden(
        self,
        worker_id: str,
        golden_answers: Mapping[int, int],
        golden_truths: Mapping[int, int],
        domain_vectors: Mapping[int, np.ndarray],
        shrinkage: float = 1.0,
    ) -> WorkerStats:
        """Golden bootstrap, identical to the in-memory store's."""
        if shrinkage < 0:
            raise ValidationError("shrinkage must be non-negative")
        numerator = np.zeros(self._m)
        denominator = np.zeros(self._m)
        for task_id, choice in golden_answers.items():
            if task_id not in golden_truths:
                raise ValidationError(
                    f"golden task {task_id} has no recorded truth"
                )
            r = np.asarray(domain_vectors[task_id], dtype=float)
            correct = 1.0 if choice == golden_truths[task_id] else 0.0
            numerator += r * correct
            denominator += r
        quality = np.full(self._m, self._default_quality)
        mask = denominator > 0
        quality[mask] = (
            numerator[mask] + shrinkage * self._default_quality
        ) / (denominator[mask] + shrinkage)
        stats = WorkerStats(quality, denominator)
        self.set(worker_id, stats.quality, stats.weight)
        return stats

    def snapshot(self) -> Dict[str, WorkerStats]:
        """All stored stats (deep copies)."""
        return {
            worker_id: self.get(worker_id)
            for worker_id in self.known_workers()
        }

    def _validated(
        self, quality: np.ndarray, weight: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        quality = np.asarray(quality, dtype=float)
        weight = np.asarray(weight, dtype=float)
        if quality.shape != (self._m,) or weight.shape != (self._m,):
            raise ValidationError(
                f"quality/weight must have shape ({self._m},)"
            )
        if np.any(weight < 0):
            raise ValidationError("weights must be non-negative")
        return quality, weight
