"""SQLite-backed storage: durable tables for answers and worker stats.

Figure 1 shows DOCS persisting answers and worker statistics in a
database so that worker models survive across requesters and system
restarts. :mod:`repro.platform.storage` provides the in-memory tables
used by experiments; this module provides drop-in durable equivalents on
top of the standard library's ``sqlite3``:

- :class:`SqliteAnswerTable` — same interface as
  :class:`repro.platform.storage.AnswerTable`;
- :class:`SqliteWorkerQualityStore` — same interface as
  :class:`repro.core.quality_store.WorkerQualityStore`, persisting the
  (quality, weight) vectors of Theorem 1.

Both accept a filesystem path or ``":memory:"``.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.core.quality_store import WorkerStats
from repro.core.types import Answer
from repro.errors import UnknownWorkerError, ValidationError

_ANSWER_SCHEMA = """
CREATE TABLE IF NOT EXISTS answers (
    worker_id TEXT NOT NULL,
    task_id   INTEGER NOT NULL,
    choice    INTEGER NOT NULL,
    seq       INTEGER PRIMARY KEY AUTOINCREMENT,
    UNIQUE (worker_id, task_id)
);
CREATE INDEX IF NOT EXISTS idx_answers_task ON answers (task_id);
CREATE INDEX IF NOT EXISTS idx_answers_worker ON answers (worker_id);
"""

_WORKER_SCHEMA = """
CREATE TABLE IF NOT EXISTS worker_stats (
    worker_id TEXT NOT NULL,
    domain    INTEGER NOT NULL,
    quality   REAL NOT NULL,
    weight    REAL NOT NULL,
    PRIMARY KEY (worker_id, domain)
);
"""


class SqliteAnswerTable:
    """Durable answers relation with the AnswerTable interface.

    Args:
        path: SQLite database path (or ``":memory:"``).
    """

    def __init__(self, path: str = ":memory:"):
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_ANSWER_SCHEMA)
        self._conn.commit()
        #: Per-worker answered-task sets, mirroring the in-memory
        #: table's O(1) ``tasks_answered_by``. Populated lazily from the
        #: database (the file may pre-exist), then kept fresh on insert.
        #: This assumes the table object is the file's only *writer*
        #: while open — writes made through another connection are not
        #: reflected in already-hydrated sets.
        self._worker_tasks: Dict[str, Set[int]] = {}

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def insert(self, answer: Answer) -> None:
        """Append one answer.

        Raises:
            ValidationError: if this (worker, task) pair already exists
                (the paper's at-most-once constraint, enforced by the
                UNIQUE index).
        """
        try:
            self._conn.execute(
                "INSERT INTO answers (worker_id, task_id, choice) "
                "VALUES (?, ?, ?)",
                (answer.worker_id, answer.task_id, answer.choice),
            )
            self._conn.commit()
        except sqlite3.IntegrityError:
            raise ValidationError(
                f"worker {answer.worker_id} already answered task "
                f"{answer.task_id}"
            ) from None
        cached = self._worker_tasks.get(answer.worker_id)
        if cached is not None:
            cached.add(answer.task_id)

    def all(self) -> List[Answer]:
        """All answers in arrival order."""
        rows = self._conn.execute(
            "SELECT worker_id, task_id, choice FROM answers ORDER BY seq"
        ).fetchall()
        return [Answer(w, t, c) for w, t, c in rows]

    def for_task(self, task_id: int) -> List[Answer]:
        """The answer set V(i) of one task (arrival order)."""
        rows = self._conn.execute(
            "SELECT worker_id, task_id, choice FROM answers "
            "WHERE task_id = ? ORDER BY seq",
            (task_id,),
        ).fetchall()
        return [Answer(w, t, c) for w, t, c in rows]

    def for_worker(self, worker_id: str) -> List[Answer]:
        """The answered set T(w) of one worker (arrival order)."""
        rows = self._conn.execute(
            "SELECT worker_id, task_id, choice FROM answers "
            "WHERE worker_id = ? ORDER BY seq",
            (worker_id,),
        ).fetchall()
        return [Answer(w, t, c) for w, t, c in rows]

    def tasks_answered_by(self, worker_id: str) -> Set[int]:
        """Task ids answered by a worker.

        Amortised O(1): the first call per worker hydrates a persistent
        set from the database; later calls return it directly (inserts
        through *this* object keep it fresh — see the single-writer
        note on ``_worker_tasks``). The set is live — treat it as
        read-only.
        """
        cached = self._worker_tasks.get(worker_id)
        if cached is None:
            rows = self._conn.execute(
                "SELECT task_id FROM answers WHERE worker_id = ?",
                (worker_id,),
            ).fetchall()
            cached = {t for (t,) in rows}
            self._worker_tasks[worker_id] = cached
        return cached

    def count_for_task(self, task_id: int) -> int:
        """|V(i)| for one task."""
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM answers WHERE task_id = ?",
            (task_id,),
        ).fetchone()
        return int(count)

    def has_answered(self, worker_id: str, task_id: int) -> bool:
        """Integrity-check helper."""
        row = self._conn.execute(
            "SELECT 1 FROM answers WHERE worker_id = ? AND task_id = ?",
            (worker_id, task_id),
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM answers"
        ).fetchone()
        return int(count)


class SqliteWorkerQualityStore:
    """Durable worker model with the WorkerQualityStore interface.

    Persists one row per (worker, domain) carrying the Theorem 1
    statistics; the merge runs as an upsert inside a transaction.

    Args:
        num_domains: m, the taxonomy size.
        path: SQLite database path (or ``":memory:"``).
        default_quality: quality reported for unknown workers/domains.
    """

    def __init__(
        self,
        num_domains: int,
        path: str = ":memory:",
        default_quality: float = 0.7,
    ):
        if num_domains <= 0:
            raise ValidationError("num_domains must be positive")
        if not 0.0 < default_quality < 1.0:
            raise ValidationError("default_quality must be in (0, 1)")
        self._m = num_domains
        self._default_quality = default_quality
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_WORKER_SCHEMA)
        self._conn.commit()

    @property
    def num_domains(self) -> int:
        """Taxonomy size m."""
        return self._m

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def known_workers(self) -> Iterable[str]:
        """Ids of workers with stored statistics."""
        rows = self._conn.execute(
            "SELECT DISTINCT worker_id FROM worker_stats"
        ).fetchall()
        return [w for (w,) in rows]

    def __contains__(self, worker_id: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM worker_stats WHERE worker_id = ? LIMIT 1",
            (worker_id,),
        ).fetchone()
        return row is not None

    def _fetch(self, worker_id: str) -> Optional[WorkerStats]:
        rows = self._conn.execute(
            "SELECT domain, quality, weight FROM worker_stats "
            "WHERE worker_id = ?",
            (worker_id,),
        ).fetchall()
        if not rows:
            return None
        quality = np.full(self._m, self._default_quality)
        weight = np.zeros(self._m)
        for domain, q, u in rows:
            if not 0 <= domain < self._m:
                raise ValidationError(
                    f"stored domain {domain} out of range for m={self._m}"
                )
            quality[domain] = q
            weight[domain] = u
        return WorkerStats(quality, weight)

    def get(self, worker_id: str) -> WorkerStats:
        """Stored stats for a worker.

        Raises:
            UnknownWorkerError: if the worker has no record.
        """
        stats = self._fetch(worker_id)
        if stats is None:
            raise UnknownWorkerError(worker_id)
        return stats

    def quality_or_default(self, worker_id: str) -> np.ndarray:
        """Quality vector with per-domain defaulting (zero weight)."""
        stats = self._fetch(worker_id)
        if stats is None:
            return np.full(self._m, self._default_quality)
        quality = stats.quality.copy()
        quality[stats.weight <= 0] = self._default_quality
        return quality

    def blended_quality(
        self, worker_id: str, pseudo_weight: float = 1.0
    ) -> np.ndarray:
        """Weight-shrunk quality (see the in-memory store's docstring)."""
        if pseudo_weight < 0:
            raise ValidationError("pseudo_weight must be non-negative")
        stats = self._fetch(worker_id)
        if stats is None:
            return np.full(self._m, self._default_quality)
        return (
            stats.quality * stats.weight
            + self._default_quality * pseudo_weight
        ) / (stats.weight + pseudo_weight)

    def set(
        self, worker_id: str, quality: np.ndarray, weight: np.ndarray
    ) -> None:
        """Overwrite a worker's stats."""
        quality, weight = self._validated(quality, weight)
        with self._conn:
            self._conn.execute(
                "DELETE FROM worker_stats WHERE worker_id = ?",
                (worker_id,),
            )
            self._conn.executemany(
                "INSERT INTO worker_stats "
                "(worker_id, domain, quality, weight) VALUES (?, ?, ?, ?)",
                [
                    (worker_id, k, float(quality[k]), float(weight[k]))
                    for k in range(self._m)
                ],
            )

    def merge(
        self, worker_id: str, quality: np.ndarray, weight: np.ndarray
    ) -> WorkerStats:
        """Theorem 1 update as a transactional upsert."""
        quality, weight = self._validated(quality, weight)
        existing = self._fetch(worker_id)
        if existing is None:
            merged = WorkerStats(quality.copy(), weight.copy())
        else:
            total = existing.weight + weight
            merged_quality = existing.quality.copy()
            mask = total > 0
            merged_quality[mask] = (
                existing.quality[mask] * existing.weight[mask]
                + quality[mask] * weight[mask]
            ) / total[mask]
            merged = WorkerStats(merged_quality, total)
        self.set(worker_id, merged.quality, merged.weight)
        return merged

    def initialize_from_golden(
        self,
        worker_id: str,
        golden_answers: Mapping[int, int],
        golden_truths: Mapping[int, int],
        domain_vectors: Mapping[int, np.ndarray],
        shrinkage: float = 1.0,
    ) -> WorkerStats:
        """Golden bootstrap, identical to the in-memory store's."""
        if shrinkage < 0:
            raise ValidationError("shrinkage must be non-negative")
        numerator = np.zeros(self._m)
        denominator = np.zeros(self._m)
        for task_id, choice in golden_answers.items():
            if task_id not in golden_truths:
                raise ValidationError(
                    f"golden task {task_id} has no recorded truth"
                )
            r = np.asarray(domain_vectors[task_id], dtype=float)
            correct = 1.0 if choice == golden_truths[task_id] else 0.0
            numerator += r * correct
            denominator += r
        quality = np.full(self._m, self._default_quality)
        mask = denominator > 0
        quality[mask] = (
            numerator[mask] + shrinkage * self._default_quality
        ) / (denominator[mask] + shrinkage)
        stats = WorkerStats(quality, denominator)
        self.set(worker_id, stats.quality, stats.weight)
        return stats

    def snapshot(self) -> Dict[str, WorkerStats]:
        """All stored stats (deep copies)."""
        return {
            worker_id: self.get(worker_id)
            for worker_id in self.known_workers()
        }

    def _validated(
        self, quality: np.ndarray, weight: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        quality = np.asarray(quality, dtype=float)
        weight = np.asarray(weight, dtype=float)
        if quality.shape != (self._m,) or weight.shape != (self._m,):
            raise ValidationError(
                f"quality/weight must have shape ({self._m},)"
            )
        if np.any(weight < 0):
            raise ValidationError("weights must be non-negative")
        return quality, weight
