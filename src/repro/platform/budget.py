"""Requester budget accounting.

A requester publishes tasks with a budget; DOCS consumes it through task
assignments and returns inferred truths once it is spent (Figure 1). The
budget here is denominated in *assignments* (answer slots), the unit the
paper's experiments control (e.g. 10 answers per task -> n x 10 total).
"""

from __future__ import annotations

from repro.errors import BudgetExhaustedError, ValidationError


class Budget:
    """A countdown of assignment slots.

    Args:
        total_assignments: total answer slots the requester pays for.
    """

    def __init__(self, total_assignments: int):
        if total_assignments <= 0:
            raise ValidationError(
                f"budget must be positive: {total_assignments}"
            )
        self._total = total_assignments
        self._used = 0

    @property
    def total(self) -> int:
        """Total slots purchased."""
        return self._total

    @property
    def used(self) -> int:
        """Slots consumed so far."""
        return self._used

    @property
    def remaining(self) -> int:
        """Slots left."""
        return self._total - self._used

    def exhausted(self) -> bool:
        """True when no slots remain."""
        return self._used >= self._total

    def consume(self, count: int = 1) -> None:
        """Spend ``count`` slots.

        Raises:
            BudgetExhaustedError: if fewer than ``count`` remain.
        """
        if count < 0:
            raise ValidationError("cannot consume a negative count")
        if self._used + count > self._total:
            raise BudgetExhaustedError(
                f"requested {count} assignments with only "
                f"{self.remaining} remaining"
            )
        self._used += count
