"""In-memory database tables backing the DOCS middleware.

Figure 1 shows DOCS persisting, in a database: workers' answers, task
parameters (domain vectors, truth state), and worker statistics (quality
+ weight vectors). These tables reproduce that storage layer with simple
indexed in-memory structures and the query patterns the modules need
(answers by task, answers by worker, existence checks).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.types import Answer, Task
from repro.errors import UnknownTaskError, ValidationError

#: Shared empty result for workers with no answers (never mutated).
_EMPTY_TASK_SET: Set[int] = frozenset()  # type: ignore[assignment]


class AnswerTable:
    """The answers relation: (worker_id, task_id, choice), append-only.

    Maintains secondary indexes by task and by worker, and enforces the
    paper's "a worker answers a task at most once" integrity constraint.
    """

    def __init__(self) -> None:
        self._answers: List[Answer] = []
        self._by_task: Dict[int, List[Answer]] = defaultdict(list)
        self._by_worker: Dict[str, List[Answer]] = defaultdict(list)
        self._pairs: Set[Tuple[str, int]] = set()
        #: Persistent per-worker answered-task sets, so the assignment
        #: path's T(w) lookup is O(1) instead of a per-call rebuild.
        self._worker_tasks: Dict[str, Set[int]] = defaultdict(set)

    def insert(self, answer: Answer) -> None:
        """Append one answer.

        Raises:
            ValidationError: if this (worker, task) pair already exists.
        """
        key = (answer.worker_id, answer.task_id)
        if key in self._pairs:
            raise ValidationError(
                f"worker {answer.worker_id} already answered task "
                f"{answer.task_id}"
            )
        self._pairs.add(key)
        self._answers.append(answer)
        self._by_task[answer.task_id].append(answer)
        self._by_worker[answer.worker_id].append(answer)
        self._worker_tasks[answer.worker_id].add(answer.task_id)

    def add_answers(self, answers: Sequence[Answer]) -> None:
        """Append a batch of answers atomically.

        The whole batch is validated against the at-most-once constraint
        (within the batch and against stored answers) before any row is
        written, so a rejected batch leaves the table untouched.

        Raises:
            ValidationError: naming the first offending (worker, task)
                pair.
        """
        batch_pairs: Set[Tuple[str, int]] = set()
        for answer in answers:
            key = (answer.worker_id, answer.task_id)
            if key in self._pairs or key in batch_pairs:
                raise ValidationError(
                    f"worker {answer.worker_id} already answered task "
                    f"{answer.task_id}"
                )
            batch_pairs.add(key)
        for answer in answers:
            self.insert(answer)

    def restore_batch(self, answers: Sequence[Answer]) -> None:
        """Bulk re-index answers that already satisfied the at-most-once
        constraint when first written (the resume path re-indexing the
        journal; the constraint was enforced at live insert time)."""
        for answer in answers:
            self._pairs.add((answer.worker_id, answer.task_id))
            self._answers.append(answer)
            self._by_task[answer.task_id].append(answer)
            self._by_worker[answer.worker_id].append(answer)
            self._worker_tasks[answer.worker_id].add(answer.task_id)

    def all(self) -> List[Answer]:
        """All answers in arrival order (copy)."""
        return list(self._answers)

    def for_task(self, task_id: int) -> List[Answer]:
        """The answer set V(i) of one task."""
        return list(self._by_task.get(task_id, []))

    def for_worker(self, worker_id: str) -> List[Answer]:
        """The answered set T(w) of one worker."""
        return list(self._by_worker.get(worker_id, []))

    def tasks_answered_by(self, worker_id: str) -> Set[int]:
        """Task ids answered by a worker.

        O(1): returns the maintained set, not a rebuild over the answer
        list. The set is live — callers must treat it as read-only.
        """
        return self._worker_tasks.get(worker_id, _EMPTY_TASK_SET)

    def count_for_task(self, task_id: int) -> int:
        """|V(i)| for one task."""
        return len(self._by_task.get(task_id, []))

    def has_answered(self, worker_id: str, task_id: int) -> bool:
        """Integrity-check helper."""
        return (worker_id, task_id) in self._pairs

    def __len__(self) -> int:
        return len(self._answers)


class SystemDatabase:
    """All DOCS tables in one unit of storage (Figure 1's DB).

    Holds the task catalogue (with domain vectors), the answer table, and
    the golden-task registry. Worker statistics live in
    :class:`repro.core.quality_store.WorkerQualityStore`, which systems
    keep alongside this object — mirroring the paper's separation between
    per-requester task state and cross-requester worker state.
    """

    def __init__(self) -> None:
        self._tasks: Dict[int, Task] = {}
        self.answers = AnswerTable()
        self._golden_ids: List[int] = []

    def insert_task(self, task: Task) -> None:
        """Register a task.

        Raises:
            ValidationError: on duplicate ids.
        """
        if task.task_id in self._tasks:
            raise ValidationError(
                f"duplicate task id {task.task_id}; it is already in "
                "the catalogue — pass only new tasks, or use fresh ids"
            )
        self._tasks[task.task_id] = task

    def insert_tasks(self, tasks: Iterable[Task]) -> None:
        """Register many tasks."""
        for task in tasks:
            self.insert_task(task)

    def add_tasks(self, tasks: Sequence[Task]) -> None:
        """Register a batch of tasks atomically (the ingest-plane path).

        The whole batch is validated for duplicate ids — within the
        batch and against the catalogue — before any task is stored, so
        a rejected batch leaves the catalogue untouched.

        Raises:
            ValidationError: naming the first offending task id.
        """
        batch_ids: Set[int] = set()
        for task in tasks:
            if task.task_id in self._tasks or task.task_id in batch_ids:
                raise ValidationError(
                    f"duplicate task id {task.task_id}; deduplicate the "
                    "batch and pass only tasks not yet in the catalogue"
                )
            batch_ids.add(task.task_id)
        for task in tasks:
            self._tasks[task.task_id] = task

    def remove_tasks(self, task_ids: Sequence[int]) -> None:
        """Drop tasks from the catalogue (the ingest plane's rollback
        hook: un-store a batch whose arena registration failed).

        Unknown ids are ignored; answers and the golden registry are
        untouched (rolled-back tasks were never served or selected).
        """
        for task_id in task_ids:
            self._tasks.pop(task_id, None)

    def add_answers(self, answers: Sequence[Answer]) -> None:
        """Batch-append answers (see :meth:`AnswerTable.add_answers`)."""
        self.answers.add_answers(answers)

    def task(self, task_id: int) -> Task:
        """Fetch a task.

        Raises:
            UnknownTaskError: if missing.
        """
        task = self._tasks.get(task_id)
        if task is None:
            raise UnknownTaskError(task_id)
        return task

    def tasks(self) -> List[Task]:
        """All tasks, id-ordered."""
        return [self._tasks[tid] for tid in sorted(self._tasks)]

    def task_ids(self) -> List[int]:
        """All task ids, ordered."""
        return sorted(self._tasks)

    def mark_golden(self, task_ids: Sequence[int]) -> None:
        """Record the golden-task set (tasks with known ground truth)."""
        for task_id in task_ids:
            task = self.task(task_id)
            if task.ground_truth is None:
                raise ValidationError(
                    f"golden task {task_id} has no ground truth"
                )
        self._golden_ids = list(task_ids)

    @property
    def golden_ids(self) -> List[int]:
        """Ids of the golden tasks."""
        return list(self._golden_ids)

    def __len__(self) -> int:
        return len(self._tasks)
