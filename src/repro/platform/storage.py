"""In-memory database tables backing the DOCS middleware.

Figure 1 shows DOCS persisting, in a database: workers' answers, task
parameters (domain vectors, truth state), and worker statistics (quality
+ weight vectors). These tables reproduce that storage layer with simple
indexed in-memory structures and the query patterns the modules need
(answers by task, answers by worker, existence checks).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.types import Answer, Task
from repro.errors import UnknownTaskError, ValidationError

#: Shared empty result for workers with no answers (never mutated).
_EMPTY_TASK_SET: Set[int] = frozenset()  # type: ignore[assignment]


class RestoredAnswerColumns:
    """Columnar view of the archived answer prefix, hydrated lazily.

    An index-carrying snapshot hands resume the whole pre-watermark
    answer relation as three int64 columns in arrival order plus the
    worker-id table — the exact arrays the ``AnswerLog`` keeps live.
    Rebuilding ``Answer`` objects for all of them up front would put the
    O(archive) Python loop right back into ``resume()``, so this wrapper
    keeps the columns as-is and pays only:

    - one numpy stable argsort per access dimension (task / worker), the
      first time that dimension is grouped; and
    - per-key ``Answer`` hydration, the first time a key is read.

    Keys never touched after resume (the common case: old tasks already
    finalized) never hydrate. Within a key, stable argsort preserves
    arrival order, so hydrated lists are bit-identical to what a full
    archive replay would have produced.
    """

    def __init__(
        self,
        task_ids: np.ndarray,
        worker_rows: np.ndarray,
        choices: np.ndarray,
        worker_ids: Sequence[str],
    ) -> None:
        self.task_ids = np.ascontiguousarray(task_ids, dtype=np.int64)
        self.worker_rows = np.ascontiguousarray(
            worker_rows, dtype=np.int64
        )
        #: 1-based, like ``Answer.choice``.
        self.choices = np.ascontiguousarray(choices, dtype=np.int64)
        self.worker_ids: List[str] = list(worker_ids)
        n = self.task_ids.shape[0]
        if (
            self.worker_rows.shape[0] != n
            or self.choices.shape[0] != n
        ):
            raise ValidationError(
                "restored answer columns disagree on length"
            )
        self._worker_row: Dict[str, int] = {
            worker_id: row
            for row, worker_id in enumerate(self.worker_ids)
        }
        # Lazy group-by state: arrival-ordered argsort per dimension
        # plus (start, end) slices into it, built on first touch.
        self._task_order: Optional[np.ndarray] = None
        self._task_slices: Optional[Dict[int, Tuple[int, int]]] = None
        self._worker_order: Optional[np.ndarray] = None
        self._worker_slices: Optional[
            Dict[int, Tuple[int, int]]
        ] = None
        # Per-key hydration caches.
        self._task_cache: Dict[int, List[Answer]] = {}
        self._worker_cache: Dict[str, List[Answer]] = {}
        self._all_cache: Optional[List[Answer]] = None

    @property
    def n(self) -> int:
        """Number of restored answers."""
        return self.task_ids.shape[0]

    @staticmethod
    def _group(
        keys: np.ndarray,
    ) -> Tuple[np.ndarray, Dict[int, Tuple[int, int]]]:
        order = np.argsort(keys, kind="stable")
        unique, starts = np.unique(keys[order], return_index=True)
        bounds = np.append(starts, order.shape[0])
        slices = {
            int(key): (int(bounds[i]), int(bounds[i + 1]))
            for i, key in enumerate(unique)
        }
        return order, slices

    def _task_groups(self) -> Dict[int, Tuple[int, int]]:
        if self._task_slices is None:
            self._task_order, self._task_slices = self._group(
                self.task_ids
            )
        return self._task_slices

    def _worker_groups(self) -> Dict[int, Tuple[int, int]]:
        if self._worker_slices is None:
            self._worker_order, self._worker_slices = self._group(
                self.worker_rows
            )
        return self._worker_slices

    def _hydrate(self, indexes: np.ndarray) -> List[Answer]:
        worker_ids = self.worker_ids
        return [
            Answer(
                worker_ids[self.worker_rows[i]],
                int(self.task_ids[i]),
                int(self.choices[i]),
            )
            for i in indexes
        ]

    def task_count(self, task_id: int) -> int:
        """|V(i)| within the restored prefix — no hydration."""
        slice_ = self._task_groups().get(task_id)
        return 0 if slice_ is None else slice_[1] - slice_[0]

    def answers_for_task(self, task_id: int) -> List[Answer]:
        """Restored answers of one task, arrival order (copy)."""
        cached = self._task_cache.get(task_id)
        if cached is None:
            slice_ = self._task_groups().get(task_id)
            if slice_ is None:
                cached = []
            else:
                assert self._task_order is not None
                cached = self._hydrate(
                    self._task_order[slice_[0]:slice_[1]]
                )
            self._task_cache[task_id] = cached
        return list(cached)

    def task_pairs(self, task_id: int) -> List[Tuple[str, int]]:
        """(worker_id, choice) pairs of one task, arrival order."""
        return [
            (answer.worker_id, answer.choice)
            for answer in self.answers_for_task(task_id)
        ]

    def has_worker(self, worker_id: str) -> bool:
        """Whether the restored prefix holds answers by this worker."""
        row = self._worker_row.get(worker_id)
        return row is not None and row in self._worker_groups()

    def answers_for_worker(self, worker_id: str) -> List[Answer]:
        """Restored answers of one worker, arrival order (copy)."""
        cached = self._worker_cache.get(worker_id)
        if cached is None:
            row = self._worker_row.get(worker_id)
            slice_ = (
                None if row is None
                else self._worker_groups().get(row)
            )
            if slice_ is None:
                cached = []
            else:
                assert self._worker_order is not None
                cached = self._hydrate(
                    self._worker_order[slice_[0]:slice_[1]]
                )
            self._worker_cache[worker_id] = cached
        return list(cached)

    def task_ids_for_worker(self, worker_id: str) -> List[int]:
        """Distinct task ids answered by a worker in the prefix."""
        row = self._worker_row.get(worker_id)
        if row is None:
            return []
        slice_ = self._worker_groups().get(row)
        if slice_ is None:
            return []
        assert self._worker_order is not None
        indexes = self._worker_order[slice_[0]:slice_[1]]
        return [int(t) for t in self.task_ids[indexes]]

    def all_answers(self) -> List[Answer]:
        """Every restored answer in arrival order (copy; hydrates)."""
        if self._all_cache is None:
            worker_ids = self.worker_ids
            self._all_cache = [
                Answer(worker_ids[row], int(task_id), int(choice))
                for row, task_id, choice in zip(
                    self.worker_rows.tolist(),
                    self.task_ids.tolist(),
                    self.choices.tolist(),
                )
            ]
        return list(self._all_cache)


class AnswerTable:
    """The answers relation: (worker_id, task_id, choice), append-only.

    Maintains secondary indexes by task and by worker, and enforces the
    paper's "a worker answers a task at most once" integrity constraint.
    """

    def __init__(self) -> None:
        self._answers: List[Answer] = []
        self._by_task: Dict[int, List[Answer]] = defaultdict(list)
        self._by_worker: Dict[str, List[Answer]] = defaultdict(list)
        self._pairs: Set[Tuple[str, int]] = set()
        #: Persistent per-worker answered-task sets, so the assignment
        #: path's T(w) lookup is O(1) instead of a per-call rebuild.
        self._worker_tasks: Dict[str, Set[int]] = defaultdict(set)
        #: Archived prefix restored from an index-carrying snapshot
        #: (lazy; None on fresh campaigns and archive-scan resumes).
        self._base: Optional[RestoredAnswerColumns] = None
        #: Workers whose ``_worker_tasks`` entry already folded in the
        #: base's answered set (only meaningful with a base installed).
        self._hydrated_workers: Set[str] = set()

    def install_restored_base(
        self, base: RestoredAnswerColumns
    ) -> None:
        """Adopt the snapshot-carried answer columns as the archived
        prefix of this table.

        Only legal on an empty table (resume installs the base before
        replaying the journal tail). Reads merge the base before live
        appends — the base is strictly pre-watermark, so arrival order
        is preserved without any per-answer work at install time.
        """
        if self._answers or self._base is not None:
            raise ValidationError(
                "a restored answer base can only be installed into an "
                "empty answer table"
            )
        self._base = base

    def _worker_set(self, worker_id: str) -> Set[int]:
        """The mutable answered-task set of one worker, with the base's
        tasks folded in on first touch."""
        tasks = self._worker_tasks[worker_id]
        if (
            self._base is not None
            and worker_id not in self._hydrated_workers
        ):
            self._hydrated_workers.add(worker_id)
            tasks.update(self._base.task_ids_for_worker(worker_id))
        return tasks

    def insert(self, answer: Answer) -> None:
        """Append one answer.

        Raises:
            ValidationError: if this (worker, task) pair already exists.
        """
        key = (answer.worker_id, answer.task_id)
        tasks = self._worker_set(answer.worker_id)
        if key in self._pairs or answer.task_id in tasks:
            raise ValidationError(
                f"worker {answer.worker_id} already answered task "
                f"{answer.task_id}"
            )
        self._pairs.add(key)
        self._answers.append(answer)
        self._by_task[answer.task_id].append(answer)
        self._by_worker[answer.worker_id].append(answer)
        tasks.add(answer.task_id)

    def add_answers(self, answers: Sequence[Answer]) -> None:
        """Append a batch of answers atomically.

        The whole batch is validated against the at-most-once constraint
        (within the batch and against stored answers) before any row is
        written, so a rejected batch leaves the table untouched.

        Raises:
            ValidationError: naming the first offending (worker, task)
                pair.
        """
        batch_pairs: Set[Tuple[str, int]] = set()
        for answer in answers:
            key = (answer.worker_id, answer.task_id)
            if (
                key in batch_pairs
                or self.has_answered(answer.worker_id, answer.task_id)
            ):
                raise ValidationError(
                    f"worker {answer.worker_id} already answered task "
                    f"{answer.task_id}"
                )
            batch_pairs.add(key)
        for answer in answers:
            self.insert(answer)

    def restore_batch(self, answers: Sequence[Answer]) -> None:
        """Bulk re-index answers that already satisfied the at-most-once
        constraint when first written (the resume path re-indexing the
        journal; the constraint was enforced at live insert time)."""
        if self._base is not None:
            raise ValidationError(
                "restore_batch and an installed answer base are "
                "mutually exclusive resume paths"
            )
        for answer in answers:
            self._pairs.add((answer.worker_id, answer.task_id))
            self._answers.append(answer)
            self._by_task[answer.task_id].append(answer)
            self._by_worker[answer.worker_id].append(answer)
            self._worker_tasks[answer.worker_id].add(answer.task_id)

    def all(self) -> List[Answer]:
        """All answers in arrival order (copy)."""
        if self._base is None:
            return list(self._answers)
        return self._base.all_answers() + self._answers

    def for_task(self, task_id: int) -> List[Answer]:
        """The answer set V(i) of one task."""
        live = self._by_task.get(task_id, [])
        if self._base is None:
            return list(live)
        return self._base.answers_for_task(task_id) + live

    def for_worker(self, worker_id: str) -> List[Answer]:
        """The answered set T(w) of one worker."""
        live = self._by_worker.get(worker_id, [])
        if self._base is None:
            return list(live)
        return self._base.answers_for_worker(worker_id) + live

    def tasks_answered_by(self, worker_id: str) -> Set[int]:
        """Task ids answered by a worker.

        O(1) amortised: returns the maintained set, not a per-call
        rebuild (with a restored base, the base's answered set folds in
        on the worker's first touch). The set is live — callers must
        treat it as read-only.
        """
        if self._base is None:
            return self._worker_tasks.get(worker_id, _EMPTY_TASK_SET)
        if (
            worker_id not in self._worker_tasks
            and not self._base.has_worker(worker_id)
        ):
            return _EMPTY_TASK_SET
        return self._worker_set(worker_id)

    def count_for_task(self, task_id: int) -> int:
        """|V(i)| for one task."""
        live = len(self._by_task.get(task_id, []))
        if self._base is None:
            return live
        return self._base.task_count(task_id) + live

    def has_answered(self, worker_id: str, task_id: int) -> bool:
        """Integrity-check helper."""
        if (worker_id, task_id) in self._pairs:
            return True
        if self._base is None:
            return False
        return task_id in self.tasks_answered_by(worker_id)

    def __len__(self) -> int:
        live = len(self._answers)
        if self._base is None:
            return live
        return self._base.n + live


class SystemDatabase:
    """All DOCS tables in one unit of storage (Figure 1's DB).

    Holds the task catalogue (with domain vectors), the answer table, and
    the golden-task registry. Worker statistics live in
    :class:`repro.core.quality_store.WorkerQualityStore`, which systems
    keep alongside this object — mirroring the paper's separation between
    per-requester task state and cross-requester worker state.
    """

    def __init__(self) -> None:
        self._tasks: Dict[int, Task] = {}
        self.answers = AnswerTable()
        self._golden_ids: List[int] = []

    def insert_task(self, task: Task) -> None:
        """Register a task.

        Raises:
            ValidationError: on duplicate ids.
        """
        if task.task_id in self._tasks:
            raise ValidationError(
                f"duplicate task id {task.task_id}; it is already in "
                "the catalogue — pass only new tasks, or use fresh ids"
            )
        self._tasks[task.task_id] = task

    def insert_tasks(self, tasks: Iterable[Task]) -> None:
        """Register many tasks."""
        for task in tasks:
            self.insert_task(task)

    def add_tasks(self, tasks: Sequence[Task]) -> None:
        """Register a batch of tasks atomically (the ingest-plane path).

        The whole batch is validated for duplicate ids — within the
        batch and against the catalogue — before any task is stored, so
        a rejected batch leaves the catalogue untouched.

        Raises:
            ValidationError: naming the first offending task id.
        """
        batch_ids: Set[int] = set()
        for task in tasks:
            if task.task_id in self._tasks or task.task_id in batch_ids:
                raise ValidationError(
                    f"duplicate task id {task.task_id}; deduplicate the "
                    "batch and pass only tasks not yet in the catalogue"
                )
            batch_ids.add(task.task_id)
        for task in tasks:
            self._tasks[task.task_id] = task

    def remove_tasks(self, task_ids: Sequence[int]) -> None:
        """Drop tasks from the catalogue (the ingest plane's rollback
        hook: un-store a batch whose arena registration failed).

        Unknown ids are ignored; answers and the golden registry are
        untouched (rolled-back tasks were never served or selected).
        """
        for task_id in task_ids:
            self._tasks.pop(task_id, None)

    def add_answers(self, answers: Sequence[Answer]) -> None:
        """Batch-append answers (see :meth:`AnswerTable.add_answers`)."""
        self.answers.add_answers(answers)

    def task(self, task_id: int) -> Task:
        """Fetch a task.

        Raises:
            UnknownTaskError: if missing.
        """
        task = self._tasks.get(task_id)
        if task is None:
            raise UnknownTaskError(task_id)
        return task

    def tasks(self) -> List[Task]:
        """All tasks, id-ordered."""
        return [self._tasks[tid] for tid in sorted(self._tasks)]

    def task_ids(self) -> List[int]:
        """All task ids, ordered."""
        return sorted(self._tasks)

    def mark_golden(self, task_ids: Sequence[int]) -> None:
        """Record the golden-task set (tasks with known ground truth)."""
        for task_id in task_ids:
            task = self.task(task_id)
            if task.ground_truth is None:
                raise ValidationError(
                    f"golden task {task_id} has no ground truth"
                )
        self._golden_ids = list(task_ids)

    @property
    def golden_ids(self) -> List[int]:
        """Ids of the golden tasks."""
        return list(self._golden_ids)

    def __len__(self) -> int:
        return len(self._tasks)
