"""Crowdsourcing-platform substrate (AMT surrogate).

DOCS is middleware over Amazon Mechanical Turk: AMT passes worker ids in,
DOCS assigns HITs of k tasks, workers submit answers, DOCS pays per HIT.
This package simulates that loop:

- :mod:`repro.platform.storage` — the system's database tables (answers,
  task states, worker statistics) as in Figure 1's DB;
- :mod:`repro.platform.sqlite_storage` — durable drop-in equivalents on
  ``sqlite3``;
- :mod:`repro.platform.journal` — the crash-safe write-behind answer
  journal DocsSystem campaigns persist and resume through;
- :mod:`repro.platform.faults` — the fault-injection harness the
  crash-safety matrix drives the durable paths with (inert in
  production);
- :mod:`repro.platform.retry` — bounded exponential-backoff retries
  for transient SQLite lock contention;
- :mod:`repro.platform.hit` — HIT batching and payment accounting;
- :mod:`repro.platform.budget` — requester budget tracking;
- :mod:`repro.platform.amt_sim` — the end-to-end interaction loop
  driving any engine that implements the assignment protocol.
"""

from repro.platform.storage import AnswerTable, SystemDatabase
from repro.platform.faults import CrashPoint, FaultInjector
from repro.platform.journal import (
    AnswerJournal,
    JournaledAnswerTable,
    JournalEntry,
    SalvageReport,
)
from repro.platform.retry import RetryPolicy
from repro.platform.sqlite_storage import (
    CampaignSnapshot,
    SqliteAnswerTable,
    SqliteSystemDatabase,
    SqliteWorkerQualityStore,
)
from repro.platform.hit import HIT, HITLog
from repro.platform.budget import Budget
from repro.platform.amt_sim import PlatformSimulator, SimulationReport

__all__ = [
    "AnswerTable",
    "SystemDatabase",
    "CrashPoint",
    "FaultInjector",
    "AnswerJournal",
    "JournaledAnswerTable",
    "JournalEntry",
    "SalvageReport",
    "RetryPolicy",
    "CampaignSnapshot",
    "SqliteAnswerTable",
    "SqliteSystemDatabase",
    "SqliteWorkerQualityStore",
    "HIT",
    "HITLog",
    "Budget",
    "PlatformSimulator",
    "SimulationReport",
]
