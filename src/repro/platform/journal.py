"""Crash-safe write-behind journal for campaign events.

The serving plane of DOCS is latency-bound: a per-answer synchronous
SQLite commit (one fsync each) on the submit path would dwarf the O(m*l)
incremental-TI update it protects. The journal instead spills the
:class:`repro.core.arena.AnswerLog` columns — arena task row, worker,
choice, timestamp — to an ``answers_log`` table *behind* the hot path:

- every campaign event (answer, golden-bootstrap answer, bootstrap
  completion marker) is appended to an in-memory pending buffer;
- the buffer is flushed as **one transaction** when it reaches the
  configured batch size, on :meth:`AnswerJournal.flush` (exposed as
  ``DocsSystem.checkpoint()``), and on close.

Each flushed batch writes a companion record into ``journal_batches``
carrying the batch's row span, row count, and a CRC-32 checksum over the
rows' logical content. Because batch rows and their batch record commit
atomically, a crash can only lose the *pending* (not yet flushed) tail —
never tear a batch. Rows without a batch record, or a batch whose count
or checksum disagrees with its rows, therefore indicate file corruption
and are rejected at resume time with
:class:`repro.errors.JournalCorruptionError`.

Replay (:meth:`AnswerJournal.replay`) yields the journal in commit
order, so ``DocsSystem.resume`` can rebuild the full hot state — arena
buffers, incremental-TI posteriors, worker qualities, rerun cursors — by
re-applying every event through the same code paths a live campaign
uses.

**Truncation.** Once a compacted snapshot covers a prefix of the
journal, the CRC-checked batch machinery is pure overhead for those
rows: their serving-plane effect lives in the snapshot, and only the
answer-index rebuild still reads them. :meth:`AnswerJournal.
truncate_through` therefore moves whole batches at or below the
snapshot watermark into a compact ``answers_archive`` table (answer
rows only — bootstrap events need nothing once snapshotted) and
deletes them from ``answers_log``/``journal_batches``, keeping
:meth:`validate` and tail replay O(tail) on long campaigns.
:meth:`committed_answers_through` reads archive and live rows
together, so the snapshot-resume index rebuild is unchanged; a *full*
replay of a truncated journal is impossible by construction and is
refused loudly.

**Salvage.** Corruption detection is strict by default: resume refuses
a journal whose tail is torn or altered. When the operator prefers
losing the torn tail to losing the campaign,
:meth:`AnswerJournal.salvage` truncates back to the longest replayable
prefix — dropping every row from the first inconsistency onward — and
reports exactly what was dropped (``DocsSystem.resume(repair=True)``
and ``repro check-db`` drive it).

:class:`JournaledAnswerTable` adapts the journal to the
:class:`repro.platform.storage.AnswerTable` interface: reads and the
at-most-once constraint are served synchronously from an in-memory
index, durability rides the journal.
"""

from __future__ import annotations

import logging
import sqlite3
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.types import Answer
from repro.errors import JournalCorruptionError, ValidationError
from repro.platform import faults
from repro.platform.retry import DEFAULT_POLICY, RetryPolicy
from repro.platform.storage import AnswerTable

logger = logging.getLogger(__name__)

#: Journal row kinds, in the order a campaign produces them.
KIND_ANSWER = 0  #: a campaign answer (budget-consuming submit)
KIND_BOOTSTRAP_ANSWER = 1  #: one golden-task answer of a quality pre-test
KIND_BOOTSTRAP_DONE = 2  #: marker: a worker's bootstrap completed

_JOURNAL_SCHEMA = """
CREATE TABLE IF NOT EXISTS answers_log (
    seq       INTEGER PRIMARY KEY,
    kind      INTEGER NOT NULL,
    task_row  INTEGER,
    task_id   INTEGER,
    worker_id TEXT NOT NULL,
    choice    INTEGER,
    ts        REAL NOT NULL,
    batch     INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS journal_batches (
    batch     INTEGER PRIMARY KEY,
    first_seq INTEGER NOT NULL,
    last_seq  INTEGER NOT NULL,
    row_count INTEGER NOT NULL,
    checksum  INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS answers_archive (
    seq       INTEGER PRIMARY KEY,
    task_row  INTEGER NOT NULL,
    task_id   INTEGER NOT NULL,
    worker_id TEXT NOT NULL,
    choice    INTEGER NOT NULL
);
"""

#: Covering indexes of the analytics plane (:mod:`repro.analytics`):
#: every analytics query is answered from ``(task, seq)`` / ``(worker,
#: seq)`` orderings over the committed answers, and each index carries
#: the remaining referenced columns so the queries never touch the base
#: tables. The ``answers_log`` pair is partial on ``kind = 0``
#: (:data:`KIND_ANSWER`) — bootstrap rows are invisible to analytics and
#: would only fatten the trees — and carries ``kind`` as a trailing
#: column because the planner's covering-index check counts the
#: query's ``kind = 0`` reference even though the partial-index
#: predicate subsumes it. Creating them on open doubles as the
#: migration for pre-analytics files.
_ANALYTICS_INDEXES: Tuple[Tuple[str, str], ...] = (
    (
        "idx_answers_archive_task",
        "CREATE INDEX idx_answers_archive_task ON answers_archive "
        "(task_id, seq, worker_id, choice)",
    ),
    (
        "idx_answers_archive_worker",
        "CREATE INDEX idx_answers_archive_worker ON answers_archive "
        "(worker_id, seq, task_id, choice)",
    ),
    (
        "idx_answers_log_task",
        "CREATE INDEX idx_answers_log_task ON answers_log "
        "(task_id, seq, worker_id, choice, kind) WHERE kind = 0",
    ),
    (
        "idx_answers_log_worker",
        "CREATE INDEX idx_answers_log_worker ON answers_log "
        "(worker_id, seq, task_id, choice, kind) WHERE kind = 0",
    ),
)


def ensure_analytics_indexes(conn: sqlite3.Connection) -> bool:
    """Create any missing analytics covering indexes (idempotent).

    Runs ``ANALYZE`` when at least one index was actually created, so
    ``sqlite_stat1`` reflects the new trees and the planner prefers
    them on long-lived campaign files migrated in place.

    Returns:
        True when a migration happened (an index was created).
    """
    existing = {
        name
        for (name,) in conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index'"
        )
    }
    created = False
    for name, ddl in _ANALYTICS_INDEXES:
        if name not in existing:
            conn.execute(ddl)
            created = True
    if created:
        conn.execute("ANALYZE")
        conn.commit()
    return created


@dataclass(frozen=True)
class JournalEntry:
    """One committed journal row.

    Attributes:
        seq: global commit order (monotonically increasing).
        kind: one of :data:`KIND_ANSWER`,
            :data:`KIND_BOOTSTRAP_ANSWER`, :data:`KIND_BOOTSTRAP_DONE`.
        task_row: the task's arena global row at write time (``None``
            for bootstrap markers).
        task_id: the answered task (``None`` for bootstrap markers).
        worker_id: the worker the event belongs to.
        choice: the 1-based answered choice (``None`` for markers).
        timestamp: wall-clock seconds at append time.
        batch: the flush batch this row committed with.
    """

    seq: int
    kind: int
    task_row: Optional[int]
    task_id: Optional[int]
    worker_id: str
    choice: Optional[int]
    timestamp: float
    batch: int


def _row_crc(
    crc: int,
    seq: int,
    kind: int,
    task_row: Optional[int],
    task_id: Optional[int],
    worker_id: str,
    choice: Optional[int],
) -> int:
    """Fold one row's logical content into a running CRC-32."""
    token = f"{seq}|{kind}|{task_row}|{task_id}|{worker_id}|{choice}"
    return zlib.crc32(token.encode("utf-8"), crc)


class AnswerJournal:
    """Batched write-behind journal over a SQLite connection.

    Args:
        conn: the connection to journal into (shared with the rest of
            the system database, so batch flushes join its file).
        batch_size: flush automatically once this many events are
            pending. ``1`` degenerates to write-through.
        clock: timestamp source (injectable for tests).
        retry: backoff policy for flush commits that hit lock
            contention (``database is locked``); defaults to
            :data:`repro.platform.retry.DEFAULT_POLICY`.
    """

    def __init__(
        self,
        conn: sqlite3.Connection,
        batch_size: int = 256,
        clock: Callable[[], float] = time.time,
        retry: Optional[RetryPolicy] = None,
    ):
        if batch_size < 1:
            raise ValidationError("journal batch_size must be >= 1")
        self._conn = conn
        self._batch_size = batch_size
        self._clock = clock
        self._retry = retry if retry is not None else DEFAULT_POLICY
        self._conn.executescript(_JOURNAL_SCHEMA)
        self._conn.commit()
        ensure_analytics_indexes(self._conn)
        self._load_cursors()
        #: (kind, task_row, task_id, worker_id, choice, ts) awaiting flush.
        self._pending: List[Tuple] = []

    def _load_cursors(self) -> None:
        """(Re)derive the seq/batch cursors from the file.

        Takes the maxima over BOTH journal tables: after the documented
        corruption remediation (deleting one bad batch from both
        tables) — or a :meth:`salvage` — either table may be ahead of
        the other, and a reused seq/batch id would collide on the next
        flush. The archive holds truncated seqs; a fully truncated
        journal must not restart the seq space on top of them.
        """
        row = self._conn.execute(
            "SELECT COALESCE(MAX(seq), -1), COALESCE(MAX(batch), -1) "
            "FROM answers_log"
        ).fetchone()
        meta = self._conn.execute(
            "SELECT COALESCE(MAX(last_seq), -1), "
            "COALESCE(MAX(batch), -1) FROM journal_batches"
        ).fetchone()
        archived = self._archive_high_seq()
        self._next_seq = max(int(row[0]), int(meta[0]), archived) + 1
        self._next_batch = max(int(row[1]), int(meta[1])) + 1

    def _archive_high_seq(self) -> int:
        """Highest seq in ``answers_archive`` (-1 when never truncated)."""
        (seq,) = self._conn.execute(
            "SELECT COALESCE(MAX(seq), -1) FROM answers_archive"
        ).fetchone()
        return int(seq)

    @property
    def batch_size(self) -> int:
        """The auto-flush threshold."""
        return self._batch_size

    @property
    def pending(self) -> int:
        """Events buffered but not yet durable."""
        return len(self._pending)

    @property
    def flushed_batches(self) -> int:
        """Batches committed so far (the auto-snapshot trigger's clock)."""
        return self._next_batch

    @property
    def last_committed_seq(self) -> int:
        """Seq of the newest durable row (-1 on an empty journal)."""
        return self._next_seq - 1

    def __len__(self) -> int:
        """Committed (durable) journal rows."""
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM answers_log"
        ).fetchone()
        return int(count)

    # -- write side ------------------------------------------------------

    def record_answer(self, answer: Answer, task_row: int) -> None:
        """Buffer one campaign answer; flush if the batch is full."""
        self._pending.append(
            (
                KIND_ANSWER,
                int(task_row),
                answer.task_id,
                answer.worker_id,
                answer.choice,
                self._clock(),
            )
        )
        if len(self._pending) >= self._batch_size:
            self.flush()

    def record_bootstrap(
        self,
        worker_id: str,
        answers: Sequence[Answer],
        task_rows: Sequence[int],
    ) -> None:
        """Buffer a worker's golden bootstrap: its answers plus a
        completion marker.

        The answers and the marker always enter the same pending buffer
        together, and :meth:`flush` writes the whole buffer in one
        transaction — so a committed journal never ends inside a
        bootstrap.
        """
        if len(answers) != len(task_rows):
            raise ValidationError(
                "bootstrap answers and task_rows must align"
            )
        now = self._clock()
        for answer, task_row in zip(answers, task_rows):
            self._pending.append(
                (
                    KIND_BOOTSTRAP_ANSWER,
                    int(task_row),
                    answer.task_id,
                    answer.worker_id,
                    answer.choice,
                    now,
                )
            )
        self._pending.append(
            (KIND_BOOTSTRAP_DONE, None, None, worker_id, None, now)
        )
        if len(self._pending) >= self._batch_size:
            self.flush()

    def flush(self) -> int:
        """Write all pending events as one atomic batch.

        Idempotent: with nothing pending this is a no-op returning 0,
        so repeated checkpoints are safe and cheap.

        Atomic against mid-flush failure: any exception — a rolled-back
        commit, lock contention, an injected crash — restores the
        cursors *and the pending buffer*, so the events are re-flushed
        by the next :meth:`flush` / checkpoint instead of silently
        dropped. Lock contention (``database is locked``) is retried
        under the journal's :class:`~repro.platform.retry.RetryPolicy`
        before surfacing.

        Fault points: ``journal.flush.pre-commit`` fires inside the
        transaction after the row statements, ``journal.flush.post-
        commit`` immediately after the commit.

        Returns:
            The number of rows made durable.
        """
        if not self._pending:
            return 0

        def attempt() -> int:
            state = self.cursor_state()
            try:
                with self._conn:
                    rows = self.flush_in_transaction()
                    faults.fire("journal.flush.pre-commit")
                    return rows
            except BaseException:
                # The commit failed (or a fault fired): put the cursors
                # and the pending buffer back in step with the file so
                # the events are retried instead of silently dropped.
                self.restore_cursor_state(state)
                raise

        flushed = self._retry.run(attempt, description="journal flush")
        faults.fire("journal.flush.post-commit")
        return flushed

    def cursor_state(self) -> Tuple[int, int, List[Tuple]]:
        """The write-behind cursors and pending buffer, for rollback.

        A caller embedding :meth:`flush_in_transaction` in a larger
        transaction captures this first; if that transaction rolls
        back, :meth:`restore_cursor_state` puts the journal back in
        step with the file so the pending events are not lost.
        """
        return self._next_seq, self._next_batch, list(self._pending)

    def restore_cursor_state(
        self, state: Tuple[int, int, List[Tuple]]
    ) -> None:
        """Undo the in-memory effect of a rolled-back embedded flush."""
        self._next_seq, self._next_batch, pending = state
        self._pending = list(pending)

    def flush_in_transaction(self) -> int:
        """Write pending events inside the caller's open transaction.

        The snapshot writer uses this to commit a journal batch and the
        snapshot that covers it atomically (one transaction on the
        shared connection). The caller owns commit/rollback; capture
        :meth:`cursor_state` first and restore it if the transaction
        rolls back, or the cursors run ahead of the file.

        Returns:
            Rows handed to the transaction (0 when nothing is pending).
        """
        if not self._pending:
            return 0
        batch = self._next_batch
        first_seq = self._next_seq
        crc = 0
        rows = []
        for offset, (kind, task_row, task_id, worker_id, choice, ts) in (
            enumerate(self._pending)
        ):
            seq = first_seq + offset
            crc = _row_crc(
                crc, seq, kind, task_row, task_id, worker_id, choice
            )
            rows.append(
                (seq, kind, task_row, task_id, worker_id, choice, ts, batch)
            )
        last_seq = first_seq + len(rows) - 1
        self._conn.executemany(
            "INSERT INTO answers_log "
            "(seq, kind, task_row, task_id, worker_id, choice, ts, "
            "batch) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            rows,
        )
        self._conn.execute(
            "INSERT INTO journal_batches "
            "(batch, first_seq, last_seq, row_count, checksum) "
            "VALUES (?, ?, ?, ?, ?)",
            (batch, first_seq, last_seq, len(rows), crc),
        )
        self._next_seq = last_seq + 1
        self._next_batch = batch + 1
        self._pending.clear()
        return len(rows)

    # -- truncation ------------------------------------------------------

    @property
    def archived_through(self) -> int:
        """Highest seq moved to the archive (-1 when never truncated).

        Journal rows at or below this seq no longer exist in
        ``answers_log``; their snapshot carries their effect and the
        archive carries their answer columns.
        """
        return self._archive_high_seq()

    def truncate_through(self, watermark: int) -> int:
        """Archive and drop whole batches at or below a seq watermark.

        Called after a snapshot with that watermark commits: answer
        rows move into ``answers_archive`` (bootstrap rows and markers
        are dropped — their whole effect lives in the snapshot's worker
        tables), and the covered batch records go with them, so
        :meth:`validate` and :meth:`replay` walk only the surviving
        tail. Only batches whose ``last_seq`` is at or below the
        watermark are touched — a batch is the CRC unit and is never
        torn. One transaction; idempotent (a second call with the same
        watermark finds nothing left to move).

        Args:
            watermark: a snapshot's ``journal_seq`` — every row at or
                below it must already be covered by a durable snapshot,
                or the campaign's truncated prefix becomes
                unrecoverable.

        Returns:
            Journal rows removed from ``answers_log``.
        """
        if watermark < 0:
            return 0
        with self._conn:
            (cut,) = self._conn.execute(
                "SELECT COALESCE(MAX(last_seq), -1) FROM journal_batches "
                "WHERE last_seq <= ?",
                (watermark,),
            ).fetchone()
            if cut < 0:
                return 0
            self._conn.execute(
                "INSERT INTO answers_archive "
                "(seq, task_row, task_id, worker_id, choice) "
                "SELECT seq, task_row, task_id, worker_id, choice "
                "FROM answers_log WHERE seq <= ? AND kind = ?",
                (cut, KIND_ANSWER),
            )
            removed = self._conn.execute(
                "DELETE FROM answers_log WHERE seq <= ?", (cut,)
            ).rowcount
            self._conn.execute(
                "DELETE FROM journal_batches WHERE last_seq <= ?", (cut,)
            )
        return int(removed)

    # -- read side -------------------------------------------------------

    def committed_answers_through(
        self, last_seq: int
    ) -> List[Tuple[int, int, int, str, int]]:
        """Bulk-fetch committed :data:`KIND_ANSWER` rows up to a seq.

        The snapshot-resume fast path: pre-watermark answers only
        rebuild in-memory indexes, so they are fetched as raw
        ``(seq, task_row, task_id, worker_id, choice)`` column tuples —
        no per-row :class:`JournalEntry` objects. Rows moved to the
        archive by :meth:`truncate_through` are included, so the index
        rebuild sees the same answers either way.
        """
        return self._conn.execute(
            "SELECT seq, task_row, task_id, worker_id, choice "
            "FROM answers_archive WHERE seq <= ? "
            "UNION ALL "
            "SELECT seq, task_row, task_id, worker_id, choice "
            "FROM answers_log WHERE seq <= ? AND kind = ? ORDER BY seq",
            (last_seq, last_seq, KIND_ANSWER),
        ).fetchall()

    def replay(self, after_seq: int = -1) -> Iterator[JournalEntry]:
        """Iterate the committed journal in commit (seq) order.

        Args:
            after_seq: yield only rows with ``seq > after_seq`` (the
                default replays everything). Resume passes a snapshot's
                watermark to walk just the tail.

        Raises:
            JournalCorruptionError: if ``after_seq`` reaches into the
                archived (truncated) prefix — those rows can no longer
                be replayed event-by-event; resume must go through the
                snapshot that covered them.
        """
        archived = self.archived_through
        if after_seq < archived:
            raise JournalCorruptionError(
                f"cannot replay from seq {after_seq}: the journal was "
                f"truncated through seq {archived} after a snapshot; "
                "resume from the snapshot (or restore the file from a "
                "backup)"
            )
        cursor = self._conn.execute(
            "SELECT seq, kind, task_row, task_id, worker_id, choice, ts, "
            "batch FROM answers_log WHERE seq > ? ORDER BY seq",
            (after_seq,),
        )
        while True:
            rows = cursor.fetchmany(1024)
            if not rows:
                return
            for seq, kind, task_row, task_id, worker_id, choice, ts, b in (
                rows
            ):
                yield JournalEntry(
                    seq=seq,
                    kind=kind,
                    task_row=task_row,
                    task_id=task_id,
                    worker_id=worker_id,
                    choice=choice,
                    timestamp=ts,
                    batch=b,
                )

    def validate(self) -> None:
        """Check the committed journal's integrity.

        Verifies that every row belongs to a recorded batch and that
        every batch's row count and CRC-32 checksum match its rows.

        Raises:
            JournalCorruptionError: naming the offending batch and the
                remediation.
        """
        remedy = (
            "restore the database file from a backup, or drop the "
            "affected batch from BOTH tables (DELETE FROM answers_log "
            "WHERE batch = N; DELETE FROM journal_batches WHERE "
            "batch = N) to fall back to the last consistent checkpoint"
        )
        recorded = {
            batch: (first, last, count, checksum)
            for batch, first, last, count, checksum in self._conn.execute(
                "SELECT batch, first_seq, last_seq, row_count, checksum "
                "FROM journal_batches"
            )
        }
        orphans = [
            batch
            for (batch,) in self._conn.execute(
                "SELECT DISTINCT batch FROM answers_log"
            )
            if batch not in recorded
        ]
        if orphans:
            raise JournalCorruptionError(
                f"journal batch {orphans[0]} has rows but no batch "
                "record: the final batch is partial (torn write or "
                f"edited file); {remedy}"
            )
        for batch, (first, last, count, checksum) in sorted(
            recorded.items()
        ):
            rows = self._conn.execute(
                "SELECT seq, kind, task_row, task_id, worker_id, choice "
                "FROM answers_log WHERE batch = ? ORDER BY seq",
                (batch,),
            ).fetchall()
            if len(rows) != count or (
                rows
                and (rows[0][0] != first or rows[-1][0] != last)
            ):
                raise JournalCorruptionError(
                    f"journal batch {batch} is incomplete: its record "
                    f"promises rows {first}..{last} ({count} rows) but "
                    f"{len(rows)} were found; {remedy}"
                )
            crc = 0
            for seq, kind, task_row, task_id, worker_id, choice in rows:
                crc = _row_crc(
                    crc, seq, kind, task_row, task_id, worker_id, choice
                )
            if crc != checksum:
                raise JournalCorruptionError(
                    f"journal batch {batch} fails its checksum: the "
                    f"rows were altered after commit; {remedy}"
                )

    # -- salvage ---------------------------------------------------------

    def salvage(self, dry_run: bool = False) -> "SalvageReport":
        """Truncate a torn tail back to the last consistent prefix.

        Finds the lowest seq at which the journal stops being
        self-consistent — rows without a batch record (a torn final
        write), or a batch whose row count, span, or CRC disagrees with
        its record — and drops **everything from that seq onward**
        (rows and batch records both). Replay is strictly prefix-
        ordered, so a valid batch *behind* a corrupt one cannot be
        kept: the salvaged journal is the longest replayable prefix.

        The operation is explicit and lossy by design: the report says
        exactly what was (or, with ``dry_run``, would be) dropped, and
        the caller — :meth:`DocsSystem.resume(repair=True)
        <repro.system.docs_system.DocsSystem.resume>` or the
        ``repro check-db`` CLI — surfaces it to the operator. The
        archived (truncated) prefix is never touched: it carries no
        CRC and is covered by its snapshot.

        Args:
            dry_run: only diagnose; leave the file unmodified.

        Returns:
            A :class:`SalvageReport`; ``report.clean`` means the
            journal already validated and nothing was dropped.
        """
        recorded = self._conn.execute(
            "SELECT batch, first_seq, last_seq, row_count, checksum "
            "FROM journal_batches ORDER BY first_seq"
        ).fetchall()
        cut: Optional[int] = None
        problem: Optional[str] = None
        (orphan_min,) = self._conn.execute(
            "SELECT MIN(seq) FROM answers_log WHERE batch NOT IN "
            "(SELECT batch FROM journal_batches)"
        ).fetchone()
        if orphan_min is not None:
            cut = int(orphan_min)
            problem = (
                "rows without a batch record (torn final write) from "
                f"seq {cut}"
            )
        for batch, first, last, count, checksum in recorded:
            if cut is not None and first >= cut:
                break
            rows = self._conn.execute(
                "SELECT seq, kind, task_row, task_id, worker_id, choice "
                "FROM answers_log WHERE batch = ? ORDER BY seq",
                (batch,),
            ).fetchall()
            crc = 0
            for seq, kind, task_row, task_id, worker_id, choice in rows:
                crc = _row_crc(
                    crc, seq, kind, task_row, task_id, worker_id, choice
                )
            intact = (
                len(rows) == count
                and rows
                and rows[0][0] == first
                and rows[-1][0] == last
                and crc == checksum
            )
            if not intact:
                start = min(first, rows[0][0]) if rows else first
                if cut is None or start < cut:
                    cut = int(start)
                    problem = (
                        f"batch {batch} (seq {first}..{last}) fails "
                        "its row-count/span/CRC check"
                    )
                break
        if cut is None:
            return SalvageReport(
                valid_through_seq=self.last_committed_seq,
                dropped_rows=0,
                dropped_answers=0,
                dropped_batches=0,
                dry_run=dry_run,
                problem=None,
            )
        (dropped_rows,) = self._conn.execute(
            "SELECT COUNT(*) FROM answers_log WHERE seq >= ?", (cut,)
        ).fetchone()
        (dropped_answers,) = self._conn.execute(
            "SELECT COUNT(*) FROM answers_log WHERE seq >= ? "
            "AND kind = ?",
            (cut, KIND_ANSWER),
        ).fetchone()
        (dropped_batches,) = self._conn.execute(
            "SELECT COUNT(*) FROM journal_batches WHERE last_seq >= ?",
            (cut,),
        ).fetchone()
        (valid_through,) = self._conn.execute(
            "SELECT COALESCE(MAX(seq), ?) FROM answers_log "
            "WHERE seq < ?",
            (self.archived_through, cut),
        ).fetchone()
        report = SalvageReport(
            valid_through_seq=int(valid_through),
            dropped_rows=int(dropped_rows),
            dropped_answers=int(dropped_answers),
            dropped_batches=int(dropped_batches),
            dry_run=dry_run,
            problem=problem,
        )
        if dry_run:
            return report
        with self._conn:
            self._conn.execute(
                "DELETE FROM answers_log WHERE seq >= ?", (cut,)
            )
            self._conn.execute(
                "DELETE FROM journal_batches WHERE last_seq >= ?", (cut,)
            )
        self._load_cursors()
        logger.warning(
            "journal salvage dropped %d row(s) (%d answer(s)) across "
            "%d batch(es) after seq %d: %s",
            report.dropped_rows, report.dropped_answers,
            report.dropped_batches, report.valid_through_seq,
            report.problem,
        )
        return report


@dataclass(frozen=True)
class SalvageReport:
    """What :meth:`AnswerJournal.salvage` dropped (or would drop).

    Attributes:
        valid_through_seq: last seq of the surviving consistent prefix
            (the archive watermark when nothing survives beyond it).
        dropped_rows: journal rows removed (all kinds).
        dropped_answers: :data:`KIND_ANSWER` rows among them — the
            campaign events actually lost.
        dropped_batches: batch records removed with them.
        dry_run: True when nothing was actually deleted.
        problem: why the cut happened (``None`` on a clean journal).
    """

    valid_through_seq: int
    dropped_rows: int
    dropped_answers: int
    dropped_batches: int
    dry_run: bool
    problem: Optional[str]

    @property
    def clean(self) -> bool:
        """True when the journal needed no repair."""
        return self.dropped_rows == 0 and self.dropped_batches == 0


class JournaledAnswerTable:
    """AnswerTable facade: in-memory hot indexes, journal durability.

    Serving-path reads (``tasks_answered_by``, ``for_task``, the
    at-most-once check) run against an in-memory
    :class:`repro.platform.storage.AnswerTable`, so they see every
    answer immediately — including those still pending in the journal
    buffer. Durability is the journal's batched write-behind; the
    in-memory index is rebuilt from the journal on resume via
    :meth:`restore`.

    The journal rows carry the answer's arena global row, so a resolver
    (``task id -> arena row``) must be bound before the first insert —
    ``DocsSystem`` binds its arena's ``global_row`` after registration.
    """

    def __init__(self, journal: AnswerJournal):
        self._journal = journal
        self._inner = AnswerTable()
        self._row_of: Optional[Callable[[int], int]] = None

    @property
    def journal(self) -> AnswerJournal:
        """The backing write-behind journal."""
        return self._journal

    def bind_row_resolver(self, row_of: Callable[[int], int]) -> None:
        """Attach the ``task id -> arena global row`` mapping."""
        self._row_of = row_of

    def insert(self, answer: Answer) -> None:
        """Append one answer: synchronous index update + journal append.

        Raises:
            ValidationError: if this (worker, task) pair already exists,
                or no row resolver is bound.
        """
        if self._row_of is None:
            raise ValidationError(
                "journaled answer table has no task-row resolver bound; "
                "call bind_row_resolver() before inserting"
            )
        task_row = self._row_of(answer.task_id)
        self._inner.insert(answer)
        self._journal.record_answer(answer, task_row)

    def add_answers(self, answers: Sequence[Answer]) -> None:
        """Batch-append answers atomically (index first, then journal)."""
        if self._row_of is None:
            raise ValidationError(
                "journaled answer table has no task-row resolver bound; "
                "call bind_row_resolver() before inserting"
            )
        task_rows = [self._row_of(a.task_id) for a in answers]
        self._inner.add_answers(answers)
        for answer, task_row in zip(answers, task_rows):
            self._journal.record_answer(answer, task_row)

    def restore(self, answer: Answer) -> None:
        """Re-index an answer that is already durable (replay path)."""
        self._inner.insert(answer)

    def restore_batch(self, answers: Sequence[Answer]) -> None:
        """Bulk re-index durable answers (snapshot-resume fast path)."""
        self._inner.restore_batch(answers)

    def install_restored_base(self, base) -> None:
        """Adopt snapshot-carried answer columns as the archived prefix
        of the in-memory index (the index-carrying resume path; see
        :meth:`repro.platform.storage.AnswerTable.install_restored_base`).
        """
        self._inner.install_restored_base(base)

    def checkpoint(self) -> int:
        """Flush the journal; returns rows made durable."""
        return self._journal.flush()

    # -- reads: served from the in-memory index --------------------------

    def all(self) -> List[Answer]:
        """All answers in arrival order."""
        return self._inner.all()

    def for_task(self, task_id: int) -> List[Answer]:
        """The answer set V(i) of one task."""
        return self._inner.for_task(task_id)

    def for_worker(self, worker_id: str) -> List[Answer]:
        """The answered set T(w) of one worker."""
        return self._inner.for_worker(worker_id)

    def tasks_answered_by(self, worker_id: str) -> Set[int]:
        """Task ids answered by a worker (O(1) maintained set)."""
        return self._inner.tasks_answered_by(worker_id)

    def count_for_task(self, task_id: int) -> int:
        """|V(i)| for one task."""
        return self._inner.count_for_task(task_id)

    def has_answered(self, worker_id: str, task_id: int) -> bool:
        """Integrity-check helper."""
        return self._inner.has_answered(worker_id, task_id)

    def __len__(self) -> int:
        return len(self._inner)
