"""The end-to-end platform interaction loop (AMT surrogate).

Drives any :class:`repro.engines.Engine` — DOCS or a competitor —
through the workflow of Section 6.4: workers arrive, new workers first
answer the golden tasks (the quality pre-test of Section 5.2), then each
arrival receives a HIT of k tasks chosen by the engine, answers them
according to the simulated answer model, and the engine ingests the
answers. The loop stops when the assignment budget (n tasks x
answers-per-task) is spent or no further assignment is possible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.core.types import Answer
from repro.crowd.answer_model import sample_answer
from repro.crowd.arrival import WorkerArrivalProcess
from repro.crowd.worker_pool import WorkerPool
from repro.datasets.base import CrowdDataset
from repro.errors import ValidationError
from repro.platform.budget import Budget
from repro.platform.hit import HITLog
from repro.utils.rng import SeedLike, make_rng

if TYPE_CHECKING:  # the Engine ABC, import-cycle-free at runtime
    from repro.engines.base import Engine


@dataclass
class SimulationReport:
    """Outcome of one simulated campaign.

    Attributes:
        engine_name: which engine ran.
        truths: task id -> inferred truth.
        accuracy: fraction of tasks inferred correctly.
        total_answers: budget consumed (golden pre-test excluded).
        golden_answers: answers collected during bootstrap pre-tests.
        hit_log: every issued HIT.
        max_assign_seconds: worst-case wall time of one assign() call
            (Figure 8(b)'s metric).
        mean_assign_seconds: mean assign() wall time.
    """

    engine_name: str
    truths: Dict[int, int]
    accuracy: float
    total_answers: int
    golden_answers: int
    hit_log: HITLog
    max_assign_seconds: float
    mean_assign_seconds: float


class PlatformSimulator:
    """Runs one engine through a full crowdsourcing campaign.

    Args:
        dataset: tasks + ground truth + KB.
        pool: the simulated workforce.
        answers_per_task: budget = n tasks x this (paper: 10).
        hit_size: tasks per HIT (paper: k = 20 overall, k = 3 per method
            in the OTA comparison).
        max_hits_per_worker: arrival cap per worker.
        seed: RNG seed for arrivals and answers.
    """

    def __init__(
        self,
        dataset: CrowdDataset,
        pool: WorkerPool,
        answers_per_task: int = 10,
        hit_size: int = 3,
        max_hits_per_worker: Optional[int] = None,
        seed: SeedLike = 0,
    ):
        if answers_per_task < 1:
            raise ValidationError("answers_per_task must be >= 1")
        if hit_size < 1:
            raise ValidationError("hit_size must be >= 1")
        self._dataset = dataset
        self._pool = pool
        self._answers_per_task = answers_per_task
        self._hit_size = hit_size
        self._max_hits = max_hits_per_worker
        self._seed = seed

    def run(self, engine: "Engine") -> SimulationReport:
        """Simulate a full campaign with ``engine``.

        Returns:
            A :class:`SimulationReport` with accuracy and timing.
        """
        rng = make_rng(self._seed)
        arrival_rng, answer_rng = rng.spawn(2)
        engine.prepare(self._dataset)

        tasks_by_id = {t.task_id: t for t in self._dataset.tasks}
        budget = Budget(self._dataset.num_tasks * self._answers_per_task)
        arrivals = WorkerArrivalProcess(
            self._pool,
            max_hits_per_worker=self._max_hits,
            seed=arrival_rng,
        )
        hit_log = HITLog()
        assign_times: List[float] = []
        golden_answer_count = 0
        consecutive_empty = 0

        for worker_id in arrivals:
            if budget.exhausted():
                break
            profile = self._pool.profile(worker_id)

            if engine.needs_bootstrap(worker_id):
                golden_answers = []
                for task_id in engine.golden_task_ids():
                    task = tasks_by_id[task_id]
                    choice = sample_answer(task, profile, answer_rng)
                    golden_answers.append(
                        Answer(
                            worker_id=worker_id,
                            task_id=task_id,
                            choice=choice,
                        )
                    )
                engine.bootstrap(worker_id, golden_answers)
                golden_answer_count += len(golden_answers)

            k = min(self._hit_size, budget.remaining)
            started = time.perf_counter()
            assigned = engine.assign(worker_id, k)
            assign_times.append(time.perf_counter() - started)

            if not assigned:
                consecutive_empty += 1
                # Every worker has been tried since the last successful
                # assignment: nothing more can be assigned.
                if consecutive_empty > 2 * len(self._pool):
                    break
                continue
            consecutive_empty = 0

            hit_log.issue(worker_id, assigned)
            for task_id in assigned:
                task = tasks_by_id[task_id]
                choice = sample_answer(task, profile, answer_rng)
                engine.submit(
                    Answer(
                        worker_id=worker_id,
                        task_id=task_id,
                        choice=choice,
                    )
                )
                budget.consume(1)

        truths = engine.finalize()
        accuracy = self._score(truths)
        return SimulationReport(
            engine_name=engine.name,
            truths=truths,
            accuracy=accuracy,
            total_answers=budget.used,
            golden_answers=golden_answer_count,
            hit_log=hit_log,
            max_assign_seconds=max(assign_times) if assign_times else 0.0,
            mean_assign_seconds=(
                float(np.mean(assign_times)) if assign_times else 0.0
            ),
        )

    def _score(self, truths: Dict[int, int]) -> float:
        correct = 0
        counted = 0
        for task in self._dataset.tasks:
            if task.ground_truth is None:
                continue
            counted += 1
            if truths.get(task.task_id) == task.ground_truth:
                correct += 1
        if counted == 0:
            raise ValidationError("dataset has no ground truth to score")
        return correct / counted
