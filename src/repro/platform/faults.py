"""Fault injection for the durability plane.

The storage layer's crash-safety claims — "a batch commits atomically
or not at all", "a snapshot never claims events the journal does not
hold", "lock contention is retried, never fatal" — are only claims
until something *drives* the code through the failures. This module is
that something: a :class:`FaultInjector` with **named fault points**
compiled into the durable paths (:mod:`repro.platform.journal`,
:mod:`repro.platform.sqlite_storage`), inert in production and armed by
the crash-matrix and degradation test suites.

Fault points (:data:`FAULT_POINTS`) mark the instants a real crash or
contention event would be most damaging:

``db.connect``
    entering :class:`~repro.platform.sqlite_storage.SqliteSystemDatabase`
    / :class:`~repro.platform.sqlite_storage.SqliteWorkerQualityStore`
    construction, before the SQLite connection opens.
``journal.flush.pre-commit``
    inside a journal flush transaction, after every row statement has
    executed but **before** the commit — a crash here must roll the
    whole batch back.
``journal.flush.post-commit``
    immediately after a flush batch committed — a crash here must lose
    nothing; resume replays the batch.
``snapshot.write.post-crc``
    after a snapshot's payload and checksum are serialised, before its
    transaction opens.
``snapshot.write.mid-transaction``
    inside the snapshot transaction, between the meta row and the bulk
    tables — a crash here must roll back the snapshot *and* its
    embedded journal flush together.
``snapshot.write.post-commit``
    after the snapshot transaction committed.
``worker_store.apply_delta``
    inside a shared worker store's
    :meth:`~repro.platform.sqlite_storage.SqliteWorkerQualityStore.apply_batch_delta`
    transaction — the cross-campaign contention hot spot.

Failure modes: ``"crash"`` raises :class:`CrashPoint` (the simulated
process kill — deliberately **not** a :class:`repro.errors.ReproError`
nor a ``sqlite3.Error``, so no production handler can swallow it),
``"locked"`` raises ``sqlite3.OperationalError: database is locked``
(the contention signal the retry policy recognises), and any exception
instance is raised as-is.

Usage::

    from repro.platform import faults

    with faults.injected() as injector:
        injector.arm("journal.flush.pre-commit", "crash", skip=3)
        ...  # the 4th flush dies mid-transaction

The module-level :func:`fire` consulted by the instrumented code hits a
process-global injector that is inert (a dict lookup and a counter
bump) unless a test armed it — the production overhead is what
``BENCH_perf.json``'s "durability" scenario measures.
"""

from __future__ import annotations

import sqlite3
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Union

#: Every fault point compiled into the storage plane. ``arm``/``fire``
#: reject names outside this set, so a typo cannot silently disarm a
#: crash-matrix case.
FAULT_POINTS = frozenset(
    {
        "db.connect",
        "journal.flush.pre-commit",
        "journal.flush.post-commit",
        "snapshot.write.post-crc",
        "snapshot.write.mid-transaction",
        "snapshot.write.post-commit",
        "worker_store.apply_delta",
        # Parallel serving plane (PR 7). Armed pre-fork, these fire in
        # the child process (the injector state is fork-inherited) and
        # surface to the parent as a dead worker/shard — exercising the
        # degradation paths, not exception plumbing.
        "parallel.worker.serve",
        "parallel.rerun.shard",
        "parallel.link.worker",
    }
)

#: Built-in failure modes (an exception instance is also accepted).
FAILURE_MODES = ("crash", "locked")


class CrashPoint(Exception):
    """A simulated process kill at a named fault point.

    Deliberately derives from neither :class:`repro.errors.ReproError`
    nor ``sqlite3.Error``: production error handling (graceful
    degradation catches ``sqlite3.Error``; callers catch
    ``ReproError``) must never absorb a simulated crash — the test
    harness expects it to unwind the whole campaign like a real kill
    would.

    Attributes:
        point: the fault point that fired.
    """

    def __init__(self, point: str):
        super().__init__(f"injected crash at fault point {point!r}")
        self.point = point


@dataclass
class _Arming:
    """One armed fault: what to raise, and when."""

    failure: Union[str, BaseException]
    times: int  #: fire this many hits, then fall inert (<0 = forever)
    skip: int  #: let this many hits pass before the first firing
    triggered: int = 0  #: how often this arming has actually raised


@dataclass
class FaultInjector:
    """Armable fault points for the durability plane.

    Inert by default: :meth:`fire` on an unarmed point only counts the
    hit. Arm a point to make the next ``skip``-skipped hits raise.
    """

    _armed: Dict[str, _Arming] = field(default_factory=dict)
    #: Times each point was reached (armed or not) — the crash matrix
    #: uses this to prove every point is actually exercised.
    hits: Dict[str, int] = field(default_factory=dict)

    @staticmethod
    def _check_point(point: str) -> None:
        if point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; registered points: "
                f"{sorted(FAULT_POINTS)}"
            )

    def arm(
        self,
        point: str,
        failure: Union[str, BaseException] = "crash",
        *,
        times: int = 1,
        skip: int = 0,
    ) -> None:
        """Make a fault point raise on its next (``skip``-skipped) hits.

        Args:
            point: a name from :data:`FAULT_POINTS`.
            failure: ``"crash"`` (raise :class:`CrashPoint`),
                ``"locked"`` (raise ``sqlite3.OperationalError:
                database is locked``), or an exception instance to
                raise as-is.
            times: raise on this many hits, then fall inert (pass a
                negative value to raise forever — the persistent-outage
                shape the degradation suite uses).
            skip: let this many hits pass unharmed first, so a fault
                can be planted mid-campaign.
        """
        self._check_point(point)
        if isinstance(failure, str) and failure not in FAILURE_MODES:
            raise ValueError(
                f"unknown failure mode {failure!r}; expected one of "
                f"{FAILURE_MODES} or an exception instance"
            )
        if times == 0:
            raise ValueError("times must be non-zero (negative = forever)")
        if skip < 0:
            raise ValueError("skip must be >= 0")
        self._armed[point] = _Arming(failure=failure, times=times, skip=skip)

    def disarm(self, point: Optional[str] = None) -> None:
        """Disarm one point, or every point when none is given."""
        if point is None:
            self._armed.clear()
            return
        self._check_point(point)
        self._armed.pop(point, None)

    def hit_count(self, point: str) -> int:
        """How many times a point was reached (armed or not)."""
        self._check_point(point)
        return self.hits.get(point, 0)

    def triggered(self, point: str) -> int:
        """How many times an arming at this point actually raised."""
        self._check_point(point)
        arming = self._armed.get(point)
        return arming.triggered if arming is not None else 0

    def fire(self, point: str) -> None:
        """Consulted by instrumented code: raise if the point is armed.

        Raises:
            CrashPoint: for the ``"crash"`` failure mode.
            sqlite3.OperationalError: for ``"locked"``.
            BaseException: an armed exception instance, as-is.
        """
        self._check_point(point)
        self.hits[point] = self.hits.get(point, 0) + 1
        arming = self._armed.get(point)
        if arming is None:
            return
        if arming.skip > 0:
            arming.skip -= 1
            return
        if arming.times >= 0 and arming.triggered >= arming.times:
            return
        arming.triggered += 1
        if isinstance(arming.failure, BaseException):
            raise arming.failure
        if arming.failure == "locked":
            raise sqlite3.OperationalError("database is locked")
        raise CrashPoint(point)


#: The process-global injector the instrumented code consults. Inert
#: until a test swaps it via :func:`injected` (or arms it directly).
_ACTIVE = FaultInjector()


def active() -> FaultInjector:
    """The currently installed injector."""
    return _ACTIVE


def fire(point: str) -> None:
    """Hit a fault point on the active injector (the instrumentation
    hook — a counter bump when nothing is armed)."""
    _ACTIVE.fire(point)


@contextmanager
def injected(
    injector: Optional[FaultInjector] = None,
) -> Iterator[FaultInjector]:
    """Install a fresh (or given) injector for the duration of a block.

    The previous injector — normally the inert default — is restored on
    exit, armed faults and hit counters included, so tests cannot leak
    faults into each other.
    """
    global _ACTIVE
    replacement = injector if injector is not None else FaultInjector()
    previous = _ACTIVE
    _ACTIVE = replacement
    try:
        yield replacement
    finally:
        _ACTIVE = previous
