"""Human Intelligence Tasks: batching and payment accounting.

AMT groups tasks into HITs; the paper batches k = 20 tasks per HIT and
pays $0.10 per completed HIT (Section 6.1). The HIT log records every
issued batch so experiments can audit assignment behaviour (who got what,
in which order) and compute spend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ValidationError

#: Payment per completed HIT in dollars (Section 6.1).
DEFAULT_REWARD_PER_HIT = 0.10


@dataclass(frozen=True)
class HIT:
    """One issued HIT.

    Attributes:
        hit_id: sequential id.
        worker_id: the worker it was assigned to.
        task_ids: the batched tasks, in benefit order.
        reward: payment on completion (dollars).
    """

    hit_id: int
    worker_id: str
    task_ids: Tuple[int, ...]
    reward: float = DEFAULT_REWARD_PER_HIT

    def __post_init__(self) -> None:
        if not self.task_ids:
            raise ValidationError("a HIT must contain at least one task")
        if self.reward < 0:
            raise ValidationError("reward must be non-negative")


class HITLog:
    """Append-only log of issued HITs with per-worker indexes."""

    def __init__(self) -> None:
        self._hits: List[HIT] = []
        self._by_worker: Dict[str, List[HIT]] = {}

    def issue(
        self,
        worker_id: str,
        task_ids: Sequence[int],
        reward: float = DEFAULT_REWARD_PER_HIT,
    ) -> HIT:
        """Record a new HIT and return it."""
        hit = HIT(
            hit_id=len(self._hits),
            worker_id=worker_id,
            task_ids=tuple(task_ids),
            reward=reward,
        )
        self._hits.append(hit)
        self._by_worker.setdefault(worker_id, []).append(hit)
        return hit

    def all(self) -> List[HIT]:
        """Every issued HIT, in order."""
        return list(self._hits)

    def for_worker(self, worker_id: str) -> List[HIT]:
        """HITs issued to one worker."""
        return list(self._by_worker.get(worker_id, []))

    def total_spend(self) -> float:
        """Dollars paid across all HITs."""
        return sum(h.reward for h in self._hits)

    def total_assignments(self) -> int:
        """Total task-assignment count across HITs."""
        return sum(len(h.task_ids) for h in self._hits)

    def __len__(self) -> int:
        return len(self._hits)
