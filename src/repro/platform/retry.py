"""Bounded retry with exponential backoff for transient SQLite errors.

SQLite serialises writers per file: when several campaigns export into
one shared worker store, or a journal flush races an external reader
holding the write lock, the losing connection sees
``sqlite3.OperationalError: database is locked`` (or ``... busy``).
That is contention, not corruption — the correct response is to back
off and retry, not to kill the campaign.

Two layers of defence are wired by the storage plane:

1. ``PRAGMA busy_timeout`` (per connection, from
   ``DocsConfig.busy_timeout_ms``) makes SQLite itself spin-wait below
   the statement, absorbing short lock windows with no Python
   involvement;
2. :class:`RetryPolicy` wraps the *whole transaction* and re-runs it on
   a transient error with bounded exponential backoff plus jitter —
   covering the windows the busy handler cannot (a deadlock-avoiding
   immediate abort, a writer that outlives the timeout).

Only errors recognised by :func:`is_transient` are retried; everything
else — integrity errors, corruption, an injected
:class:`repro.platform.faults.CrashPoint` — propagates on the first
throw.
"""

from __future__ import annotations

import logging
import random
import sqlite3
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, TypeVar

from repro.errors import ValidationError

logger = logging.getLogger(__name__)

T = TypeVar("T")

#: Message fragments marking a transient (retryable) SQLite error.
_TRANSIENT_MARKERS = ("database is locked", "database is busy")


def is_transient(exc: BaseException) -> bool:
    """Is this exception a retryable lock-contention signal?

    Only ``sqlite3.OperationalError`` whose message names the lock
    (``database is locked`` / ``database is busy``) qualifies; other
    operational errors (disk I/O, malformed file) are real failures.
    """
    return isinstance(exc, sqlite3.OperationalError) and any(
        marker in str(exc) for marker in _TRANSIENT_MARKERS
    )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter.

    Attempt ``k`` (0-based) sleeps ``min(base_delay * 2**k, max_delay)``
    scaled by a uniform jitter in ``[1 - jitter, 1 + jitter]`` before
    retrying; after ``attempts`` tries the last error propagates.

    Args:
        attempts: total tries, including the first (>= 1).
        base_delay: first backoff in seconds (>= 0; 0 = immediate
            retries, the deterministic test configuration).
        max_delay: backoff ceiling in seconds.
        jitter: fractional randomisation of each delay, in [0, 1) —
            de-synchronises campaigns that collided once from colliding
            on every retry after.
    """

    attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 1.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValidationError("retry attempts must be >= 1")
        if self.base_delay < 0:
            raise ValidationError("retry base_delay must be >= 0")
        if self.max_delay < self.base_delay:
            raise ValidationError(
                "retry max_delay must be >= base_delay"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValidationError("retry jitter must be in [0, 1)")

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """The backoff sequence (``attempts - 1`` sleeps), jittered."""
        rng = rng if rng is not None else random
        delay = self.base_delay
        for _ in range(self.attempts - 1):
            scale = 1.0
            if self.jitter > 0:
                scale = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield delay * scale
            delay = min(delay * 2.0, self.max_delay)

    def run(
        self,
        operation: Callable[[], T],
        *,
        description: str = "sqlite transaction",
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ) -> T:
        """Run ``operation`` until it succeeds or the budget is spent.

        ``operation`` must be safe to re-run from scratch — the storage
        plane passes whole transactions (roll back + restore in-memory
        cursors on failure) so a retry replays the identical work.

        Args:
            operation: the transaction body.
            description: named in the retry log lines.
            sleep: injectable for tests (defaults to ``time.sleep``).
            rng: injectable jitter source.

        Returns:
            ``operation()``'s result.

        Raises:
            BaseException: the first non-transient error immediately,
                or the last transient error once attempts are spent.
        """
        backoffs = self.delays(rng)
        for attempt in range(1, self.attempts + 1):
            try:
                return operation()
            except sqlite3.OperationalError as exc:
                if not is_transient(exc) or attempt >= self.attempts:
                    raise
                delay = next(backoffs)
                logger.warning(
                    "%s hit lock contention (attempt %d/%d): %s; "
                    "retrying in %.3fs",
                    description, attempt, self.attempts, exc, delay,
                )
                if delay > 0:
                    sleep(delay)
        raise AssertionError("unreachable: retry loop always returns")


#: Policy used when a caller passes none: a handful of attempts, sub-
#: second total budget — enough for checkpoint-length lock windows.
DEFAULT_POLICY = RetryPolicy()


def apply_busy_timeout(
    conn: sqlite3.Connection, busy_timeout_ms: int
) -> None:
    """Wire ``PRAGMA busy_timeout`` onto a connection.

    Args:
        conn: the connection.
        busy_timeout_ms: milliseconds SQLite spin-waits on a lock below
            the statement before surfacing ``database is locked`` (0
            surfaces contention immediately — the configuration the
            retry-policy tests use to exercise the Python-level loop).
    """
    if busy_timeout_ms < 0:
        raise ValidationError("busy_timeout_ms must be >= 0")
    conn.execute(f"PRAGMA busy_timeout = {int(busy_timeout_ms)}")
