"""TwitterLDA — the short-text topic model used by FaitCrowd [30].

Differences from vanilla LDA (following Zhao et al. [51]):

- each *document* has exactly one topic (short texts are topically pure);
- each token is either a background word or a topic word, governed by a
  Bernoulli switch with prior ``gamma``.

Collapsed Gibbs alternates sampling the per-document topic (conditioned
on its topic-word assignments) and the per-token background switches. The
per-document topic posterior is FaitCrowd's latent-domain signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.topics.vocabulary import Vocabulary
from repro.utils.rng import SeedLike, make_rng


@dataclass
class TwitterLDAResult:
    """Fitted TwitterLDA parameters.

    Attributes:
        document_topics: shape (D, K); posterior topic distribution per
            document (from the final sweeps' samples).
        topic_words: shape (K, V) topic-word distributions.
        background_words: shape (V,) background word distribution.
    """

    document_topics: np.ndarray
    topic_words: np.ndarray
    background_words: np.ndarray

    def dominant_topic(self, doc_index: int) -> int:
        """The argmax topic of one document."""
        return int(np.argmax(self.document_topics[doc_index]))


class TwitterLDA:
    """Collapsed-Gibbs TwitterLDA.

    Args:
        num_topics: K latent domains.
        alpha: topic prior.
        beta: word prior (topic and background).
        gamma: Beta prior of the background/topic switch.
        iterations: Gibbs sweeps.
        burn_in: sweeps discarded before accumulating the per-document
            topic posterior.
        seed: RNG seed.
    """

    def __init__(
        self,
        num_topics: int,
        alpha: float = 0.5,
        beta: float = 0.1,
        gamma: float = 1.0,
        iterations: int = 150,
        burn_in: int = 50,
        seed: SeedLike = 0,
    ):
        if num_topics < 1:
            raise ValidationError(f"num_topics must be >= 1: {num_topics}")
        if min(alpha, beta, gamma) <= 0:
            raise ValidationError("alpha, beta, gamma must be positive")
        if iterations < 1 or burn_in < 0 or burn_in >= iterations:
            raise ValidationError(
                "need iterations >= 1 and 0 <= burn_in < iterations"
            )
        self._K = num_topics
        self._alpha = alpha
        self._beta = beta
        self._gamma = gamma
        self._iterations = iterations
        self._burn_in = burn_in
        self._seed = seed

    def fit(
        self, texts: Sequence[str], vocabulary: Optional[Vocabulary] = None
    ) -> TwitterLDAResult:
        """Fit on a corpus; returns per-document topic posteriors."""
        rng = make_rng(self._seed)
        vocab = vocabulary or Vocabulary.from_texts(texts)
        docs = [vocab.encode(text) for text in texts]
        D = len(docs)
        V = max(vocab.size, 1)
        K = self._K

        doc_topic = rng.integers(0, K, size=D)
        switches = [rng.random(len(doc)) < 0.5 for doc in docs]

        n_topic_docs = np.zeros(K, dtype=np.int64)       # docs per topic
        n_tw = np.zeros((K, V), dtype=np.int64)          # topic word counts
        n_t = np.zeros(K, dtype=np.int64)
        n_bw = np.zeros(V, dtype=np.int64)               # background counts
        n_b = 0
        n_topic_tokens = 0

        for d, doc in enumerate(docs):
            t = doc_topic[d]
            n_topic_docs[t] += 1
            for pos, w in enumerate(doc):
                if switches[d][pos]:
                    n_tw[t, w] += 1
                    n_t[t] += 1
                    n_topic_tokens += 1
                else:
                    n_bw[w] += 1
                    n_b += 1

        topic_posterior = np.zeros((D, K))
        samples = 0
        for sweep in range(self._iterations):
            for d, doc in enumerate(docs):
                t_old = doc_topic[d]
                topic_words = [
                    w for pos, w in enumerate(doc) if switches[d][pos]
                ]
                # Remove the document's topic-word counts and doc count.
                n_topic_docs[t_old] -= 1
                for w in topic_words:
                    n_tw[t_old, w] -= 1
                    n_t[t_old] -= 1
                # Sample the document topic: prior x word likelihood, in
                # log space because documents contribute many factors.
                log_weights = np.log(n_topic_docs + self._alpha)
                for w in topic_words:
                    log_weights += np.log(
                        (n_tw[:, w] + self._beta) / (n_t + V * self._beta)
                    )
                    # Sequential addition approximates the exact
                    # count-incremented likelihood; exact for distinct
                    # words, standard practice for repeated ones.
                log_weights -= log_weights.max()
                weights = np.exp(log_weights)
                t_new = int(rng.choice(K, p=weights / weights.sum()))
                doc_topic[d] = t_new
                n_topic_docs[t_new] += 1
                for w in topic_words:
                    n_tw[t_new, w] += 1
                    n_t[t_new] += 1

                # Resample background/topic switches for this document.
                t = t_new
                for pos, w in enumerate(doc):
                    if switches[d][pos]:
                        n_tw[t, w] -= 1
                        n_t[t] -= 1
                        n_topic_tokens -= 1
                    else:
                        n_bw[w] -= 1
                        n_b -= 1
                    p_topic = (
                        (n_topic_tokens + self._gamma)
                        * (n_tw[t, w] + self._beta)
                        / (n_t[t] + V * self._beta)
                    )
                    p_background = (
                        (n_b + self._gamma)
                        * (n_bw[w] + self._beta)
                        / (n_b + V * self._beta)
                    )
                    total = p_topic + p_background
                    is_topic = rng.random() < (p_topic / total)
                    switches[d][pos] = is_topic
                    if is_topic:
                        n_tw[t, w] += 1
                        n_t[t] += 1
                        n_topic_tokens += 1
                    else:
                        n_bw[w] += 1
                        n_b += 1

            if sweep >= self._burn_in:
                topic_posterior[np.arange(D), doc_topic] += 1.0
                samples += 1

        if samples == 0:
            topic_posterior[np.arange(D), doc_topic] = 1.0
            samples = 1
        theta = (topic_posterior + self._alpha) / (
            samples + K * self._alpha
        )
        theta /= theta.sum(axis=1, keepdims=True)
        phi = (n_tw + self._beta) / (
            n_tw.sum(axis=1, keepdims=True) + V * self._beta
        )
        background = (n_bw + self._beta) / (n_b + V * self._beta)
        return TwitterLDAResult(
            document_topics=theta,
            topic_words=phi,
            background_words=background,
        )
