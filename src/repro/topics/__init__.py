"""Topic-model substrates for the competitor methods.

The paper's competitors detect task domains with topic models over the
task *text only*:

- iCrowd [18] uses LDA [6];
- FaitCrowd [30] uses TwitterLDA [51], an LDA variant suited to short
  texts (one topic per document plus a background-word switch).

Both are implemented from scratch with collapsed Gibbs sampling. They are
full implementations — Figure 3's comparison is only meaningful if the
competitors' domain detectors are real.
"""

from repro.topics.vocabulary import Vocabulary
from repro.topics.lda import LatentDirichletAllocation, LDAResult
from repro.topics.twitter_lda import TwitterLDA, TwitterLDAResult

__all__ = [
    "Vocabulary",
    "LatentDirichletAllocation",
    "LDAResult",
    "TwitterLDA",
    "TwitterLDAResult",
]
