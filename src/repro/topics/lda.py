"""Latent Dirichlet Allocation via collapsed Gibbs sampling.

This is the LDA [6] used by iCrowd [18] to learn a latent domain
distribution per task from the task text alone. Standard collapsed Gibbs:
sample each token's topic from

    p(z = t | rest) ∝ (n_dt + alpha) * (n_tw + beta) / (n_t + V * beta)

and estimate theta (document-topic) and phi (topic-word) from the final
counts. The per-document theta is the "domain vector w.r.t. latent
domains" that Figure 3 evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.topics.vocabulary import Vocabulary
from repro.utils.rng import SeedLike, make_rng


@dataclass
class LDAResult:
    """Fitted LDA parameters.

    Attributes:
        document_topics: theta, shape (D, K); row d is document d's topic
            distribution.
        topic_words: phi, shape (K, V); row t is topic t's word
            distribution.
        log_likelihood_trace: per-sweep corpus log likelihood (coarse, for
            convergence inspection).
    """

    document_topics: np.ndarray
    topic_words: np.ndarray
    log_likelihood_trace: List[float]

    def dominant_topic(self, doc_index: int) -> int:
        """The argmax topic of one document."""
        return int(np.argmax(self.document_topics[doc_index]))


class LatentDirichletAllocation:
    """Collapsed-Gibbs LDA.

    Args:
        num_topics: K, the number of latent domains (the paper sets this
            manually per dataset to favour the competitors, e.g. 4).
        alpha: document-topic Dirichlet prior.
        beta: topic-word Dirichlet prior.
        iterations: Gibbs sweeps.
        seed: RNG seed.
    """

    def __init__(
        self,
        num_topics: int,
        alpha: float = 0.5,
        beta: float = 0.1,
        iterations: int = 150,
        seed: SeedLike = 0,
    ):
        if num_topics < 1:
            raise ValidationError(f"num_topics must be >= 1: {num_topics}")
        if alpha <= 0 or beta <= 0:
            raise ValidationError("alpha and beta must be positive")
        if iterations < 1:
            raise ValidationError("iterations must be >= 1")
        self._K = num_topics
        self._alpha = alpha
        self._beta = beta
        self._iterations = iterations
        self._seed = seed

    def fit(
        self, texts: Sequence[str], vocabulary: Optional[Vocabulary] = None
    ) -> LDAResult:
        """Fit the model on a corpus of task texts.

        Returns:
            An :class:`LDAResult` with per-document topic distributions.
        """
        rng = make_rng(self._seed)
        vocab = vocabulary or Vocabulary.from_texts(texts)
        docs = [vocab.encode(text) for text in texts]
        V = max(vocab.size, 1)
        K = self._K

        n_dt = np.zeros((len(docs), K), dtype=np.int64)
        n_tw = np.zeros((K, V), dtype=np.int64)
        n_t = np.zeros(K, dtype=np.int64)
        assignments: List[np.ndarray] = []
        for d, doc in enumerate(docs):
            z = rng.integers(0, K, size=len(doc))
            assignments.append(z)
            for w, t in zip(doc, z):
                n_dt[d, t] += 1
                n_tw[t, w] += 1
                n_t[t] += 1

        trace: List[float] = []
        for _ in range(self._iterations):
            for d, doc in enumerate(docs):
                z = assignments[d]
                for pos, w in enumerate(doc):
                    t = z[pos]
                    n_dt[d, t] -= 1
                    n_tw[t, w] -= 1
                    n_t[t] -= 1
                    weights = (
                        (n_dt[d] + self._alpha)
                        * (n_tw[:, w] + self._beta)
                        / (n_t + V * self._beta)
                    )
                    t_new = _sample_index(weights, rng)
                    z[pos] = t_new
                    n_dt[d, t_new] += 1
                    n_tw[t_new, w] += 1
                    n_t[t_new] += 1
            trace.append(self._log_likelihood(docs, n_dt, n_tw, n_t, V))

        theta = (n_dt + self._alpha) / (
            n_dt.sum(axis=1, keepdims=True) + K * self._alpha
        )
        phi = (n_tw + self._beta) / (
            n_tw.sum(axis=1, keepdims=True) + V * self._beta
        )
        return LDAResult(
            document_topics=theta,
            topic_words=phi,
            log_likelihood_trace=trace,
        )

    def _log_likelihood(
        self,
        docs: List[List[int]],
        n_dt: np.ndarray,
        n_tw: np.ndarray,
        n_t: np.ndarray,
        V: int,
    ) -> float:
        """Coarse corpus log likelihood under the current point estimate."""
        theta = (n_dt + self._alpha) / (
            n_dt.sum(axis=1, keepdims=True) + self._K * self._alpha
        )
        phi = (n_tw + self._beta) / (n_t[:, None] + V * self._beta)
        total = 0.0
        for d, doc in enumerate(docs):
            if not doc:
                continue
            word_probs = theta[d] @ phi[:, doc]
            total += float(np.sum(np.log(np.clip(word_probs, 1e-300, None))))
        return total


def _sample_index(weights: np.ndarray, rng: np.random.Generator) -> int:
    """Sample an index proportionally to non-negative weights."""
    total = weights.sum()
    if total <= 0:
        return int(rng.integers(0, weights.size))
    return int(rng.choice(weights.size, p=weights / total))
