"""Token <-> integer-id vocabulary for topic models."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.errors import ValidationError
from repro.utils.text import content_tokens


class Vocabulary:
    """A bidirectional token index built from a corpus.

    Args:
        min_count: tokens rarer than this across the corpus are dropped
            (reduces noise from one-off entity fragments).
    """

    def __init__(self, min_count: int = 1):
        if min_count < 1:
            raise ValidationError(f"min_count must be >= 1: {min_count}")
        self._min_count = min_count
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []

    @classmethod
    def from_texts(
        cls, texts: Sequence[str], min_count: int = 1
    ) -> "Vocabulary":
        """Build a vocabulary from raw task texts (stopwords removed)."""
        counts: Dict[str, int] = {}
        for text in texts:
            for token in content_tokens(text):
                counts[token] = counts.get(token, 0) + 1
        vocab = cls(min_count=min_count)
        for token in sorted(counts):
            if counts[token] >= min_count:
                vocab._add(token)
        return vocab

    def _add(self, token: str) -> int:
        if token in self._token_to_id:
            return self._token_to_id[token]
        idx = len(self._id_to_token)
        self._token_to_id[token] = idx
        self._id_to_token.append(token)
        return idx

    @property
    def size(self) -> int:
        """Number of distinct tokens."""
        return len(self._id_to_token)

    def encode(self, text: str) -> List[int]:
        """Token ids of the in-vocabulary content tokens of ``text``."""
        return [
            self._token_to_id[token]
            for token in content_tokens(text)
            if token in self._token_to_id
        ]

    def token(self, token_id: int) -> str:
        """Token string for an id."""
        if not 0 <= token_id < self.size:
            raise ValidationError(f"token id {token_id} out of range")
        return self._id_to_token[token_id]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return self.size
