"""Exception hierarchy for the DOCS reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing configuration problems from runtime budget exhaustion.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """An input failed validation (bad shape, range, or inconsistency)."""


class ConfigurationError(ReproError):
    """A component was configured with incompatible or missing options."""


class BudgetExhaustedError(ReproError):
    """The assignment budget has been fully consumed."""


class WorkBudgetExceeded(ReproError):
    """A capped computation (e.g. enumeration DVE) exceeded its work budget.

    The paper reports ">1 day" for enumeration at top-20 candidates; we make
    that behaviour explicit and testable with a deterministic work counter.
    """

    def __init__(self, operations: int, limit: int):
        super().__init__(
            f"work budget exceeded: {operations} elementary operations "
            f"performed, limit was {limit}"
        )
        self.operations = operations
        self.limit = limit


class JournalCorruptionError(ReproError):
    """The durable answer journal failed its integrity check.

    Raised when :class:`repro.platform.journal.AnswerJournal` finds rows
    that do not belong to a committed batch (a torn final write), a batch
    whose recorded row count or checksum disagrees with its rows, or a
    journal that contradicts the task catalogue. The message names the
    offending batch and the remediation (restore from backup, or drop
    the dangling rows to fall back to the last consistent checkpoint).
    """


class SchemaVersionError(ReproError):
    """A durable file was written by a newer schema than this build.

    Raised when a campaign database or shared worker store carries a
    ``repro_meta`` schema version above what this code supports:
    decoding newer layouts blind would crash (or worse, silently
    misread) — the error names both versions so the operator knows to
    upgrade the code, not to repair the file.

    Attributes:
        found: the schema version stored in the file.
        supported: the highest version this build reads.
    """

    def __init__(self, path: str, found: int, supported: int):
        super().__init__(
            f"database at {path!r} was written by schema version "
            f"{found}, but this build supports versions up to "
            f"{supported}; upgrade the code to open it (the file is "
            "intact — do not edit it)"
        )
        self.found = found
        self.supported = supported


class ServingPoolError(ReproError):
    """The multi-process serving pool can no longer serve requests.

    Raised by :class:`repro.system.parallel.ServingPool` when a worker
    process died (crash, kill) or the pool was closed under a caller.
    The assignment path treats it as a degradation signal: it detaches
    the pool and keeps serving single-process — picks are identical
    either way, only the parallelism is lost.
    """


class UnknownWorkerError(ValidationError, KeyError):
    """A worker id was not found where a known worker was required.

    A :class:`ValidationError` (so one ``except`` clause covers every
    bad-input failure, and the HTTP service maps it to 404) that also
    remains a ``KeyError`` for callers of the historical lookup
    surface. The message names the id and the remediation instead of
    ``KeyError``'s bare ``'<id>'`` repr.

    Attributes:
        worker_id: the id that failed to resolve.
    """

    def __init__(self, worker_id: str, context: str = ""):
        detail = f" {context}" if context else ""
        # Bypass KeyError.__str__ (which reprs the single argument) by
        # storing the full message as the sole argument.
        super().__init__(
            f"unknown worker id {worker_id!r}{detail}"
        )
        self.worker_id = worker_id

    def __str__(self) -> str:
        return self.args[0]


class UnknownTaskError(ValidationError, KeyError):
    """A task id was not found in the task table.

    Like :class:`UnknownWorkerError`: a :class:`ValidationError` first
    (the HTTP service maps it to 404), a ``KeyError`` for
    compatibility, with a message naming the id rather than
    ``KeyError``'s bare repr.

    Attributes:
        task_id: the id that failed to resolve.
    """

    def __init__(self, task_id, context: str = ""):
        detail = f" {context}" if context else ""
        super().__init__(
            f"unknown task id {task_id!r}{detail}; the task was never "
            "ingested — check the id, or add it with add_tasks()"
        )
        self.task_id = task_id

    def __str__(self) -> str:
        return self.args[0]
