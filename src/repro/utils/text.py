"""Lightweight text processing shared by the entity linker and topic models.

The paper contrasts *string similarity* (Jaccard, used implicitly by
LDA-style methods that only see surface text) with *semantic* linking
through a knowledge base. This module provides the tokenizer, the Jaccard
and cosine similarities, and n-gram extraction used by mention detection.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, Iterable, List, Sequence, Set, Tuple

_TOKEN_RE = re.compile(r"[a-z0-9']+")

#: Common English function words ignored by mention detection and topic
#: models. Deliberately small: the synthetic datasets use a controlled
#: vocabulary, so an exhaustive list is unnecessary.
STOPWORDS: Set[str] = {
    "a", "an", "the", "of", "in", "on", "at", "to", "for", "and", "or",
    "is", "are", "was", "were", "be", "been", "does", "do", "did", "has",
    "have", "had", "more", "most", "than", "which", "who", "whom", "whose",
    "what", "where", "when", "why", "how", "between", "with", "from", "by",
    "that", "this", "these", "those", "it", "its", "their", "there", "ever",
    "not", "no", "yes",
}


def tokenize(text: str) -> List[str]:
    """Lowercase word tokens of ``text`` (alphanumerics and apostrophes)."""
    return _TOKEN_RE.findall(text.lower())


def content_tokens(text: str) -> List[str]:
    """Tokens of ``text`` with stopwords removed."""
    return [tok for tok in tokenize(text) if tok not in STOPWORDS]


def jaccard_similarity(left: str, right: str) -> float:
    """Jaccard similarity between the token sets of two strings.

    This is the similarity the paper's introduction uses to show why surface
    text misleads domain classification ("Stephen Curry vs Mount Everest").
    """
    a, b = set(tokenize(left)), set(tokenize(right))
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


def cosine_similarity(left: Sequence[str], right: Sequence[str]) -> float:
    """Cosine similarity between two bags of tokens."""
    ca, cb = Counter(left), Counter(right)
    return cosine_from_counts(ca, bag_norm(ca), cb, bag_norm(cb))


def bag_norm(counts: Dict[str, int]) -> float:
    """Euclidean norm of a term-frequency bag."""
    return sum(v * v for v in counts.values()) ** 0.5


def cosine_from_counts(
    ca: Dict[str, int], norm_a: float, cb: Dict[str, int], norm_b: float
) -> float:
    """Cosine similarity from precomputed bags and norms.

    The batch linking path scores one context against many cached
    candidate descriptions; callers precompute each side's ``Counter``
    and :func:`bag_norm` once instead of per pair.
    """
    if not ca or not cb:
        return 0.0
    common = set(ca) & set(cb)
    dot = sum(ca[t] * cb[t] for t in common)
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)


def ngrams(tokens: Sequence[str], max_n: int) -> Iterable[Tuple[int, int, str]]:
    """Yield ``(start, length, phrase)`` for every n-gram up to ``max_n``.

    Longer n-grams are yielded before shorter ones at the same start so a
    greedy longest-match mention detector can take the first hit.
    """
    count = len(tokens)
    for start in range(count):
        for length in range(min(max_n, count - start), 0, -1):
            yield start, length, " ".join(tokens[start:start + length])


def term_frequencies(tokens: Iterable[str]) -> Dict[str, int]:
    """Term-frequency dictionary of a token stream."""
    return dict(Counter(tokens))
