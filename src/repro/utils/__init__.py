"""Shared numeric, text, and selection utilities."""

from repro.utils.math import (
    entropy,
    kl_divergence,
    normalize,
    safe_log,
    uniform_distribution,
)
from repro.utils.topk import top_k_indices
from repro.utils.rng import make_rng, spawn_rngs

__all__ = [
    "entropy",
    "kl_divergence",
    "normalize",
    "safe_log",
    "uniform_distribution",
    "top_k_indices",
    "make_rng",
    "spawn_rngs",
]
