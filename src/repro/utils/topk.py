"""Linear-time top-k selection.

Section 5.1 selects the k tasks with the highest benefit using a
linear-time selection algorithm (the paper cites PICK / BFPRT [7]). NumPy's
``argpartition`` uses introselect, which gives the same O(n) bound, so the
assignment loop stays linear in the number of tasks regardless of k.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError


def top_k_indices(values: Sequence[float], k: int) -> np.ndarray:
    """Indices of the ``k`` largest values, in descending value order.

    Uses O(n) selection (``argpartition``) followed by an O(k log k) sort of
    only the selected block, matching the complexity claimed in the paper
    for OTA. Ties are broken by ascending index for determinism.

    Args:
        values: scores to select from.
        k: number of items to select; clamped behaviour is *not* provided —
            ``k`` larger than ``len(values)`` is an error so callers notice
            exhausted task pools.

    Returns:
        ``np.ndarray`` of ``k`` integer indices.
    """
    arr = np.asarray(values, dtype=float)
    if k < 0:
        raise ValidationError(f"k must be non-negative, got {k}")
    if k > arr.size:
        raise ValidationError(
            f"cannot select top {k} from {arr.size} values"
        )
    if k == 0:
        return np.empty(0, dtype=int)
    if k == arr.size:
        selected = np.arange(arr.size)
    else:
        partitioned = np.argpartition(arr, arr.size - k)[arr.size - k:]
        # argpartition picks arbitrary members among values tied at the
        # selection threshold; re-resolve the boundary so ties always go
        # to the lowest indices (deterministic contract).
        threshold = arr[partitioned].min()
        above = np.flatnonzero(arr > threshold)
        need = k - above.size
        at_threshold = np.flatnonzero(arr == threshold)[:need]
        selected = np.concatenate([above, at_threshold])
    # Sort the selected block: primary key descending value, secondary key
    # ascending index (lexsort's last key is primary).
    order = np.lexsort((selected, -arr[selected]))
    return selected[order]
