"""Deterministic random-number streams.

Every stochastic component (KB generation, dataset synthesis, worker pools,
answer simulation) takes an explicit seed or ``numpy.random.Generator`` so
experiments are exactly reproducible. ``spawn_rngs`` derives independent
child streams from one seed, so e.g. the worker pool and the dataset
generator never share a stream even when built from the same experiment
seed.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed or pass one through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = make_rng(seed)
    return [
        np.random.default_rng(s)
        for s in parent.spawn(count)
    ] if hasattr(parent, "spawn") else [
        np.random.default_rng(parent.integers(0, 2**63 - 1))
        for _ in range(count)
    ]
