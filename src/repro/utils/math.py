"""Numeric primitives used across DVE, TI, and OTA.

The paper leans on three pieces of information theory:

- Shannon entropy ``H(s) = -sum_j s_j ln s_j`` measures how ambiguous a
  task's probabilistic truth is (Section 5.1).
- KL divergence ``D(sigma, tau)`` scores golden-task allocations
  (Section 5.2, Eq. 11).
- Distribution normalisation appears everywhere a vector of non-negative
  weights must become a probability distribution.

All functions accept array-likes and are safe at the boundaries (zero
probabilities contribute zero entropy; empty vectors are rejected).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.errors import ValidationError

ArrayLike = Union[Sequence[float], np.ndarray]

#: Probabilities below this threshold are treated as exactly zero when
#: computing ``p * ln p`` terms, avoiding ``-inf`` from rounding noise.
_EPS = 1e-300


def safe_log(x: ArrayLike) -> np.ndarray:
    """Elementwise natural log that maps zeros to zero-contribution values.

    Returns ``ln(max(x, tiny))`` so that ``x * safe_log(x)`` is exactly zero
    where ``x == 0``; callers must multiply by ``x`` for that guarantee.
    """
    arr = np.asarray(x, dtype=float)
    return np.log(np.maximum(arr, _EPS))


def entropy(distribution: ArrayLike) -> float:
    """Shannon entropy (natural log) of a probability distribution.

    ``H(s) = -sum_j s_j ln s_j`` with the convention ``0 ln 0 = 0``.

    Raises:
        ValidationError: if the vector is empty, has negative entries, or
            does not sum to ~1.
    """
    s = np.asarray(distribution, dtype=float)
    if s.size == 0:
        raise ValidationError("entropy of an empty distribution is undefined")
    if np.any(s < -1e-12):
        raise ValidationError(f"negative probability in distribution: {s}")
    total = float(s.sum())
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValidationError(f"distribution sums to {total}, expected 1.0")
    s = np.clip(s, 0.0, 1.0)
    return float(-np.sum(s * safe_log(s)))


def entropy_unchecked(distribution: np.ndarray) -> float:
    """Entropy without validation, for hot loops that guarantee inputs."""
    s = distribution
    return float(-np.sum(s * safe_log(s)))


def kl_divergence(sigma: ArrayLike, tau: ArrayLike) -> float:
    """KL divergence ``D(sigma || tau) = sum_i sigma_i ln(sigma_i / tau_i)``.

    Follows the golden-task objective of Eq. 11: terms with ``sigma_i == 0``
    contribute zero. A ``tau_i == 0`` with ``sigma_i > 0`` yields ``inf``.
    """
    p = np.asarray(sigma, dtype=float)
    q = np.asarray(tau, dtype=float)
    if p.shape != q.shape:
        raise ValidationError(
            f"distribution shapes differ: {p.shape} vs {q.shape}"
        )
    if p.size == 0:
        raise ValidationError("KL divergence of empty distributions")
    mask = p > 0
    if np.any(q[mask] <= 0):
        return float("inf")
    return float(np.sum(p[mask] * (np.log(p[mask]) - np.log(q[mask]))))


def normalize(weights: ArrayLike) -> np.ndarray:
    """Scale non-negative weights into a probability distribution.

    Raises:
        ValidationError: on negative weights or an all-zero vector.
    """
    w = np.asarray(weights, dtype=float)
    if w.size == 0:
        raise ValidationError("cannot normalise an empty vector")
    if np.any(w < -1e-12):
        raise ValidationError(f"negative weight in vector: {w}")
    w = np.clip(w, 0.0, None)
    total = w.sum()
    if total <= 0:
        raise ValidationError("cannot normalise an all-zero vector")
    return w / total


def uniform_distribution(size: int) -> np.ndarray:
    """The uniform distribution over ``size`` outcomes."""
    if size <= 0:
        raise ValidationError(f"distribution size must be positive: {size}")
    return np.full(size, 1.0 / size)


def is_distribution(vector: ArrayLike, atol: float = 1e-6) -> bool:
    """True if ``vector`` is a valid probability distribution."""
    v = np.asarray(vector, dtype=float)
    if v.size == 0:
        return False
    return bool(np.all(v >= -atol) and np.isclose(v.sum(), 1.0, atol=atol))
