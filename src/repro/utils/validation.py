"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.utils.math import is_distribution


def require_positive(value: int, name: str) -> int:
    """Return ``value`` if strictly positive, else raise."""
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Return ``value`` if >= 0, else raise."""
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value}")
    return value


def require_in_unit_interval(value: float, name: str) -> float:
    """Return ``value`` if in [0, 1], else raise."""
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value}")
    return value


def require_distribution(vector: Sequence[float], name: str) -> np.ndarray:
    """Return ``vector`` as an array if it is a probability distribution."""
    arr = np.asarray(vector, dtype=float)
    if not is_distribution(arr):
        raise ValidationError(
            f"{name} must be a probability distribution, got {arr!r}"
        )
    return arr


def require_choice_index(value: int, num_choices: int, name: str) -> int:
    """Validate a 1-based answer index against the task's choice count.

    The paper indexes answers ``1 <= v <= l_ti``; we keep that convention in
    public interfaces and convert to 0-based internally.
    """
    if not 1 <= value <= num_choices:
        raise ValidationError(
            f"{name} must be in [1, {num_choices}], got {value}"
        )
    return value
