"""repro — a from-scratch reproduction of DOCS (VLDB 2016).

DOCS is a domain-aware crowdsourcing system with three modules:

- :mod:`repro.core.dve` — Domain Vector Estimation (Algorithm 1),
- :mod:`repro.core.truth_inference` — iterative Truth Inference,
- :mod:`repro.core.assignment` — Online Task Assignment (entropy benefit).

Everything the paper depends on is implemented here as well: a synthetic
knowledge base (:mod:`repro.kb`), an entity linker (:mod:`repro.linking`),
topic-model substrates for the competitors (:mod:`repro.topics`), the full
competitor suite (:mod:`repro.baselines`), a simulated crowd and platform
(:mod:`repro.crowd`, :mod:`repro.platform`), dataset generators mirroring
the paper's four real datasets (:mod:`repro.datasets`), and the end-to-end
system facade (:mod:`repro.system`).

Quickstart::

    from repro.datasets import make_dataset
    from repro.system import DocsConfig, run_campaign

    dataset = make_dataset("4d", seed=7)
    result = run_campaign(dataset, config=DocsConfig(seed=7))
    print(result.accuracy())

See ``README.md`` for install and durable (sqlite) campaigns, and
``docs/architecture.md`` / ``docs/api.md`` for the system's design and
public surface.
"""

from repro.version import __version__, PAPER_REFERENCE

__all__ = ["__version__", "PAPER_REFERENCE"]
