"""Version metadata for the DOCS reproduction package."""

__version__ = "1.0.0"

#: Bibliographic reference of the reproduced paper.
PAPER_REFERENCE = (
    "Yudian Zheng, Guoliang Li, Reynold Cheng. "
    "DOCS: Domain-Aware Crowdsourcing System. PVLDB 10(4): 361-372, 2016."
)
