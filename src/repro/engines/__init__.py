"""The unified engine plane.

Every inference engine — the production DOCS serving core, the paper's
Figure 8 competitors, and new contenders — implements one abstraction:
:class:`repro.engines.base.Engine` (prepare / golden_task_ids /
needs_bootstrap / bootstrap / assign / submit / finalize, plus optional
capability hooks for durability and batching). The registry maps short
names to factories, so the simulator, the campaign shell
(:class:`repro.system.DocsSystem` with ``DocsConfig.engine``), the CLI
(``repro run --engine`` / ``repro engines``), the HTTP service, and the
cross-engine arena harness (``benchmarks/bench_engines.py``) all speak
to engines the same way.
"""

from repro.engines.base import (
    CAP_BATCH_ASSIGN,
    CAP_HOT_STATE,
    CAP_LIVE_GROWTH,
    UNINFORMED_DEFAULT_CHOICE,
    Engine,
    TableEngine,
)
from repro.engines.registry import (
    ENGINES,
    EngineSpec,
    engine_names,
    make_engine,
    register_engine,
)

__all__ = [
    "CAP_BATCH_ASSIGN",
    "CAP_HOT_STATE",
    "CAP_LIVE_GROWTH",
    "UNINFORMED_DEFAULT_CHOICE",
    "Engine",
    "TableEngine",
    "ENGINES",
    "EngineSpec",
    "engine_names",
    "make_engine",
    "register_engine",
]
