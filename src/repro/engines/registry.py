"""The engine registry: short names -> engine factories.

Every entry builds a ready-to-``prepare`` :class:`repro.engines.Engine`
from a seed and an optional :class:`repro.system.DocsConfig`. The same
names work everywhere an engine can be named: ``DocsConfig.engine`` (the
campaign shell), ``repro run --engine`` / ``repro engines`` (the CLI),
the service's campaign-create ``engine`` field, and
``benchmarks/bench_engines.py`` (the arena harness).

Factories import their engine modules lazily so the registry can be
imported from anywhere in the package without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.engines.base import Engine
from repro.errors import ValidationError


@dataclass(frozen=True)
class EngineSpec:
    """One registry entry.

    Attributes:
        name: the registry key (``repro engines`` lists these).
        summary: one-line description for listings.
        factory: ``factory(seed, config)`` -> a fresh engine. ``config``
            is an optional :class:`repro.system.DocsConfig`; factories
            that don't consume it must still accept it.
    """

    name: str
    summary: str
    factory: Callable[[int, Optional[object]], Engine]


def _docs_config(seed: int, config, **overrides):
    from dataclasses import replace

    from repro.system.config import DocsConfig

    base = config if config is not None else DocsConfig(seed=seed)
    return replace(base, **overrides) if overrides else base


def _make_docs(seed: int, config) -> Engine:
    from repro.engines.docs import DocsEngine

    return DocsEngine(_docs_config(seed, config))


def _make_oracle(seed: int, config) -> Engine:
    from repro.engines.docs import DocsEngine

    # The retained brute-force oracle: the same DOCS kernels with the
    # AssignmentIndex/ServingPool ladder disabled, so every arrival is
    # a full-pool Eq. 8 evaluation. Picks must be bit-identical to the
    # "docs" entry — the equivalence gate every serving optimisation
    # regresses against.
    engine = DocsEngine(
        _docs_config(seed, config, serve_index=False, workers=0)
    )
    engine.name = "DOCS-oracle"
    return engine


def _make_random(seed: int, config) -> Engine:
    from repro.baselines.engines import RandomBaselineEngine

    return RandomBaselineEngine(seed=seed)


def _make_askit(seed: int, config) -> Engine:
    from repro.baselines.engines import AskItEngine

    return AskItEngine()


def _make_icrowd(seed: int, config) -> Engine:
    from repro.baselines.engines import ICrowdEngine

    return ICrowdEngine()


def _make_qasca(seed: int, config) -> Engine:
    from repro.baselines.engines import QascaEngine

    return QascaEngine()


def _make_dmax(seed: int, config) -> Engine:
    from repro.baselines.engines import DMaxEngine

    return DMaxEngine()


def _make_batched_em(seed: int, config) -> Engine:
    from repro.engines.batched import BatchedEMEngine

    return BatchedEMEngine(seed=seed)


def _truth_backed(method_name: str):
    def factory(seed: int, config) -> Engine:
        from repro.engines.adapters import TruthMethodEngine

        return TruthMethodEngine(method_name, seed=seed)

    return factory


ENGINES: Dict[str, EngineSpec] = {
    "docs": EngineSpec(
        "docs",
        "DOCS serving core: DVE + incremental TI + Eq. 8 OTA over the "
        "arena, with the AssignmentIndex/ServingPool ladder",
        _make_docs,
    ),
    "oracle": EngineSpec(
        "oracle",
        "brute-force DOCS oracle: identical kernels, full-pool "
        "evaluation per arrival (the bit-identical regression oracle)",
        _make_oracle,
    ),
    "batched-em": EngineSpec(
        "batched-em",
        "NumPy-batched iterative-refit EM: vectorised posterior/"
        "accuracy refits over COO answer arrays, entropy-driven "
        "assignment",
        _make_batched_em,
    ),
    "random": EngineSpec(
        "random",
        "Figure 8 'Baseline': random assignment + majority vote",
        _make_random,
    ),
    "askit": EngineSpec(
        "askit",
        "AskIt!: most-uncertain-first assignment + majority vote",
        _make_askit,
    ),
    "icrowd": EngineSpec(
        "icrowd",
        "iCrowd: strongest-domain assignment under the equal-answer "
        "constraint + weighted vote",
        _make_icrowd,
    ),
    "qasca": EngineSpec(
        "qasca",
        "QASCA: expected-accuracy-improvement assignment + DS inference",
        _make_qasca,
    ),
    "dmax": EngineSpec(
        "dmax",
        "D-Max ablation: DOCS TI with pure domain-match assignment",
        _make_dmax,
    ),
    "mv": EngineSpec(
        "mv",
        "random assignment + majority-vote truth inference",
        _truth_backed("MV"),
    ),
    "zc": EngineSpec(
        "zc",
        "random assignment + ZenCrowd (EM over scalar reliabilities)",
        _truth_backed("ZC"),
    ),
    "ds": EngineSpec(
        "ds",
        "random assignment + Dawid-Skene confusion-matrix EM",
        _truth_backed("DS"),
    ),
    "fc": EngineSpec(
        "fc",
        "random assignment + FaitCrowd topic-aware inference",
        _truth_backed("FC"),
    ),
}


def engine_names() -> List[str]:
    """Registered engine names, listing order preserved."""
    return list(ENGINES)


def register_engine(
    name: str,
    factory: Callable[[int, Optional[object]], Engine],
    summary: str = "",
) -> None:
    """Add (or replace) a registry entry at runtime.

    Raises:
        ValidationError: on an empty name.
    """
    if not name:
        raise ValidationError("engine name must be non-empty")
    ENGINES[name] = EngineSpec(name, summary, factory)


def make_engine(
    name: str, *, seed: int = 0, config: Optional[object] = None
) -> Engine:
    """Build a fresh engine by registry name.

    Args:
        name: a key of :data:`ENGINES`.
        seed: seed for engines with internal randomness.
        config: optional :class:`repro.system.DocsConfig`, consumed by
            the DOCS-backed entries (others ignore it).

    Raises:
        ValidationError: naming the unknown engine and the valid names.
    """
    spec = ENGINES.get(name)
    if spec is None:
        raise ValidationError(
            f"unknown engine {name!r}; registered engines: "
            f"{engine_names()}"
        )
    return spec.factory(seed, config)
