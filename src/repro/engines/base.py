"""The one engine abstraction every inference engine implements.

Historically the repo carried three divergent "engine" notions: a
``CrowdEngine`` protocol in :mod:`repro.platform.amt_sim`, an
``EngineBase`` with its own bookkeeping in :mod:`repro.baselines.base`,
and :class:`repro.system.DocsSystem`'s hard-wired kernel stack. This
module replaces all three contracts with a single ABC:

- :class:`Engine` — the lifecycle contract (prepare / golden_task_ids /
  needs_bootstrap / bootstrap / assign / submit / finalize) plus the
  optional capability hooks (:meth:`Engine.capabilities`,
  :meth:`Engine.assign_many`, :meth:`Engine.current_truths`). The
  platform simulator drives any :class:`Engine`; the campaign shell
  (:class:`repro.system.DocsSystem`) hosts any registered engine and
  adds durability around it.
- :class:`TableEngine` — the shared bookkeeping most competitor engines
  need (an :class:`repro.platform.storage.AnswerTable`, the
  bootstrapped-worker set, the golden registry) behind template hooks
  ``_prepare`` / ``_bootstrap`` / ``_select`` / ``_ingest`` /
  ``_finalize``.

Two integrity rules the old ``EngineBase`` missed are enforced here for
every engine:

- **Bootstrap discipline** — assigning to a worker who still owes the
  golden pre-test raises :class:`repro.errors.UnknownWorkerError`,
  exactly as :class:`~repro.system.DocsSystem` does.
- **Explicit uninformed default** — a task that never received an
  answer is finalized to :data:`UNINFORMED_DEFAULT_CHOICE` (the first
  choice; the same lowest-index rule every tie-break in the repo uses),
  and the affected task ids are reported through
  :meth:`Engine.unanswered_task_ids` so accuracy comparisons between
  engines with different coverage can account for the guesses instead
  of silently absorbing them.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Set

from repro.core.types import Answer
from repro.datasets.base import CrowdDataset
from repro.errors import UnknownWorkerError, ValidationError
from repro.platform.storage import AnswerTable

#: The documented verdict for tasks no worker ever answered: the first
#: choice (1-based) — an explicit uninformed guess, not an inference.
#: Matches the lowest-index tie-break used throughout the repo.
UNINFORMED_DEFAULT_CHOICE = 1

#: Capability: the engine can export/install a durable hot-state image
#: (snapshots, ``hot_state_digest``); without it the campaign shell
#: keeps the engine memory-only and resumes by replaying raw answers.
CAP_HOT_STATE = "hot-state"
#: Capability: :meth:`Engine.assign_many` batches arrivals natively
#: (e.g. across a serving pool) instead of looping :meth:`Engine.assign`.
CAP_BATCH_ASSIGN = "batch-assign"
#: Capability: the engine accepts new tasks mid-campaign.
CAP_LIVE_GROWTH = "live-growth"


class Engine(abc.ABC):
    """The lifecycle contract every inference engine implements.

    Engines own their inference state; the caller (simulator, campaign
    shell, or HTTP service) owns the crowd, the budget, the clock, and
    any durability. Lifecycle: one :meth:`prepare`, then per worker
    arrival an optional golden :meth:`bootstrap` (when
    :meth:`needs_bootstrap` says so), :meth:`assign`, a
    :meth:`submit` per collected answer, and one final
    :meth:`finalize`.
    """

    #: Display name used in experiment tables and reports.
    name: str = "engine"

    def __init__(self) -> None:
        #: Task ids finalized to :data:`UNINFORMED_DEFAULT_CHOICE`
        #: because no answer ever arrived (``None`` before finalize).
        self._unanswered: Optional[List[int]] = None

    # -- the contract ----------------------------------------------------

    @abc.abstractmethod
    def prepare(self, dataset: CrowdDataset) -> None:
        """Ingest the task set (run DVE or its equivalent). Single-shot:
        a second call raises :class:`~repro.errors.ValidationError`."""

    @abc.abstractmethod
    def golden_task_ids(self) -> List[int]:
        """Golden tasks assigned to each new worker ([] if unused)."""

    @abc.abstractmethod
    def needs_bootstrap(self, worker_id: str) -> bool:
        """True if this worker has not been quality-tested yet."""

    @abc.abstractmethod
    def bootstrap(self, worker_id: str, answers: Sequence[Answer]) -> None:
        """Ingest a new worker's golden-task answers."""

    @abc.abstractmethod
    def assign(self, worker_id: str, k: int) -> List[int]:
        """Select up to k tasks for the arriving worker.

        Raises:
            UnknownWorkerError: if the engine runs a golden pre-test
                and this worker has not completed it (bootstrap
                discipline).
        """

    @abc.abstractmethod
    def submit(self, answer: Answer) -> None:
        """Ingest one answer to an assigned task."""

    @abc.abstractmethod
    def finalize(self) -> Dict[int, int]:
        """Inferred truth (1-based choice) per task id, covering every
        task — unanswered tasks get :data:`UNINFORMED_DEFAULT_CHOICE`
        and are recorded for :meth:`unanswered_task_ids`."""

    # -- capability hooks ------------------------------------------------

    def capabilities(self) -> frozenset:
        """Optional capabilities (``CAP_*`` constants) the host may use.

        The campaign shell consults this instead of type checks: an
        engine without :data:`CAP_HOT_STATE` runs memory-only (raw
        answers journaled, resume = replay); one without
        :data:`CAP_BATCH_ASSIGN` has arrivals served one by one.
        """
        return frozenset()

    def assign_many(
        self, worker_ids: Sequence[str], k: int
    ) -> List[List[int]]:
        """One HIT per arriving worker (default: loop :meth:`assign`).

        Engines advertising :data:`CAP_BATCH_ASSIGN` override this with
        a genuinely batched implementation; picks must stay identical
        to per-worker :meth:`assign` calls in order.
        """
        return [self.assign(worker_id, k) for worker_id in worker_ids]

    def current_truths(self) -> Dict[int, int]:
        """Live truth estimates without finalizing (optional).

        The default raises: most engines only infer at finalize time.
        """
        raise ValidationError(
            f"engine {self.name!r} does not expose live truth "
            "estimates; call finalize() for its inference"
        )

    def unanswered_task_ids(self) -> List[int]:
        """Tasks finalized to the uninformed default, after finalize.

        Raises:
            ValidationError: before :meth:`finalize` has run.
        """
        if self._unanswered is None:
            raise ValidationError(
                "finalize() has not run yet; unanswered tasks are "
                "determined when the final truths are produced"
            )
        return list(self._unanswered)

    # -- shared enforcement ----------------------------------------------

    def _require_bootstrapped(self, worker_id: str) -> None:
        """Bootstrap discipline: reject assignment for workers still
        owing the golden pre-test (no-op for engines without one)."""
        if self.needs_bootstrap(worker_id):
            raise UnknownWorkerError(
                worker_id,
                context=(
                    "in this campaign: the worker has not completed "
                    "the golden bootstrap pre-test — fetch "
                    "golden_task_ids() and call bootstrap() with their "
                    "answers first (workers known to a shared worker "
                    "store skip the pre-test)"
                ),
            )


class TableEngine(Engine):
    """Common bookkeeping for table-backed engines: storage, worker
    tracking, golden set.

    Subclasses implement ``_prepare``, ``_select`` and ``_finalize``
    (plus optional ``_bootstrap`` / ``_ingest``); this class enforces
    the shared integrity rules — no repeat answers (the answer table's
    at-most-once constraint), no assigning a task to a worker who
    answered it (``_select`` receives the answered set), bootstrap
    discipline on :meth:`assign`, single-shot :meth:`prepare`, and the
    explicit uninformed finalize default.
    """

    def __init__(self) -> None:
        super().__init__()
        self._dataset: Optional[CrowdDataset] = None
        self._answers = AnswerTable()
        self._bootstrapped: Set[str] = set()
        self._golden_ids: List[int] = []

    @property
    def dataset(self) -> CrowdDataset:
        if self._dataset is None:
            raise ValidationError("engine not prepared; call prepare()")
        return self._dataset

    @property
    def answers(self) -> AnswerTable:
        return self._answers

    # -- Engine contract -------------------------------------------------

    def prepare(self, dataset: CrowdDataset) -> None:
        if self._dataset is not None:
            raise ValidationError(
                f"prepare() already ran for this {type(self).__name__}; "
                "build a new engine for a new campaign"
            )
        self._dataset = dataset
        self._prepare(dataset)

    def golden_task_ids(self) -> List[int]:
        return list(self._golden_ids)

    def needs_bootstrap(self, worker_id: str) -> bool:
        return bool(self._golden_ids) and worker_id not in self._bootstrapped

    def bootstrap(self, worker_id: str, answers: Sequence[Answer]) -> None:
        self._bootstrapped.add(worker_id)
        self._bootstrap(worker_id, answers)

    def assign(self, worker_id: str, k: int) -> List[int]:
        if self._dataset is None:
            raise ValidationError("engine not prepared; call prepare()")
        if k < 1:
            raise ValidationError(f"k must be >= 1: {k}")
        self._require_bootstrapped(worker_id)
        answered = self._answers.tasks_answered_by(worker_id)
        return self._select(worker_id, k, answered)

    def submit(self, answer: Answer) -> None:
        self._answers.insert(answer)
        self._ingest(answer)

    def finalize(self) -> Dict[int, int]:
        truths = self._finalize()
        unanswered = [
            task.task_id
            for task in self.dataset.tasks
            if self._answers.count_for_task(task.task_id) == 0
        ]
        # Tasks that never received an answer still need a verdict; the
        # verdict is the explicit uninformed default, and the harness
        # reports how many there were.
        for task_id in unanswered:
            truths.setdefault(task_id, UNINFORMED_DEFAULT_CHOICE)
        for task in self.dataset.tasks:
            truths.setdefault(task.task_id, UNINFORMED_DEFAULT_CHOICE)
        self._unanswered = sorted(unanswered)
        return truths

    # -- subclass hooks --------------------------------------------------

    @abc.abstractmethod
    def _prepare(self, dataset: CrowdDataset) -> None:
        """Engine-specific setup (DVE, topic fitting, state init)."""

    def _bootstrap(self, worker_id: str, answers: Sequence[Answer]) -> None:
        """Ingest golden-task answers for a new worker (default: no-op)."""

    @abc.abstractmethod
    def _select(
        self, worker_id: str, k: int, answered: Set[int]
    ) -> List[int]:
        """Pick up to k tasks the worker has not answered."""

    def _ingest(self, answer: Answer) -> None:
        """Engine-specific per-answer update (default: no-op)."""

    @abc.abstractmethod
    def _finalize(self) -> Dict[int, int]:
        """Produce final truths for (at least) every answered task."""
