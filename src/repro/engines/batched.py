"""A NumPy-batched iterative-refit EM engine.

Where the DOCS core updates posteriors *incrementally* per answer and
re-runs its full solver every z submissions, this engine keeps the
entire answer set in flat COO arrays (row, worker, choice) and refits
the whole model from scratch with a vectorised EM loop — the classic
batch-iterative inference shape. Per refit:

- **E-step**: every task's log posterior accumulates, in one
  ``np.add.at`` pass over the answer arrays, ``log q_w`` at the chosen
  column and ``log ((1 - q_w) / (ell - 1))`` at the rest (a scalar
  worker-accuracy confusion model).
- **M-step**: each worker's accuracy is re-estimated as their
  posterior-weighted agreement, ``q_w = (sum of posterior mass at the
  worker's chosen columns + golden prior) / (answers + prior weight)``.

Assignment is entropy-driven: arrivals get the k tasks whose current
posterior is most uncertain (no per-worker domain model — the gap to
DOCS in the arena harness measures what the domain vectors buy).
Everything is O(answers) NumPy per refit with no Python loops over
answers, so the engine scales to the fig7/fig8 workloads while staying
a ~200-line reference implementation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np

from repro.core.types import Answer
from repro.datasets.base import CrowdDataset
from repro.engines.base import TableEngine
from repro.errors import ValidationError
from repro.utils.math import safe_log
from repro.utils.rng import SeedLike, make_rng
from repro.utils.topk import top_k_indices


class BatchedEMEngine(TableEngine):
    """Vectorised batch-EM inference + entropy-driven assignment.

    Args:
        seed: tie-shuffle seed (present for registry uniformity; the
            policy itself is deterministic).
        golden_count: golden tasks per new worker; their scores become
            each worker's accuracy prior.
        default_accuracy: cold-start worker accuracy (and the prior's
            pseudo-count mean).
        refit_interval: full EM refits run every this many submitted
            answers (and always once at finalize).
        max_iterations: EM iteration cap per refit.
    """

    name = "Batched-EM"

    def __init__(
        self,
        seed: SeedLike = 0,
        golden_count: int = 20,
        default_accuracy: float = 0.7,
        refit_interval: int = 50,
        max_iterations: int = 20,
    ):
        super().__init__()
        if refit_interval < 1:
            raise ValidationError("refit_interval must be >= 1")
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        if not 0.0 < default_accuracy < 1.0:
            raise ValidationError(
                "default_accuracy must be in (0, 1)"
            )
        self._rng = make_rng(seed)
        self._golden_count = golden_count
        self._default_accuracy = default_accuracy
        self._refit_interval = refit_interval
        self._max_iterations = max_iterations

    # -- TableEngine hooks -----------------------------------------------

    def _prepare(self, dataset: CrowdDataset) -> None:
        self._order = [t.task_id for t in dataset.tasks]
        self._row = {tid: i for i, tid in enumerate(self._order)}
        self._ells = np.array(
            [t.num_choices for t in dataset.tasks], dtype=np.int64
        )
        n = len(self._order)
        ell_max = int(self._ells.max())
        self._valid = (
            np.arange(ell_max)[None, :] < self._ells[:, None]
        )
        # Uniform posteriors over each task's valid choices.
        self._post = np.where(
            self._valid, 1.0 / self._ells[:, None], 0.0
        )
        # COO answer arrays (grown per answer, refit in batch).
        self._a_row: List[int] = []
        self._a_worker: List[int] = []
        self._a_choice: List[int] = []
        self._worker_index: Dict[str, int] = {}
        #: Per-worker accuracy prior pseudo-counts [correct, total]
        #: (golden bootstrap fills these in).
        self._prior: List[List[float]] = []
        self._since_refit = 0

        by_id = {t.task_id: t for t in dataset.tasks}
        golden_pool = [
            t.task_id for t in dataset.tasks
            if t.ground_truth is not None
        ]
        self._golden_ids = golden_pool[: self._golden_count]
        self._golden_truths = {
            tid: by_id[tid].ground_truth for tid in self._golden_ids
        }

    def _worker_row(self, worker_id: str) -> int:
        row = self._worker_index.get(worker_id)
        if row is None:
            row = len(self._prior)
            self._worker_index[worker_id] = row
            self._prior.append([self._default_accuracy, 1.0])
        return row

    def _bootstrap(
        self, worker_id: str, answers: Sequence[Answer]
    ) -> None:
        row = self._worker_row(worker_id)
        correct = sum(
            1.0
            for a in answers
            if self._golden_truths[a.task_id] == a.choice
        )
        if answers:
            self._prior[row] = [
                correct + self._default_accuracy,
                len(answers) + 1.0,
            ]

    def _ingest(self, answer: Answer) -> None:
        self._a_row.append(self._row[answer.task_id])
        self._a_worker.append(self._worker_row(answer.worker_id))
        self._a_choice.append(answer.choice - 1)
        self._since_refit += 1
        if self._since_refit >= self._refit_interval:
            self._refit()
            self._since_refit = 0

    def _select(
        self, worker_id: str, k: int, answered: Set[int]
    ) -> List[int]:
        entropy = -np.sum(
            self._post * safe_log(self._post), axis=1
        )
        if answered:
            rows = [self._row[tid] for tid in answered]
            entropy[rows] = -np.inf
        available = int(np.sum(entropy > -np.inf))
        if available == 0:
            return []
        take = min(k, available)
        chosen = top_k_indices(entropy, take)
        return [self._order[int(i)] for i in chosen]

    def _finalize(self) -> Dict[int, int]:
        self._refit()
        answered_rows = set(self._a_row)
        return {
            self._order[row]: int(np.argmax(self._post[row])) + 1
            for row in answered_rows
        }

    # -- the vectorised refit --------------------------------------------

    def _refit(self) -> None:
        """Rebuild posteriors and worker accuracies from all answers."""
        if not self._a_row:
            return
        rows = np.asarray(self._a_row, dtype=np.int64)
        workers = np.asarray(self._a_worker, dtype=np.int64)
        choices = np.asarray(self._a_choice, dtype=np.int64)
        prior = np.asarray(self._prior, dtype=float)  # (W, 2)
        q = np.clip(
            prior[:, 0] / prior[:, 1], 1e-3, 1.0 - 1e-3
        )  # (W,)
        # Answers per worker, for the M-step denominator.
        counts = np.bincount(workers, minlength=len(q)).astype(float)
        ell_m1 = np.maximum(self._ells[rows] - 1, 1)  # (A,)

        log_uniform = np.where(
            self._valid, -safe_log(self._ells[:, None].astype(float)), 0.0
        )
        post = self._post
        for _ in range(self._max_iterations):
            # E-step: base log-likelihood per answer spreads the
            # "wrong" mass over every valid column of its row, then the
            # chosen column is corrected up to log q_w — two np.add.at
            # passes instead of a Python loop over answers.
            log_q = np.log(q[workers])                       # (A,)
            log_wrong = np.log((1.0 - q[workers]) / ell_m1)  # (A,)
            log_post = log_uniform.copy()
            row_base = np.zeros(len(self._order))
            np.add.at(row_base, rows, log_wrong)
            log_post += row_base[:, None]
            np.add.at(log_post, (rows, choices), log_q - log_wrong)
            log_post = np.where(self._valid, log_post, -np.inf)
            log_post -= log_post.max(axis=1, keepdims=True)
            post = np.where(self._valid, np.exp(log_post), 0.0)
            post /= post.sum(axis=1, keepdims=True)
            # M-step: posterior-weighted agreement + the golden prior.
            agree = post[rows, choices]                      # (A,)
            correct = np.zeros(len(q))
            np.add.at(correct, workers, agree)
            q = np.clip(
                (correct + prior[:, 0]) / (counts + prior[:, 1]),
                1e-3,
                1.0 - 1e-3,
            )
        self._post = post
