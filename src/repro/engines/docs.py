"""DocsEngine — the DOCS inference core as a first-class engine.

This is the serving heart that used to live hard-wired inside the
1,700-line :class:`repro.system.DocsSystem`: DVE-backed ingest, the
:class:`~repro.core.arena.StateArena` (heap or shared-memory) hot
state, incremental truth inference (Section 4.2), the every-z full
iterative TI re-run, golden-task selection and the quality pre-test
(Section 5.2), and Eq. 8 entropy-reduction assignment served through
the :class:`~repro.core.assignment.TaskAssigner` strategy ladder
(row-subset kernel -> serving pool -> assignment index -> brute force,
all bit-identical).

Factored out, it is *one engine among several*: it implements
:class:`repro.engines.base.Engine`, registers as ``"docs"`` (and, with
the index/pool ladder disabled, as the ``"oracle"`` brute-force
regression oracle), runs standalone under the platform simulator, and
plugs into the campaign shell — :class:`repro.system.DocsSystem`
hosts it and layers journaling, snapshots, degraded mode, and the
shared cross-campaign worker store around the capability hooks below.

Host seams (the shell's contract, beyond the :class:`Engine` ABC):

- :meth:`build` / :meth:`rebuild` — run the ingest plane into a
  host-supplied database (sqlite for durable campaigns; standalone
  :meth:`prepare` uses an in-memory
  :class:`~repro.platform.storage.SystemDatabase`).
- :meth:`arena_write` / :meth:`apply_answer` /
  :meth:`restore_bootstrap` — the write paths, callable separately so
  the shell can wrap its own durability (journal, degraded mode)
  around them; live serving and journal replay share them.
- :meth:`snapshot_payload` / :meth:`check_snapshot` /
  :meth:`install_snapshot` / :meth:`hot_state_digest` — the
  :data:`~repro.engines.base.CAP_HOT_STATE` capability: export and
  reinstall the complete hot state, bit-identically.
- :attr:`on_rerun` — invoked with each full-TI result; the shell uses
  it for durable-first shared-store delta exports. Standalone, deltas
  merge straight into an attached shared store.
"""

from __future__ import annotations

import logging
import multiprocessing
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.arena import AnswerLog
from repro.core.assignment import TaskAssigner
from repro.core.golden import select_golden_tasks
from repro.core.incremental import IncrementalTruthInference
from repro.core.quality_store import WorkerQualityStore
from repro.core.serving import AssignmentIndex
from repro.core.shared_arena import SharedStateArena
from repro.core.truth_inference import TruthInference
from repro.core.types import Answer, Task
from repro.datasets.base import CrowdDataset
from repro.engines.base import (
    CAP_BATCH_ASSIGN,
    CAP_HOT_STATE,
    CAP_LIVE_GROWTH,
    Engine,
)
from repro.errors import ServingPoolError, ValidationError
from repro.kb.knowledge_base import KnowledgeBase
from repro.linking import EntityLinker
from repro.platform.sqlite_storage import CampaignSnapshot
from repro.platform.storage import SystemDatabase
from repro.system.config import DocsConfig
from repro.system.ingest import IngestPipeline, IngestReport
from repro.system.parallel import ServingPool

logger = logging.getLogger(__name__)


class DocsEngine(Engine):
    """The domain-aware serving core behind DOCS.

    Args:
        config: system configuration (defaults follow the paper). The
            serving knobs (``serve_index``, ``workers``, the frontier/
            bucket sizes, ``rerun_interval``, ...) are honoured here;
            the durability knobs are the host shell's business.
        worker_store: optional shared cross-campaign worker model (see
            :class:`repro.system.DocsSystem`); workers it knows skip
            the golden pre-test and seed from it.
    """

    name = "DOCS"

    def __init__(
        self,
        config: Optional[DocsConfig] = None,
        *,
        worker_store: Optional[WorkerQualityStore] = None,
    ):
        super().__init__()
        self._config = config or DocsConfig()
        self._config.validate()
        self._db = None
        self._incremental: Optional[IncrementalTruthInference] = None
        self._log: Optional[AnswerLog] = None
        self._store: Optional[WorkerQualityStore] = None
        self._assigner = TaskAssigner(hit_size=self._config.hit_size)
        #: The serving-plane index (built on build/rebuild when
        #: ``config.serve_index``); row-wise invalidation rides the
        #: arena's write epochs, so add_tasks/submit/re-runs need no
        #: explicit hooks here.
        self._serving_index: Optional[AssignmentIndex] = None
        #: The multi-process serving pool (built when ``config.workers``
        #: >= 1 over a shared-memory arena); arena mutations quiesce it
        #: through :meth:`arena_write`.
        self._pool: Optional[ServingPool] = None
        self._bootstrapped: Set[str] = set()
        self._golden_truths: Dict[int, int] = {}
        #: Pristine golden-bootstrap qualities: the full iterative TI is
        #: (re)initialised from these, never from the incrementally
        #: drifted store (Section 4.1 initialises from golden tasks).
        self._golden_qualities: Dict[str, np.ndarray] = {}
        self._submissions_since_rerun = 0
        self._pipeline: Optional[IngestPipeline] = None
        #: The shared cross-campaign worker model (None = campaign-local
        #: qualities only).
        self._shared_store = worker_store
        #: Workers whose campaign stats were seeded from the shared store.
        self._seeded: Set[str] = set()
        #: Per-worker (quality, weight) last derived from a full-TI
        #: re-run — the Theorem-1 baseline for shared-store delta
        #: exports. Maintained even without a shared store so one can be
        #: attached mid-campaign.
        self._exported_log: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        #: True while a host replays a journal: suppresses shared-store
        #: exports (the original run already made them).
        self._replaying = False
        #: Host hook: called with each full-TI result instead of the
        #: direct shared-store merge (the shell's durable-first export).
        self.on_rerun: Optional[Callable[[object], None]] = None

    # -- accessors (the host shell's and the tests' surface) -------------

    @property
    def config(self) -> DocsConfig:
        """The active configuration."""
        return self._config

    @property
    def database(self):
        """The task/answer storage this engine was built into."""
        if self._db is None:
            raise ValidationError("system not prepared; call prepare()")
        return self._db

    @property
    def prepared(self) -> bool:
        return self._db is not None

    @property
    def incremental(self) -> Optional[IncrementalTruthInference]:
        return self._incremental

    @property
    def log(self) -> Optional[AnswerLog]:
        return self._log

    @property
    def quality_store(self) -> WorkerQualityStore:
        """The campaign-local worker model."""
        if self._store is None:
            raise ValidationError("system not prepared; call prepare()")
        return self._store

    @property
    def assigner(self) -> TaskAssigner:
        return self._assigner

    @property
    def serving_index(self) -> Optional[AssignmentIndex]:
        return self._serving_index

    @property
    def pool(self) -> Optional[ServingPool]:
        return self._pool

    @property
    def pipeline(self) -> Optional[IngestPipeline]:
        return self._pipeline

    @property
    def bootstrapped(self) -> Set[str]:
        return self._bootstrapped

    @property
    def seeded(self) -> Set[str]:
        return self._seeded

    @property
    def golden_truths(self) -> Dict[int, int]:
        return self._golden_truths

    @property
    def golden_qualities(self) -> Dict[str, np.ndarray]:
        return self._golden_qualities

    @property
    def exported_log(self) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        return self._exported_log

    @property
    def shared_store(self) -> Optional[WorkerQualityStore]:
        return self._shared_store

    @property
    def submissions_since_rerun(self) -> int:
        return self._submissions_since_rerun

    @submissions_since_rerun.setter
    def submissions_since_rerun(self, value: int) -> None:
        self._submissions_since_rerun = value

    @property
    def replaying(self) -> bool:
        return self._replaying

    @replaying.setter
    def replaying(self, value: bool) -> None:
        self._replaying = value

    def capabilities(self) -> frozenset:
        return frozenset(
            {CAP_HOT_STATE, CAP_BATCH_ASSIGN, CAP_LIVE_GROWTH}
        )

    def attach_shared_store(
        self, worker_store: WorkerQualityStore
    ) -> None:
        """Attach a shared cross-campaign worker model mid-campaign.

        Raises:
            ValidationError: if a store is already attached, or the
                store's taxonomy size disagrees with the campaign's.
        """
        if self._shared_store is not None:
            raise ValidationError(
                "a shared worker store is already attached"
            )
        if self._incremental is not None and (
            worker_store.num_domains
            != self._incremental.arena.num_domains
        ):
            raise ValidationError(
                f"shared worker store covers "
                f"{worker_store.num_domains} domains but the campaign "
                f"taxonomy has {self._incremental.arena.num_domains}"
            )
        self._shared_store = worker_store

    # -- build plane -----------------------------------------------------

    def prepare(self, dataset: CrowdDataset) -> None:
        """Standalone preparation into a fresh in-memory database.

        Hosts with their own storage call :meth:`build` +
        :meth:`build_serving_plane` instead. Single-shot either way.
        """
        self.build(SystemDatabase(), dataset)
        self.build_serving_plane()

    def build(self, db, dataset: CrowdDataset) -> None:
        """Run the ingest plane over ``dataset`` into ``db`` and select
        golden tasks.

        ``build`` is single-shot by design: the golden selection, the
        worker-quality store, and the arena all key off the initial
        batch, so rebuilding them silently would discard campaign
        state. The database is the caller's to close — on failure this
        method releases only what it created (the shared arena).

        Raises:
            ValidationError: if the engine is already prepared (use
                :meth:`add_tasks` to grow the pool, or build a new
                engine), or the dataset carries duplicate task ids
                (deduplicate it first).
        """
        if self._db is not None:
            raise ValidationError(
                "prepare() already ran for this engine; use add_tasks() "
                "to ingest more tasks, or build a new engine"
            )
        m = dataset.taxonomy.size
        if self._shared_store is not None and (
            self._shared_store.num_domains != m
        ):
            raise ValidationError(
                f"shared worker store covers "
                f"{self._shared_store.num_domains} domains but the "
                f"dataset taxonomy has {m}"
            )
        linker = EntityLinker(dataset.kb, top_c=self._config.top_c)

        # Build everything in locals and commit only after the ingest
        # succeeds: a rejected dataset (e.g. duplicate ids) must leave
        # the engine un-prepared and retryable.
        shared_arena = self._make_arena(m)
        try:
            store = WorkerQualityStore(
                m, default_quality=self._config.default_quality
            )
            incremental = IncrementalTruthInference(
                store, arena=shared_arena
            )
            pipeline = IngestPipeline(
                db, incremental, linker,
                link_workers=self.link_workers(),
            )
            pipeline.ingest(dataset.tasks)

            golden_count = min(
                self._config.golden_count, len(dataset.tasks)
            )
            golden_indices = select_golden_tasks(
                [t.domain_vector for t in dataset.tasks], golden_count
            )
            golden_ids = []
            golden_truths: Dict[int, int] = {}
            for idx in golden_indices:
                task = dataset.tasks[idx]
                if task.ground_truth is None:
                    continue
                golden_ids.append(task.task_id)
                golden_truths[task.task_id] = task.ground_truth
            db.mark_golden(golden_ids)
        except Exception:
            if shared_arena is not None:
                shared_arena.close()
            raise

        self._db = db
        self._store = store
        self._incremental = incremental
        self._log = AnswerLog(incremental.arena)
        self._pipeline = pipeline
        self._bootstrapped = set()
        self._golden_qualities = {}
        self._golden_truths = golden_truths
        self._submissions_since_rerun = 0

    def rebuild(
        self,
        db,
        tasks: Sequence[Task],
        kb: Optional[KnowledgeBase] = None,
    ) -> None:
        """Re-register a persisted task catalogue (the resume path).

        Linking and DVE are skipped — domain vectors persisted with the
        tasks — and the golden registry is restored from ``db``. The
        hot state afterwards is pristine; the host overlays a snapshot
        and/or replays its journal through :meth:`restore_bootstrap` /
        :meth:`apply_answer`.
        """
        if self._db is not None:
            raise ValidationError(
                "prepare() already ran for this engine; build a new "
                "engine to resume into"
            )
        m = int(tasks[0].domain_vector.shape[0])
        if self._shared_store is not None and (
            self._shared_store.num_domains != m
        ):
            raise ValidationError(
                f"shared worker store covers "
                f"{self._shared_store.num_domains} domains but the "
                f"campaign taxonomy has {m}"
            )
        shared_arena = self._make_arena(m)
        try:
            store = WorkerQualityStore(
                m, default_quality=self._config.default_quality
            )
            incremental = IncrementalTruthInference(
                store, arena=shared_arena
            )
            linker = (
                EntityLinker(kb, top_c=self._config.top_c)
                if kb is not None
                else None
            )
            pipeline = IngestPipeline(
                db, incremental, linker,
                link_workers=self.link_workers(),
            )
            pipeline.ingest(tasks, store=False)
        except Exception:
            if shared_arena is not None:
                shared_arena.close()
            raise

        by_id = {t.task_id: t for t in tasks}
        golden_truths: Dict[int, int] = {}
        for task_id in db.golden_ids:
            task = by_id.get(task_id)
            if task is not None and task.ground_truth is not None:
                golden_truths[task_id] = task.ground_truth

        self._db = db
        self._store = store
        self._incremental = incremental
        self._log = AnswerLog(incremental.arena)
        self._pipeline = pipeline
        self._golden_truths = golden_truths

    def build_serving_plane(self) -> None:
        """Stand up the AssignmentIndex over the freshly built arena.

        Lifecycle note: this runs once per build/rebuild. Later state
        changes — ``add_tasks`` growth blocks, per-answer incremental
        updates, full-TI resyncs, snapshot overlays — invalidate the
        index row-wise through the arena's write epochs, so nothing
        else needs to call back in here.

        With ``config.workers`` >= 1 (and the arena in shared memory —
        see :meth:`_make_arena`) this also forks the
        :class:`repro.system.parallel.ServingPool`. The owner-side
        index stays attached as the degradation fallback: a pool whose
        worker dies is detached on the spot and arrivals keep being
        served single-process with identical picks.
        """
        if not self._config.serve_index:
            return
        arena = self._incremental.arena
        self._serving_index = AssignmentIndex(
            arena,
            bucket_granularity=self._config.serve_bucket_granularity,
            frontier_size=self._config.serve_frontier_size,
            max_buckets=self._config.serve_max_buckets,
        )
        self._assigner.attach_index(self._serving_index)
        if self._config.workers >= 1 and isinstance(
            arena, SharedStateArena
        ):
            self._pool = ServingPool(
                arena,
                self._config.workers,
                bucket_granularity=(
                    self._config.serve_bucket_granularity
                ),
                frontier_size=self._config.serve_frontier_size,
                max_buckets=self._config.serve_max_buckets,
            )
            self._assigner.attach_pool(self._pool)

    def _make_arena(self, num_domains: int) -> Optional[SharedStateArena]:
        """A shared-memory arena when ``config.workers`` asks for one.

        Returns ``None`` — let the incremental engine build its
        ordinary heap arena — when workers are off or the platform
        lacks the ``fork`` start method the pool needs (logged; the
        campaign serves single-process rather than failing).
        """
        if self._config.workers < 1:
            return None
        if "fork" not in multiprocessing.get_all_start_methods():
            logger.warning(
                "config.workers=%d needs the 'fork' start method, "
                "which this platform lacks; serving single-process",
                self._config.workers,
            )
            return None
        return SharedStateArena(num_domains)

    def link_workers(self) -> int:
        """Stage-1 ingest linking fan-out (``0`` below two workers —
        one forked child would only add fork overhead)."""
        workers = self._config.workers
        return workers if workers >= 2 else 0

    def rerun_shards(self) -> int:
        """Full-TI rerun shard count (``0`` below two workers)."""
        workers = self._config.workers
        return workers if workers >= 2 else 0

    # -- parallel-plane lifecycle ---------------------------------------

    @contextmanager
    def arena_write(self) -> Iterator[None]:
        """Run an arena mutation under the pool's writer barrier.

        Without a pool — or nested inside an outer write section (a
        full-TI resync triggered by a submit already inside one) —
        this is a plain pass-through. A pool that cannot quiesce (a
        worker died) is detached and closed, and the mutation proceeds
        single-process: the write itself must happen regardless of
        pool health.
        """
        pool = self._pool
        if pool is None or pool.state != "serving":
            yield
            return
        try:
            section = pool.write_section()
            section.__enter__()
        except ServingPoolError as exc:
            logger.warning(
                "serving pool failed to quiesce (%s); detaching and "
                "continuing single-process", exc,
            )
            self.detach_pool()
            yield
            return
        try:
            yield
        finally:
            section.__exit__(None, None, None)

    def detach_pool(self) -> None:
        """Drop and close the serving pool (idempotent, ``None``-safe)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        self._assigner.attach_pool(None)
        try:
            pool.close()
        except Exception:  # pragma: no cover - shutdown best effort
            logger.exception("serving pool close failed")

    def shutdown_parallel(self) -> None:
        """Stop the pool and unlink the shared arena. Idempotent.

        Ordering matters: workers detach before the owner unlinks, so
        no select can race the teardown. After this the engine no
        longer serves (its arena views are gone).
        """
        self.detach_pool()
        incremental = self._incremental
        if incremental is not None and isinstance(
            incremental.arena, SharedStateArena
        ):
            incremental.arena.close()

    # -- growth ----------------------------------------------------------

    def add_tasks(self, tasks: Sequence[Task]) -> IngestReport:
        """Ingest new tasks mid-campaign (live task growth).

        Runs the same staged pipeline as :meth:`prepare`, so the new
        tasks are immediately eligible for assignment. Golden tasks
        and existing worker qualities are unchanged.

        Raises:
            ValidationError: if called before :meth:`prepare`, or on
                duplicate task ids.
        """
        if self._pipeline is None:
            raise ValidationError(
                "system not prepared; call prepare() before add_tasks()"
            )
        # Growth re-maps arena segments; serving workers must be parked
        # at their queues while it happens (they follow the new
        # generation on their next request).
        with self.arena_write():
            return self._pipeline.ingest(tasks)

    # -- worker lifecycle ------------------------------------------------

    def golden_task_ids(self) -> List[int]:
        """Golden tasks assigned to every new worker."""
        return self.database.golden_ids

    def needs_bootstrap(self, worker_id: str) -> bool:
        """New workers are quality-tested before real assignments.

        Workers already known to the shared cross-campaign store are
        *not* new: they skip the golden pre-test and enter this
        campaign seeded with their stored statistics (Section 4.2's
        worker model maintained across requesters).
        """
        if self.seed_from_shared(worker_id):
            return False
        return (
            bool(self._golden_truths)
            and worker_id not in self._bootstrapped
            and worker_id not in self.quality_store
        )

    def seed_from_shared(self, worker_id: str) -> bool:
        """Seed a shared-store worker into the campaign model (once).

        Returns:
            True if the worker is covered by the shared store (seeded
            now or earlier); False if there is nothing to seed from.
        """
        if self._shared_store is None or self._store is None:
            return False
        if worker_id in self._seeded:
            return True
        if (
            worker_id in self._bootstrapped
            or worker_id in self._store
        ):
            # The campaign already has its own evidence for this
            # worker; never clobber it with the shared prior.
            return False
        if worker_id not in self._shared_store:
            return False
        stats = self._shared_store.get(worker_id)
        self._store.set(worker_id, stats.quality, stats.weight)
        # The shared prior plays the golden-test role for full-TI
        # (re)initialisation, exactly like a pre-test quality would.
        self._golden_qualities[worker_id] = (
            self._shared_store.quality_or_default(worker_id)
        )
        self._bootstrapped.add(worker_id)
        self._seeded.add(worker_id)
        return True

    def bootstrap(self, worker_id: str, answers: Sequence[Answer]) -> None:
        """Initialise a new worker's quality from golden-task answers.

        Standalone spelling: the golden pre-test is also campaign
        evidence an attached shared store would otherwise never see
        (full-TI re-runs cover only the answer log), so it merges
        straight in. The campaign shell wraps
        :meth:`restore_bootstrap` with its own durable-first export
        instead.
        """
        self.restore_bootstrap(worker_id, answers)
        if self._shared_store is not None and answers:
            stats = self.quality_store.get(worker_id)
            self._shared_store.apply_batch_delta(
                worker_id,
                stats.quality * stats.weight,
                stats.weight.copy(),
            )

    def restore_bootstrap(
        self, worker_id: str, answers: Sequence[Answer]
    ) -> None:
        """Apply a golden bootstrap without any export (shared by the
        live path and the host's journal replay)."""
        self._bootstrapped.add(worker_id)
        if not answers:
            return
        domain_vectors = {
            a.task_id: self.database.task(a.task_id).domain_vector
            for a in answers
        }
        self.quality_store.initialize_from_golden(
            worker_id,
            {a.task_id: a.choice for a in answers},
            self._golden_truths,
            domain_vectors,
        )
        self._golden_qualities[worker_id] = (
            self.quality_store.quality_or_default(worker_id)
        )

    # -- serving ---------------------------------------------------------

    def assign(self, worker_id: str, k: Optional[int] = None) -> List[int]:
        """OTA: the k highest-benefit tasks this worker has not answered.

        Benefits are computed directly against the arena's persistent
        buffers; no per-arrival task state is materialised. With
        ``config.serve_index`` (the default) the arrival is served from
        the :class:`repro.core.serving.AssignmentIndex`'s cached
        benefit columns — only rows dirtied since the worker's last
        identical-quality arrival are re-evaluated, and the picks are
        bit-identical to a full-pool evaluation.

        Raises:
            ValidationError: if the engine is not prepared.
            UnknownWorkerError: if the campaign runs a golden pre-test
                and this worker has not completed it (and no shared
                store knows her) — bootstrap discipline; callers (and
                the HTTP service, which maps it to 404) route the
                worker to :meth:`bootstrap` first.
        """
        if self._incremental is None:
            raise ValidationError("system not prepared; call prepare()")
        self._require_bootstrapped(worker_id)
        answered = self.database.answers.tasks_answered_by(worker_id)
        quality = self.quality_store.blended_quality(worker_id)
        return self._assigner.assign(
            self._incremental.arena,
            quality,
            answered_by_worker=answered,
            k=k,
        )

    def assign_many(
        self, worker_ids: Sequence[str], k: Optional[int] = None
    ) -> List[List[int]]:
        """One HIT per arriving worker, served as a single batch.

        With ``config.workers`` the selects fan out across the serving
        pool's processes and evaluate concurrently; without one the
        arrivals run through the same strategy ladder :meth:`assign`
        uses. Picks are bit-identical to calling :meth:`assign` per
        worker in order, either way.
        """
        if self._incremental is None:
            raise ValidationError("system not prepared; call prepare()")
        arrivals = []
        for worker_id in worker_ids:
            self._require_bootstrapped(worker_id)
            answered = self.database.answers.tasks_answered_by(
                worker_id
            )
            quality = self.quality_store.blended_quality(worker_id)
            arrivals.append((quality, answered))
        return self._assigner.assign_many(
            self._incremental.arena, arrivals, k=k
        )

    def validate_choice(self, answer: Answer) -> None:
        """Reject an out-of-range choice before any store is touched,
        so a bad answer cannot leave the answer table, the incremental
        state, and the answer log disagreeing with each other."""
        ell = self._incremental.state(answer.task_id).num_choices
        if not 1 <= answer.choice <= ell:
            raise ValidationError(
                f"choice {answer.choice} outside [1, {ell}] for task "
                f"{answer.task_id}"
            )

    def submit(self, answer: Answer) -> None:
        """Ingest an answer: store it, update TI incrementally, and
        re-run the full iterative TI every z submissions."""
        if self._incremental is None:
            raise ValidationError("system not prepared; call prepare()")
        self.validate_choice(answer)
        self.seed_from_shared(answer.worker_id)
        self.database.answers.insert(answer)
        with self.arena_write():
            self.apply_answer(answer)

    def apply_answer(self, answer: Answer) -> None:
        """Drive one answer through the serving plane: incremental TI,
        the answer log, and the every-z full re-run (shared by the live
        submit path and the host's journal replay)."""
        self._incremental.submit(answer)
        self._log.append(answer)
        self._submissions_since_rerun += 1
        if self._submissions_since_rerun >= self._config.rerun_interval:
            self.run_full_inference()
            self._submissions_since_rerun = 0

    def current_truths(self) -> Dict[int, int]:
        """Current incremental truth estimates, task id -> choice.

        A read-only inspection surface (the service's ``/truths``
        endpoint): reports what incremental TI believes *now*, without
        the full iterative re-run :meth:`finalize` performs — so
        calling it mid-campaign perturbs nothing.
        """
        if self._incremental is None:
            raise ValidationError("system not prepared; call prepare()")
        return {
            task.task_id: self._incremental.state(
                task.task_id
            ).inferred_truth()
            for task in self.database.tasks()
        }

    def finalize(self) -> Dict[int, int]:
        """Final full TI; returns task id -> inferred truth.

        Tasks without a single answer are included via their prior
        state (for the usual uniform prior that is choice 1, the
        uninformed default) and recorded for
        :meth:`unanswered_task_ids`.
        """
        with self.arena_write():
            result = self.run_full_inference()
        truths = result.truths() if result is not None else {}
        complete: Dict[int, int] = {}
        unanswered: List[int] = []
        for task in self.database.tasks():
            if task.task_id in truths:
                complete[task.task_id] = truths[task.task_id]
            else:
                state = self._incremental.state(task.task_id)
                complete[task.task_id] = state.inferred_truth()
            if self.database.answers.count_for_task(task.task_id) == 0:
                unanswered.append(task.task_id)
        self._unanswered = sorted(unanswered)
        return complete

    # -- full inference + shared-store deltas ----------------------------

    def run_full_inference(self):
        """The every-z full iterative TI over the append-only log."""
        if self._log is None or len(self._log) == 0:
            return None
        ti = TruthInference(
            max_iterations=self._config.ti_max_iterations,
            default_quality=self._config.default_quality,
        )
        # Initialise from the pristine golden-test qualities: warm
        # starts from the incrementally updated store would anchor EM to
        # the drift the incremental pass accumulates on low-weight
        # domains.
        initial = dict(self._golden_qualities)
        # The append-only log already holds the solver's index arrays;
        # no answer re-indexing or domain-vector re-stacking per re-run.
        result = ti.infer_from_log(
            self._log,
            initial_qualities=initial,
            shards=self.rerun_shards(),
        )
        self._incremental.resync_from_arena_result(
            result, precision=self._config.serve_resync_precision
        )
        if self.on_rerun is not None:
            self.on_rerun(result)
        else:
            for worker_id, delta_mass, delta_u in (
                self.export_deltas(result)
            ):
                self._shared_store.apply_batch_delta(
                    worker_id, delta_mass, delta_u
                )
        return result

    def export_deltas(
        self, result
    ) -> List[Tuple[str, np.ndarray, np.ndarray]]:
        """Theorem-1 shared-store deltas for one full-TI result.

        A full-TI re-run's per-worker (quality, weight) is the exact
        batch estimate over this campaign's answer log. Exporting the
        *delta* since the previous re-run — in mass form, via
        :meth:`~repro.core.quality_store.WorkerQualityStore.apply_batch_delta`
        — makes repeated exports telescope to exactly one export of the
        final campaign estimate, so re-run boundaries can sync as often
        as they like without double counting. Baselines advance even
        without a shared store (and while :attr:`replaying`, when the
        original run's exports must not repeat) so a store attached
        later starts from the right boundary.

        A worker the store does not know receives the campaign's *full
        cumulative* estimate, not the delta since the baseline — a
        delta against a store that never got the base mass can encode
        a pure revision and land out of [0, 1].

        Returns:
            ``(worker_id, delta_mass, delta_u)`` triples to merge, in
            result order; empty when nothing is exporting.
        """
        exporting = (
            self._shared_store is not None and not self._replaying
        )
        deltas: List[Tuple[str, np.ndarray, np.ndarray]] = []
        for worker_row, worker_id in enumerate(result.worker_ids):
            quality = np.asarray(
                result.qualities[worker_row], dtype=float
            )
            weight = np.asarray(result.weights[worker_row], dtype=float)
            previous = self._exported_log.get(worker_id)
            if previous is None or (
                exporting and worker_id not in self._shared_store
            ):
                # First export for this worker, or a baseline advanced
                # before any store saw this worker (a store attached
                # mid-campaign): ship the whole campaign estimate.
                delta_mass = quality * weight
                delta_u = weight.copy()
            else:
                prev_q, prev_u = previous
                delta_mass = quality * weight - prev_q * prev_u
                # Weights only grow (u_k = sum of r_k over answered
                # tasks); clip guards floating-point drift.
                delta_u = np.clip(weight - prev_u, 0.0, None)
            self._exported_log[worker_id] = (
                quality.copy(), weight.copy()
            )
            if exporting and (
                np.any(delta_u > 0) or np.any(delta_mass != 0)
            ):
                deltas.append((worker_id, delta_mass, delta_u))
        return deltas

    # -- hot-state capability (CAP_HOT_STATE) ----------------------------

    def hot_state_digest(self) -> str:
        """SHA-256 over the campaign's hot state, as a hex string.

        Covers exactly the state a resume promises to rebuild
        bit-identically: the arena's choice-group buffers (R/M/S/logN),
        the campaign worker model, the pristine golden qualities, the
        bootstrapped-worker set, and the rerun cursor. Two engines
        with equal digests will serve identical assignments and infer
        identical truths — the kill-and-resume suites (and operators
        comparing a resumed service against a reference) rely on this
        instead of diffing buffers by hand.
        """
        if self._incremental is None:
            raise ValidationError("system not prepared; call prepare()")
        import hashlib

        digest = hashlib.sha256()
        arena = self._incremental.arena
        # Settle the lazy entropy cache first: a live system with dirty
        # rows and its freshly resumed twin must hash identically.
        arena.refresh_entropies()
        groups = arena.export_hot_state()
        for ell in sorted(groups):
            group = groups[ell]
            digest.update(f"group:{ell}:{group.count}".encode())
            for buffer in (group.R, group.M, group.S, group.logN):
                digest.update(np.ascontiguousarray(buffer).tobytes())
        store = self.quality_store
        for worker_id in sorted(store.known_workers()):
            stats = store.get(worker_id)
            digest.update(worker_id.encode())
            digest.update(stats.quality.tobytes())
            digest.update(stats.weight.tobytes())
        for worker_id in sorted(self._golden_qualities):
            digest.update(worker_id.encode())
            digest.update(self._golden_qualities[worker_id].tobytes())
        digest.update(
            ",".join(sorted(self._bootstrapped)).encode()
        )
        digest.update(str(self._submissions_since_rerun).encode())
        return digest.hexdigest()

    def snapshot_payload(self) -> CampaignSnapshot:
        """The complete hot state as a snapshot image the host can
        persist (and later hand back to :meth:`install_snapshot`).

        With ``config.snapshot_carry_index`` the image also carries the
        answer log's columnar index arrays, so resume can skip the
        archived-prefix read entirely (the index-carry path)."""
        store = self.quality_store
        return CampaignSnapshot(
            answer_index=(
                self._log.export_state()
                if self._config.snapshot_carry_index
                else None
            ),
            num_domains=self._incremental.arena.num_domains,
            rerun_cursor=self._submissions_since_rerun,
            groups=self._incremental.arena.export_hot_state(),
            workers={
                worker_id: store.get(worker_id)
                for worker_id in store.known_workers()
            },
            golden_qualities={
                worker_id: quality.copy()
                for worker_id, quality in self._golden_qualities.items()
            },
            bootstrapped=set(self._bootstrapped),
            exported={
                worker_id: (quality.copy(), weight.copy())
                for worker_id, (quality, weight) in (
                    self._exported_log.items()
                )
            },
        )

    def check_snapshot(
        self, snapshot: CampaignSnapshot, last_committed_seq: int
    ) -> Optional[str]:
        """Is this snapshot consistent with the catalogue and journal?

        Returns a human-readable problem (the caller logs it and falls
        back to full replay), or ``None`` when the snapshot is usable.
        """
        arena = self._incremental.arena
        if snapshot.num_domains != arena.num_domains:
            return (
                f"snapshot taxonomy size {snapshot.num_domains} != "
                f"catalogue taxonomy size {arena.num_domains}"
            )
        if snapshot.journal_seq > last_committed_seq:
            return (
                f"snapshot watermark seq {snapshot.journal_seq} is "
                f"beyond the journal's last committed seq "
                f"{last_committed_seq} (journal rows were deleted "
                "after the snapshot)"
            )
        if snapshot.rerun_cursor < 0:
            return f"negative rerun cursor {snapshot.rerun_cursor}"
        for worker_id, stats in snapshot.workers.items():
            if stats.quality.shape != (arena.num_domains,):
                return f"worker {worker_id} stats have a wrong shape"
        index = snapshot.answer_index
        if index is not None:
            count = index.task_rows.shape[0]
            if (
                index.worker_rows.shape[0] != count
                or index.choices.shape[0] != count
            ):
                return "answer-index columns disagree on length"
            if count:
                if (
                    int(index.task_rows.min()) < 0
                    or int(index.task_rows.max()) >= len(arena)
                ):
                    return (
                        "answer index references an arena row outside "
                        "the catalogue"
                    )
                if (
                    int(index.worker_rows.min()) < 0
                    or int(index.worker_rows.max())
                    >= len(index.worker_ids)
                ):
                    return (
                        "answer index references a worker row outside "
                        "its worker table"
                    )
                if int(index.choices.min()) < 0:
                    return "answer index holds a negative choice"
        return arena.check_hot_state(snapshot.groups)

    def install_snapshot(self, snapshot: CampaignSnapshot) -> None:
        """Overlay a validated snapshot onto the freshly registered
        engine (arena rows, worker model, bootstrap + export state)."""
        with self.arena_write():
            self._incremental.arena.load_hot_state(snapshot.groups)
        for worker_id, stats in snapshot.workers.items():
            self._store.set(worker_id, stats.quality, stats.weight)
        self._golden_qualities = {
            worker_id: quality.copy()
            for worker_id, quality in snapshot.golden_qualities.items()
        }
        self._bootstrapped = set(snapshot.bootstrapped)
        self._exported_log = {
            worker_id: (quality.copy(), weight.copy())
            for worker_id, (quality, weight) in snapshot.exported.items()
        }
        self._submissions_since_rerun = snapshot.rerun_cursor
