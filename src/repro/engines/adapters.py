"""Truth-method-backed engines: offline inference behind the ABC.

The Figure 5 roster (:data:`repro.baselines.TRUTH_METHODS`) is pure
*offline* truth inference — answers in, truths out. Wrapping one in a
:class:`TruthMethodEngine` gives it the rest of the lifecycle (random
assignment, a golden pre-test for fairness with the engines that use
one) so it can run under the platform simulator, through the campaign
shell, and in the arena harness like any other registry entry. The
assignment policy is deliberately the Figure 8 "Baseline" policy:
differences against the ``random`` entry then isolate the inference
method alone.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.baselines.base import GoldenContext
from repro.baselines.registry import TRUTH_METHODS, make_truth_method
from repro.datasets.base import CrowdDataset
from repro.engines.base import TableEngine
from repro.errors import ValidationError
from repro.utils.rng import SeedLike, make_rng


class TruthMethodEngine(TableEngine):
    """Random assignment + a named offline truth-inference method.

    Args:
        method_name: a :data:`repro.baselines.TRUTH_METHODS` key
            (``"MV"``, ``"ZC"``, ``"DS"``, ``"IC"``, ``"FC"``, ...).
        seed: assignment RNG seed.
        golden_count: golden tasks handed to every new worker; their
            answers reach the method through its
            :class:`~repro.baselines.base.GoldenContext` at finalize.

    Raises:
        ValidationError: on an unknown method name.
    """

    def __init__(
        self,
        method_name: str,
        seed: SeedLike = 0,
        golden_count: int = 20,
    ):
        super().__init__()
        if method_name not in TRUTH_METHODS:
            raise ValidationError(
                f"unknown truth method {method_name!r}; expected one "
                f"of {sorted(TRUTH_METHODS)}"
            )
        self._method_name = method_name
        self.name = method_name
        self._rng = make_rng(seed)
        self._golden_count = golden_count

    def _prepare(self, dataset: CrowdDataset) -> None:
        self._task_ids = [t.task_id for t in dataset.tasks]
        golden_pool = [
            t.task_id for t in dataset.tasks
            if t.ground_truth is not None
        ]
        self._golden_ids = golden_pool[: self._golden_count]
        by_id = {t.task_id: t for t in dataset.tasks}
        self._golden_truths = {
            tid: by_id[tid].ground_truth for tid in self._golden_ids
        }

    def _select(
        self, worker_id: str, k: int, answered: Set[int]
    ) -> List[int]:
        available = [
            tid for tid in self._task_ids if tid not in answered
        ]
        if not available:
            return []
        take = min(k, len(available))
        chosen = self._rng.choice(
            len(available), size=take, replace=False
        )
        return [available[int(i)] for i in chosen]

    def _finalize(self) -> Dict[int, int]:
        method = make_truth_method(self._method_name)
        golden = GoldenContext(self._golden_ids, self._golden_truths)
        return method.infer_truths(
            list(self.dataset.tasks), self._answers.all(), golden
        )
