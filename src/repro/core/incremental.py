"""Incremental Truth Inference (Section 4.2, "Accelerating TI").

When a worker submits one answer, only the parameters most related to the
touched task and workers change:

- **Step 1**: the task's log-numerator matrix ``M-hat`` (the numerator of
  Eq. 3) gains the new answer's contribution; ``M`` is re-normalised and
  ``s = r @ M`` recomputed. O(m * l).
- **Step 2**: the answering worker's quality gains the new task's
  contribution (``q_k <- (q_k u_k + s_a r_k) / (u_k + r_k)``), and every
  worker who answered this task before has their old contribution swapped
  for the new one (``q_k <- (q_k u_k - s~_j r_k + s_j r_k) / u_k``).
  O(m * |V(i)|).

All task state lives in a :class:`repro.core.arena.StateArena`: the
update writes the task's ``logN`` / ``M`` / ``S`` rows in place and
publishes the write through the arena's dirty-row machinery
(:meth:`repro.core.arena.StateArena.note_write` — stale cached entropy
*and* a fresh write epoch) — no per-task arrays are allocated on the
submit path. The per-answer touched-row delta is deliberately tiny:
Step 1 dirties exactly one arena row (Step 2 moves worker qualities,
not task state), which is what lets the serving plane's
:class:`repro.core.serving.AssignmentIndex` refresh cached benefit
columns row-wise instead of rescanning the pool.

The incremental pass trades some quality for instant updates; DOCS
re-runs the full iterative TI every ``z`` submissions (z = 100 in the
paper) — orchestrated by :class:`repro.system.DocsSystem`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.arena import ArenaTaskState, StateArena
from repro.core.quality_store import WorkerQualityStore
from repro.core.truth_inference import (
    ArenaInferenceResult,
    QUALITY_CEIL,
    QUALITY_FLOOR,
)
from repro.core.types import Answer, Task
from repro.errors import ValidationError


class IncrementalTruthInference:
    """Maintains task states and worker qualities answer-by-answer.

    Args:
        quality_store: the persistent worker model (qualities are read
            from and written back to it).
        arena: the state arena to operate on; a fresh one sized to the
            store's taxonomy is created when omitted.
    """

    def __init__(
        self,
        quality_store: WorkerQualityStore,
        arena: Optional[StateArena] = None,
    ):
        self._store = quality_store
        # `arena or ...` would discard an *empty* arena (len 0 is
        # falsy) — exactly the state a shared arena is injected in.
        self._arena = (
            arena
            if arena is not None
            else StateArena(quality_store.num_domains)
        )
        #: task id -> list of (worker_id, choice) already applied. Tasks
        #: already present in a shared arena start with empty histories.
        self._history: Dict[int, List[Tuple[str, int]]] = {
            task_id: [] for task_id in self._arena.task_ids()
        }
        #: Archived prefix from an index-carrying snapshot: an object
        #: with ``task_pairs(task_id) -> [(worker_id, choice), ...]``
        #: (see :class:`repro.platform.storage.RestoredAnswerColumns`).
        #: Folded into ``_history`` per task on first touch, so resume
        #: never loops over archived answers in Python.
        self._history_base = None
        self._hydrated_tasks: set = set()

    def install_restored_history(self, base) -> None:
        """Adopt snapshot-carried answer columns as the archived prefix
        of every task's answer history (lazily folded in on first
        touch). Only legal while no history entries exist yet.

        Args:
            base: duck-typed columnar prefix exposing
                ``task_pairs(task_id)`` in arrival order — in practice a
                :class:`repro.platform.storage.RestoredAnswerColumns`.
        """
        if self._history_base is not None or any(
            entries for entries in self._history.values()
        ):
            raise ValidationError(
                "a restored history base can only be installed before "
                "any answers are applied"
            )
        self._history_base = base

    def _task_history(self, task_id: int) -> List[Tuple[str, int]]:
        """The mutable history list of one registered task, with the
        restored base's pairs folded in on first touch.

        Raises:
            KeyError: if the task was never registered (matching the
                pre-base behaviour of ``self._history[task_id]``).
        """
        entries = self._history[task_id]
        if (
            self._history_base is not None
            and task_id not in self._hydrated_tasks
        ):
            self._hydrated_tasks.add(task_id)
            entries[:0] = self._history_base.task_pairs(task_id)
        return entries

    @property
    def quality_store(self) -> WorkerQualityStore:
        """The backing worker-quality store."""
        return self._store

    @property
    def arena(self) -> StateArena:
        """The arena holding all task state."""
        return self._arena

    def register_task(self, task: Task) -> ArenaTaskState:
        """Create (or return) the state for a task with a domain vector."""
        if task.task_id in self._arena:
            self._history.setdefault(task.task_id, [])
            return self._arena.view(task.task_id)
        view = self._arena.add(task)
        self._history[task.task_id] = []
        return view

    def register_tasks(
        self, tasks: Sequence[Task]
    ) -> List[ArenaTaskState]:
        """Register a batch of tasks with one arena block write.

        Tasks already registered keep their state (matching
        :meth:`register_task`'s idempotency); the rest are grown into
        the arena via :meth:`repro.core.arena.StateArena.grow`. This is
        the ingest pipeline's row-registration stage and the live-growth
        path of ``DocsSystem.add_tasks``.

        Returns:
            Row views aligned with ``tasks``.
        """
        fresh = [
            task for task in tasks if task.task_id not in self._arena
        ]
        self._arena.grow(fresh)
        views: List[ArenaTaskState] = []
        for task in tasks:
            self._history.setdefault(task.task_id, [])
            views.append(self._arena.view(task.task_id))
        return views

    def state(self, task_id: int) -> ArenaTaskState:
        """Current state of a task (a live arena row view).

        Raises:
            UnknownTaskError: if the task was never registered.
        """
        return self._arena.view(task_id)

    def states(self) -> Mapping[int, ArenaTaskState]:
        """All task states (read-only mapping of row views)."""
        return self._arena.states()

    def answered_workers(self, task_id: int) -> List[Tuple[str, int]]:
        """(worker, choice) pairs applied to a task so far."""
        if task_id not in self._history:
            return []
        return list(self._task_history(task_id))

    def restore_answers(self, answers: Sequence[Answer]) -> None:
        """Re-index answers whose numeric effect is already present.

        The snapshot-resume fast path: arena rows and worker qualities
        come from the snapshot, so pre-snapshot answers must rebuild
        only the per-task answer history (which Step 2b consults on
        later submits) — re-running :meth:`submit` for them would apply
        every update twice. Answers must arrive in their original
        arrival order.
        """
        if self._history_base is not None:
            raise ValidationError(
                "restore_answers and an installed history base are "
                "mutually exclusive resume paths"
            )
        history = self._history
        for answer in answers:
            entries = history.get(answer.task_id)
            if entries is None:
                history[answer.task_id] = entries = []
            entries.append((answer.worker_id, answer.choice))

    def submit(self, answer: Answer) -> ArenaTaskState:
        """Apply one answer with the Section 4.2 update policy.

        Returns:
            The task's updated state (arena row view).
        """
        group, row = self._arena.location(answer.task_id)
        ell = group.ell
        if not 1 <= answer.choice <= ell:
            raise ValidationError(
                f"choice {answer.choice} outside [1, {ell}] for task "
                f"{answer.task_id}"
            )
        history = self._task_history(answer.task_id)
        if any(
            worker_id == answer.worker_id
            for worker_id, _ in history
        ):
            raise ValidationError(
                f"worker {answer.worker_id} already answered task "
                f"{answer.task_id} (a worker answers a task at most once)"
            )

        r = group.R[row]
        s = group.S[row]
        previous_s = s.copy()
        quality = np.clip(
            self._store.quality_or_default(answer.worker_id),
            QUALITY_FLOOR,
            QUALITY_CEIL,
        )

        # Step 1: fold the answer into the stored log numerators M-hat,
        # writing the arena row in place.
        log_correct = np.log(quality)
        log_incorrect = np.log((1.0 - quality) / (ell - 1))
        contribution = np.tile(log_incorrect[:, None], (1, ell))
        contribution[:, answer.choice - 1] = log_correct
        logN = group.logN[row]
        logN += contribution
        shifted = logN - logN.max(axis=1, keepdims=True)
        numerator = np.exp(shifted)
        M = group.M[row]
        np.divide(
            numerator, numerator.sum(axis=1, keepdims=True), out=M
        )
        np.matmul(r, M, out=s)
        self._arena.note_write(group, row)

        # Step 2a: update the answering worker via Theorem 1's merge with
        # a single-task batch (q = s_a on this task, u = r).
        batch_quality = np.full_like(r, s[answer.choice - 1])
        self._store.merge(answer.worker_id, batch_quality, r)

        # Step 2b: refresh prior answerers' contributions: replace the old
        # s~_j with the new s_j at their answered choice.
        for worker_id, choice in history:
            stats = self._store.get(worker_id)
            delta = (s[choice - 1] - previous_s[choice - 1]) * r
            mask = stats.weight > 0
            updated = stats.quality.copy()
            updated[mask] += delta[mask] / stats.weight[mask]
            # Numerical guard: Eq. 5 keeps q in [0, 1]; enforce it under
            # floating-point drift.
            np.clip(updated, 0.0, 1.0, out=updated)
            self._store.set(worker_id, updated, stats.weight)

        history.append((answer.worker_id, answer.choice))
        return self._arena.view(answer.task_id)

    def resync_from_full_inference(
        self,
        probabilistic_truths: Mapping[int, np.ndarray],
        truth_matrices: Mapping[int, np.ndarray],
        worker_qualities: Mapping[str, np.ndarray],
        worker_weights: Mapping[str, np.ndarray],
    ) -> None:
        """Overwrite incremental state with a full iterative TI's output.

        DOCS runs full TI every z submissions; afterwards the incremental
        layer continues from the refreshed parameters. Log numerators are
        re-derived from the (strictly positive) refreshed M.

        This is the dict-keyed path; arena-native callers should prefer
        :meth:`resync_from_arena_result`, which scatters whole buffer
        blocks instead of looping task by task.
        """
        for task_id, truth in probabilistic_truths.items():
            if task_id not in self._arena:
                continue
            group, row = self._arena.location(task_id)
            M = np.asarray(truth_matrices[task_id], dtype=float)
            group.M[row] = M
            group.S[row] = np.asarray(truth, dtype=float)
            group.logN[row] = np.log(np.clip(M, 1e-300, None))
            self._arena.note_write(group, row)
        for worker_id, quality in worker_qualities.items():
            self._store.set(
                worker_id,
                np.asarray(quality, dtype=float),
                np.asarray(worker_weights[worker_id], dtype=float),
            )

    def resync_from_arena_result(
        self,
        result: ArenaInferenceResult,
        *,
        precision: float = 0.0,
    ) -> None:
        """Scatter a full TI's output straight back into arena buffers.

        One fancy-indexed block write per choice-count group — the
        vectorised counterpart of :meth:`resync_from_full_inference`.

        The write epoch is **delta-aware**: before overwriting, the
        per-row max-abs change of ``(M, S)`` against the incremental
        state is measured, and only rows that moved by more than
        ``precision`` are stamped dirty. The Eq. 8 benefit kernel reads
        exactly ``R``, ``M``, and ``H(S)`` — so at the default
        ``precision=0.0`` a skipped row's benefit is *bit-identical*
        and the downstream :class:`~repro.core.serving.AssignmentIndex`
        repair provably does no wasted kernel work on it. ``logN`` is
        still rewritten for every row (the full TI re-derives it as
        ``log(clip(M))``, which differs from the incremental running
        sum and feeds future submits), but that never affects served
        benefits. A positive ``precision`` trades serve-side exactness
        for fewer repairs, bounded by the given benefit drift.

        Args:
            result: the full-TI output to install.
            precision: max-abs ``(M, S)`` movement below which a row's
                epoch stamp (and benefit repair) is skipped.
        """
        if precision < 0:
            raise ValidationError("precision must be >= 0")
        ells_of = self._arena.choice_counts()[result.task_rows]
        moved_global: List[np.ndarray] = []
        for group in self._arena.iter_groups():
            compact = np.flatnonzero(ells_of == group.ell)
            if compact.size == 0:
                continue
            group_rows = self._arena.group_rows_at(
                result.task_rows[compact]
            )
            M = result.M[compact][:, :, : group.ell]
            S = result.S[compact][:, : group.ell]
            delta_M = np.abs(group.M[group_rows] - M).max(axis=(1, 2))
            delta_S = np.abs(group.S[group_rows] - S).max(axis=1)
            moved = np.maximum(delta_M, delta_S) > precision
            group.M[group_rows] = M
            group.S[group_rows] = S
            group.logN[group_rows] = np.log(np.clip(M, 1e-300, None))
            group.dirty[group_rows[moved]] = True
            moved_global.append(result.task_rows[compact[moved]])
        # One block-write epoch for the rows that actually moved:
        # consumers caching row-derived values (the AssignmentIndex)
        # re-kernel exactly those, instead of every resynced row.
        if moved_global:
            stamped = np.concatenate(moved_global)
            if stamped.size:
                self._arena.note_writes(stamped)
        for worker_row, worker_id in enumerate(result.worker_ids):
            self._store.set(
                worker_id,
                result.qualities[worker_row],
                result.weights[worker_row],
            )
