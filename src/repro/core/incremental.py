"""Incremental Truth Inference (Section 4.2, "Accelerating TI").

When a worker submits one answer, only the parameters most related to the
touched task and workers change:

- **Step 1**: the task's log-numerator matrix ``M-hat`` (the numerator of
  Eq. 3) gains the new answer's contribution; ``M`` is re-normalised and
  ``s = r @ M`` recomputed. O(m * l).
- **Step 2**: the answering worker's quality gains the new task's
  contribution (``q_k <- (q_k u_k + s_a r_k) / (u_k + r_k)``), and every
  worker who answered this task before has their old contribution swapped
  for the new one (``q_k <- (q_k u_k - s~_j r_k + s_j r_k) / u_k``).
  O(m * |V(i)|).

The incremental pass trades some quality for instant updates; DOCS
re-runs the full iterative TI every ``z`` submissions (z = 100 in the
paper) — orchestrated by :class:`repro.system.DocsSystem`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.quality_store import WorkerQualityStore
from repro.core.truth_inference import QUALITY_CEIL, QUALITY_FLOOR
from repro.core.types import Answer, Task, TaskState
from repro.errors import UnknownTaskError, ValidationError


class IncrementalTruthInference:
    """Maintains task states and worker qualities answer-by-answer.

    Args:
        quality_store: the persistent worker model (qualities are read
            from and written back to it).
    """

    def __init__(self, quality_store: WorkerQualityStore):
        self._store = quality_store
        self._states: Dict[int, TaskState] = {}
        #: task id -> list of (worker_id, choice) already applied.
        self._history: Dict[int, List[Tuple[str, int]]] = {}

    @property
    def quality_store(self) -> WorkerQualityStore:
        """The backing worker-quality store."""
        return self._store

    def register_task(self, task: Task) -> TaskState:
        """Create (or return) the state for a task with a domain vector."""
        existing = self._states.get(task.task_id)
        if existing is not None:
            return existing
        if task.domain_vector is None:
            raise ValidationError(
                f"task {task.task_id} has no domain vector; run DVE first"
            )
        state = TaskState.fresh(task, np.asarray(task.domain_vector))
        self._states[task.task_id] = state
        self._history[task.task_id] = []
        return state

    def state(self, task_id: int) -> TaskState:
        """Current state of a task.

        Raises:
            UnknownTaskError: if the task was never registered.
        """
        state = self._states.get(task_id)
        if state is None:
            raise UnknownTaskError(task_id)
        return state

    def states(self) -> Mapping[int, TaskState]:
        """All task states (read-only view)."""
        return self._states

    def answered_workers(self, task_id: int) -> List[Tuple[str, int]]:
        """(worker, choice) pairs applied to a task so far."""
        return list(self._history.get(task_id, []))

    def submit(self, answer: Answer) -> TaskState:
        """Apply one answer with the Section 4.2 update policy.

        Returns:
            The task's updated state.
        """
        state = self.state(answer.task_id)
        ell = state.num_choices
        if not 1 <= answer.choice <= ell:
            raise ValidationError(
                f"choice {answer.choice} outside [1, {ell}] for task "
                f"{answer.task_id}"
            )
        if any(
            worker_id == answer.worker_id
            for worker_id, _ in self._history[answer.task_id]
        ):
            raise ValidationError(
                f"worker {answer.worker_id} already answered task "
                f"{answer.task_id} (a worker answers a task at most once)"
            )

        previous_s = state.s.copy()
        quality = np.clip(
            self._store.quality_or_default(answer.worker_id),
            QUALITY_FLOOR,
            QUALITY_CEIL,
        )

        # Step 1: fold the answer into the stored log numerators M-hat.
        log_correct = np.log(quality)
        log_incorrect = np.log((1.0 - quality) / (ell - 1))
        contribution = np.tile(log_incorrect[:, None], (1, ell))
        contribution[:, answer.choice - 1] = log_correct
        assert state.log_numerators is not None
        state.log_numerators += contribution
        shifted = state.log_numerators - state.log_numerators.max(
            axis=1, keepdims=True
        )
        numerator = np.exp(shifted)
        state.M = numerator / numerator.sum(axis=1, keepdims=True)
        state.s = state.r @ state.M

        # Step 2a: update the answering worker via Theorem 1's merge with
        # a single-task batch (q = s_a on this task, u = r).
        batch_quality = np.full_like(state.r, state.s[answer.choice - 1])
        self._store.merge(answer.worker_id, batch_quality, state.r)

        # Step 2b: refresh prior answerers' contributions: replace the old
        # s~_j with the new s_j at their answered choice.
        for worker_id, choice in self._history[answer.task_id]:
            stats = self._store.get(worker_id)
            delta = (state.s[choice - 1] - previous_s[choice - 1]) * state.r
            mask = stats.weight > 0
            updated = stats.quality.copy()
            updated[mask] += delta[mask] / stats.weight[mask]
            # Numerical guard: Eq. 5 keeps q in [0, 1]; enforce it under
            # floating-point drift.
            np.clip(updated, 0.0, 1.0, out=updated)
            self._store.set(worker_id, updated, stats.weight)

        self._history[answer.task_id].append(
            (answer.worker_id, answer.choice)
        )
        return state

    def resync_from_full_inference(
        self,
        probabilistic_truths: Mapping[int, np.ndarray],
        truth_matrices: Mapping[int, np.ndarray],
        worker_qualities: Mapping[str, np.ndarray],
        worker_weights: Mapping[str, np.ndarray],
    ) -> None:
        """Overwrite incremental state with a full iterative TI's output.

        DOCS runs full TI every z submissions; afterwards the incremental
        layer continues from the refreshed parameters. Log numerators are
        re-derived from the (strictly positive) refreshed M.
        """
        for task_id, s in probabilistic_truths.items():
            state = self._states.get(task_id)
            if state is None:
                continue
            M = np.asarray(truth_matrices[task_id], dtype=float)
            state.M = M
            state.s = np.asarray(s, dtype=float)
            state.log_numerators = np.log(np.clip(M, 1e-300, None))
        for worker_id, quality in worker_qualities.items():
            self._store.set(
                worker_id,
                np.asarray(quality, dtype=float),
                np.asarray(worker_weights[worker_id], dtype=float),
            )
