"""Domain Vector Estimation — Algorithm 1 and the enumeration baseline.

Given a task's detected entities ``E_t``, per-entity candidate linking
distributions ``p_i`` and per-candidate domain indicator vectors
``h_{i,j}``, the domain vector is the expected normalised indicator sum
over all entity-to-concept linkings (Eq. 1):

    r_t = sum_{pi in Omega} [ (sum_i h_{i,pi_i}) / (sum_k sum_i h_{i,pi_i,k}) ]
          * prod_i p_{i,pi_i}

``|Omega| = prod_i |p_i|`` is exponential. Algorithm 1 computes the same
value in ``O(c * m^2 * |E_t|^3)`` by dynamic programming over
(numerator, denominator) pairs — retained verbatim as
:func:`repro.core.reference.reference_domain_vector`, the executable
specification the vectorised path is tested against.

The production path here computes the identical expectation without a
per-pair dictionary DP. Writing ``N_k = sum_i h_{i,pi_i,k}`` and
``D = sum_i x_{i,pi_i}`` (with ``x_{i,j} = sum_k h_{i,j,k}``),

    r_t[k] = E[N_k / D ; D > 0]
           = sum_i sum_j p_{i,j} h_{i,j,k} * E[1 / (x_{i,j} + D_{-i})]

by linearity, where ``D_{-i}`` is the leave-one-out denominator sum over
the other entities. ``D_{-i}`` has a small integer support, so its
distribution is a product of per-entity pmfs — batched polynomial
convolutions — and the harmonic expectation is one matmul against a
``1/(x+d)`` table. Every term with ``h = 1`` forces ``x >= 1``, so the
``D > 0`` guard of Algorithm 1 (line 16: all-zero linkings drop their
mass) is automatic. :func:`domain_vectors_batch` evaluates whole task
batches this way, grouped by entity count; :func:`domain_vector` is the
single-task wrapper.

:func:`domain_vector` may return a sub-distribution (dropped all-zero
mass); :class:`DomainVectorEstimator` renormalises it (conditioning on
"at least one related concept") and falls back to uniform when no
evidence exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError, WorkBudgetExceeded
from repro.utils.math import uniform_distribution


class EntityLike(Protocol):
    """Anything carrying a linking distribution and indicator matrix.

    ``probabilities`` has shape (J,) and sums to 1; ``indicators`` has
    shape (J, m) with entries in {0, 1}.
    """

    probabilities: np.ndarray
    indicators: np.ndarray


@dataclass(frozen=True)
class EntityLinking:
    """A plain (p_i, h_i) pair usable wherever an entity is expected."""

    probabilities: np.ndarray
    indicators: np.ndarray


def _validate_entities(
    entities: Sequence[EntityLike],
) -> Tuple[List[np.ndarray], List[np.ndarray], int]:
    """Validate and coerce entity inputs; returns (probs, ints, m)."""
    if not entities:
        raise ValidationError("domain vector requires at least one entity")
    probs: List[np.ndarray] = []
    indicator_ints: List[np.ndarray] = []
    m = None
    for idx, entity in enumerate(entities):
        p = np.asarray(entity.probabilities, dtype=float)
        h = np.asarray(entity.indicators)
        if p.ndim != 1 or p.size == 0:
            raise ValidationError(f"entity {idx}: empty linking distribution")
        if not np.isclose(p.sum(), 1.0, atol=1e-6) or np.any(p < -1e-12):
            raise ValidationError(
                f"entity {idx}: linking probabilities must form a "
                f"distribution (sum={p.sum()})"
            )
        if h.ndim != 2 or h.shape[0] != p.size:
            raise ValidationError(
                f"entity {idx}: indicators shape {h.shape} misaligned with "
                f"{p.size} candidates"
            )
        if not np.all((h == 0) | (h == 1)):
            raise ValidationError(
                f"entity {idx}: indicator entries must be 0/1"
            )
        if m is None:
            m = h.shape[1]
        elif h.shape[1] != m:
            raise ValidationError(
                f"entity {idx}: indicator width {h.shape[1]} != {m}"
            )
        probs.append(p)
        indicator_ints.append(h.astype(np.int64))
    assert m is not None
    return probs, indicator_ints, m


def _batch_convolve(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Row-wise polynomial product of two pmf batches.

    Args:
        A: (T, sa) per-task pmfs over integer support 0..sa-1.
        B: (T, sb) per-task pmfs over integer support 0..sb-1.

    Returns:
        (T, sa + sb - 1) per-task pmfs of the independent sums.
    """
    sa, sb = A.shape[1], B.shape[1]
    if sb > sa:
        A, B, sa, sb = B, A, sb, sa
    out = np.zeros((A.shape[0], sa + sb - 1))
    for shift in range(sb):
        out[:, shift:shift + sa] += A * B[:, shift:shift + 1]
    return out


def _batch_kernel(
    F: np.ndarray, X: List[np.ndarray], P: List[np.ndarray],
    H: List[np.ndarray], m: int,
) -> np.ndarray:
    """Vectorised Eq. 1 for tasks sharing one entity count.

    Args:
        F: (T, ne, m + 1) per-entity pmfs of ``x_{i,pi_i}``.
        X: per-entity (T, J_i) integer indicator sums (ragged in J only).
        P: per-entity (T, J_i) linking probabilities.
        H: per-entity (T, J_i, m) indicator matrices.
        m: taxonomy size.

    Returns:
        (T, m) raw domain vectors (sub-distributions).
    """
    T, ne, _ = F.shape
    # Prefix/suffix pmf products give each entity's leave-one-out
    # denominator distribution D_{-i}.
    delta = np.ones((T, 1))
    prefix: List[np.ndarray] = [delta]
    for i in range(ne - 1):
        prefix.append(_batch_convolve(prefix[-1], F[:, i]))
    suffix: List[np.ndarray] = [delta]
    for i in range(ne - 1, 0, -1):
        suffix.append(_batch_convolve(suffix[-1], F[:, i]))
    suffix.reverse()
    support = (ne - 1) * m + 1
    # Harmonic table: inv[x - 1, d] = 1 / (x + d) for x in 1..m.
    inv = 1.0 / (
        np.arange(1, m + 1)[:, None] + np.arange(support)[None, :]
    )
    r = np.zeros((T, m))
    for i in range(ne):
        loo = _batch_convolve(prefix[i], suffix[i])        # (T, support_i)
        # W[t, x - 1] = E[1 / (x + D_{-i})] for x in 1..m.
        W = loo @ inv[:, : loo.shape[1]].T                 # (T, m)
        x_i = X[i]
        positive = x_i > 0
        weights = np.where(
            positive,
            P[i] * np.take_along_axis(
                W, np.maximum(x_i - 1, 0), axis=1
            ),
            0.0,
        )                                                  # (T, J_i)
        r += np.matmul(weights[:, None, :], H[i])[:, 0, :]
    return r


def domain_vector(entities: Sequence[EntityLike]) -> np.ndarray:
    """Eq. 1 exactly, in polynomial time (Algorithm 1's guarantee).

    Single-task wrapper over the vectorised kernel (see the module
    docstring); numerically equivalent to the retained dictionary DP
    :func:`repro.core.reference.reference_domain_vector`.

    Args:
        entities: the task's linked entities (``E_t`` with ``p_i`` and
            ``h_{i,j}``).

    Returns:
        The domain vector ``r_t`` of length m. Entries sum to the total
        probability of linkings with a non-zero denominator (<= 1; mass of
        all-zero linkings is dropped, per the paper).
    """
    probs, indicators, m = _validate_entities(entities)
    F = np.zeros((1, len(probs), m + 1))
    X, P, H = [], [], []
    for i, (p, h) in enumerate(zip(probs, indicators)):
        x = h.sum(axis=1)
        F[0, i] = np.bincount(x, weights=p, minlength=m + 1)
        X.append(x[None, :])
        P.append(p[None, :])
        H.append(h[None, :, :].astype(float))
    return _batch_kernel(F, X, P, H, m)[0]


def _raise_batch_error(
    t: int, entities: Sequence[EntityLike], probe: bool = False
) -> None:
    """Rerun the strict per-entity validator to name a batch offender.

    With ``probe`` the call is a no-op when the task validates (used to
    locate which task tripped the batch-level value check).
    """
    try:
        _validate_entities(entities)
    except ValidationError as exc:
        raise ValidationError(f"task index {t}: {exc}") from None
    if not probe:
        raise ValidationError(f"task index {t}: malformed entity inputs")


def domain_vectors_batch(
    entity_lists: Sequence[Sequence[EntityLike]],
    num_domains: Optional[int] = None,
) -> np.ndarray:
    """Raw domain vectors for many tasks in grouped array ops.

    Tasks are grouped by entity count; each group is evaluated by
    :func:`_batch_kernel` with no per-linking or per-(num, den) Python
    work. This is the ingest plane's DVE stage — equivalent to calling
    :func:`domain_vector` per task (tested against the retained DP in
    ``tests/core/test_dve_equivalence.py``) but batch-first.

    Args:
        entity_lists: one entity list per task; empty lists are allowed
            (their rows come back all-zero — no evidence).
        num_domains: taxonomy size m; required only when every task's
            entity list is empty.

    Returns:
        (len(entity_lists), m) raw domain vectors (sub-distributions,
        rows may sum to < 1).

    Raises:
        ValidationError: on malformed entities, inconsistent indicator
            widths, or an unresolvable m.
    """
    m = num_domains
    per_task: List[Optional[Tuple[List[np.ndarray], List[np.ndarray]]]] = []
    flat_probs: List[np.ndarray] = []
    flat_indicators: List[np.ndarray] = []
    for t, entities in enumerate(entity_lists):
        if not entities:
            per_task.append(None)
            continue
        probs: List[np.ndarray] = []
        indicators: List[np.ndarray] = []
        for entity in entities:
            p = np.asarray(entity.probabilities, dtype=float)
            h = np.asarray(entity.indicators)
            # Structural checks are cheap Python attribute reads; value
            # checks run once, vectorised, over the whole batch below.
            if (
                p.ndim != 1
                or p.size == 0
                or h.ndim != 2
                or h.shape[0] != p.size
            ):
                _raise_batch_error(t, entities)
            if m is None:
                m = h.shape[1]
            elif h.shape[1] != m:
                raise ValidationError(
                    f"task index {t}: indicator width {h.shape[1]} != {m}"
                )
            probs.append(p)
            indicators.append(h)
        per_task.append((probs, indicators))
        flat_probs.extend(probs)
        flat_indicators.extend(indicators)
    if m is None:
        raise ValidationError(
            "num_domains required when no task has entities"
        )
    if flat_probs:
        # One vectorised value-validation pass for the whole batch; the
        # per-entity validator reruns only to name the offender.
        p_all = np.concatenate(flat_probs)
        sizes = np.array([p.size for p in flat_probs])
        offsets = np.zeros(sizes.size, dtype=np.int64)
        np.cumsum(sizes[:-1], out=offsets[1:])
        sums = np.add.reduceat(p_all, offsets)
        h_all = np.concatenate(flat_indicators, axis=0)
        if (
            np.any(p_all < -1e-12)
            or not np.all(np.isclose(sums, 1.0, atol=1e-6))
            or not np.all((h_all == 0) | (h_all == 1))
        ):
            for t, parsed in enumerate(per_task):
                if parsed is not None:
                    _raise_batch_error(t, entity_lists[t], probe=True)
    R = np.zeros((len(entity_lists), m))

    by_count: Dict[int, List[int]] = {}
    for t, parsed in enumerate(per_task):
        if parsed is not None:
            by_count.setdefault(len(parsed[0]), []).append(t)
    for ne, task_rows in by_count.items():
        T = len(task_rows)
        F = np.zeros((T, ne, m + 1))
        X: List[np.ndarray] = []
        P: List[np.ndarray] = []
        H: List[np.ndarray] = []
        for i in range(ne):
            counts = [per_task[t][0][i].size for t in task_rows]
            J = max(counts)
            # Right-pad ragged candidate lists with zero-probability
            # entries: p = 0 contributes nothing to any term.
            p_block = np.zeros((T, J))
            x_block = np.zeros((T, J), dtype=np.int64)
            h_block = np.zeros((T, J, m))
            for row, t in enumerate(task_rows):
                p, h = per_task[t][0][i], per_task[t][1][i]
                p_block[row, : p.size] = p
                x_block[row, : p.size] = h.sum(axis=1)
                h_block[row, : p.size] = h
                F[row, i] = np.bincount(
                    x_block[row, : p.size], weights=p, minlength=m + 1
                )
            X.append(x_block)
            P.append(p_block)
            H.append(h_block)
        R[task_rows] = _batch_kernel(F, X, P, H, m)
    return R


def domain_vector_enumeration(
    entities: Sequence[EntityLike],
    work_limit: Optional[int] = None,
) -> np.ndarray:
    """Exponential enumeration over all linkings (the Eq. 1 baseline).

    Used only to validate Algorithm 1 and to reproduce Table 3's
    efficiency comparison. The paper reports ">1 day" at top-20
    candidates; ``work_limit`` caps the number of enumerated linkings so
    benchmarks terminate, raising :class:`WorkBudgetExceeded` (the
    reproduction's analogue of the paper's timeout).

    Args:
        entities: the task's linked entities.
        work_limit: maximum number of linkings to enumerate (None =
            unlimited).

    Returns:
        The domain vector ``r_t`` (identical to :func:`domain_vector` up
        to floating point).
    """
    probs, indicators, m = _validate_entities(entities)
    candidate_counts = [p.size for p in probs]
    total_linkings = int(np.prod([float(c) for c in candidate_counts]))
    if work_limit is not None and total_linkings > work_limit:
        raise WorkBudgetExceeded(total_linkings, work_limit)

    r = np.zeros(m, dtype=float)
    for linking in product(*(range(c) for c in candidate_counts)):
        probability = 1.0
        aggregated = np.zeros(m, dtype=np.int64)
        for p_i, h_i, j in zip(probs, indicators, linking):
            probability *= p_i[j]
            aggregated += h_i[j]
        denominator = int(aggregated.sum())
        if denominator == 0:
            continue
        r += (aggregated / denominator) * probability
    return r


def enumeration_linking_count(entities: Sequence[EntityLike]) -> int:
    """``|Omega|`` — the number of linkings enumeration must visit."""
    probs, _, _ = _validate_entities(entities)
    return int(np.prod([float(p.size) for p in probs]))


class DomainVectorEstimator:
    """End-to-end DVE: task text -> domain vector, via a linker.

    Combines the entity-linking Step 1 with Algorithm 1's Step 2 and
    handles the degenerate cases the raw algorithm leaves to callers:

    - no detected entities -> uniform domain vector (no evidence);
    - dropped all-zero-linking mass -> renormalised to a distribution
      (conditioning on the evidence that exists).

    Args:
        linker: an object with ``link(text, top_c=None) -> entities``
            (see :class:`repro.linking.EntityLinker`).
        num_domains: m, the taxonomy size.
    """

    def __init__(self, linker, num_domains: int):
        if num_domains <= 0:
            raise ValidationError(
                f"num_domains must be positive: {num_domains}"
            )
        self._linker = linker
        self._m = num_domains

    @property
    def num_domains(self) -> int:
        """Taxonomy size m."""
        return self._m

    def estimate(self, text: str, top_c: Optional[int] = None) -> np.ndarray:
        """Estimate the domain vector of one task description.

        Returns:
            A length-m probability distribution.
        """
        entities = self._linker.link(text, top_c=top_c)
        return self.estimate_from_entities(entities)

    def estimate_from_entities(
        self, entities: Sequence[EntityLike]
    ) -> np.ndarray:
        """Domain vector from pre-linked entities, with fallbacks."""
        if not entities:
            return uniform_distribution(self._m)
        raw = domain_vector(entities)
        total = raw.sum()
        if total <= 1e-12:
            return uniform_distribution(self._m)
        return raw / total

    def estimate_batch(
        self, texts: Sequence[str], top_c: Optional[int] = None
    ) -> np.ndarray:
        """Domain vectors for many task descriptions in one pass.

        Linking runs through the linker's batch path (shared candidate
        cache) and the DVE stage through :func:`domain_vectors_batch`.

        Returns:
            (len(texts), m) matrix; each row a probability distribution.
        """
        entity_lists = self._linker.link_batch(texts, top_c=top_c)
        return self.estimate_from_entities_batch(entity_lists)

    def estimate_from_entities_batch(
        self, entity_lists: Sequence[Sequence[EntityLike]]
    ) -> np.ndarray:
        """Batched :meth:`estimate_from_entities` with the same fallbacks."""
        R = domain_vectors_batch(entity_lists, num_domains=self._m)
        totals = R.sum(axis=1)
        no_evidence = totals <= 1e-12
        totals[no_evidence] = 1.0
        R /= totals[:, None]
        R[no_evidence] = 1.0 / self._m
        return R
