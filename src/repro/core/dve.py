"""Domain Vector Estimation — Algorithm 1 and the enumeration baseline.

Given a task's detected entities ``E_t``, per-entity candidate linking
distributions ``p_i`` and per-candidate domain indicator vectors
``h_{i,j}``, the domain vector is the expected normalised indicator sum
over all entity-to-concept linkings (Eq. 1):

    r_t = sum_{pi in Omega} [ (sum_i h_{i,pi_i}) / (sum_k sum_i h_{i,pi_i,k}) ]
          * prod_i p_{i,pi_i}

``|Omega| = prod_i |p_i|`` is exponential. Algorithm 1 computes the same
value in ``O(c * m^2 * |E_t|^3)`` by dynamic programming over
(numerator, denominator) pairs: both are small integers (indicators are
0/1), so the number of distinct pairs after i entities is at most
``(i + 1) * (m * i + 1)``.

Linkings whose aggregated indicator is all-zero (denominator 0) carry no
domain evidence; following the paper (Algorithm 1, line 16) their mass is
dropped. :func:`domain_vector` therefore may return a sub-distribution;
:class:`DomainVectorEstimator` renormalises it (conditioning on "at least
one related concept") and falls back to uniform when no evidence exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError, WorkBudgetExceeded
from repro.utils.math import uniform_distribution


class EntityLike(Protocol):
    """Anything carrying a linking distribution and indicator matrix.

    ``probabilities`` has shape (J,) and sums to 1; ``indicators`` has
    shape (J, m) with entries in {0, 1}.
    """

    probabilities: np.ndarray
    indicators: np.ndarray


@dataclass(frozen=True)
class EntityLinking:
    """A plain (p_i, h_i) pair usable wherever an entity is expected."""

    probabilities: np.ndarray
    indicators: np.ndarray


def _validate_entities(
    entities: Sequence[EntityLike],
) -> Tuple[List[np.ndarray], List[np.ndarray], int]:
    """Validate and coerce entity inputs; returns (probs, ints, m)."""
    if not entities:
        raise ValidationError("domain vector requires at least one entity")
    probs: List[np.ndarray] = []
    indicator_ints: List[np.ndarray] = []
    m = None
    for idx, entity in enumerate(entities):
        p = np.asarray(entity.probabilities, dtype=float)
        h = np.asarray(entity.indicators)
        if p.ndim != 1 or p.size == 0:
            raise ValidationError(f"entity {idx}: empty linking distribution")
        if not np.isclose(p.sum(), 1.0, atol=1e-6) or np.any(p < -1e-12):
            raise ValidationError(
                f"entity {idx}: linking probabilities must form a "
                f"distribution (sum={p.sum()})"
            )
        if h.ndim != 2 or h.shape[0] != p.size:
            raise ValidationError(
                f"entity {idx}: indicators shape {h.shape} misaligned with "
                f"{p.size} candidates"
            )
        if not np.all((h == 0) | (h == 1)):
            raise ValidationError(
                f"entity {idx}: indicator entries must be 0/1"
            )
        if m is None:
            m = h.shape[1]
        elif h.shape[1] != m:
            raise ValidationError(
                f"entity {idx}: indicator width {h.shape[1]} != {m}"
            )
        probs.append(p)
        indicator_ints.append(h.astype(np.int64))
    assert m is not None
    return probs, indicator_ints, m


def domain_vector(entities: Sequence[EntityLike]) -> np.ndarray:
    """Algorithm 1: polynomial-time exact domain vector computation.

    Args:
        entities: the task's linked entities (``E_t`` with ``p_i`` and
            ``h_{i,j}``).

    Returns:
        The domain vector ``r_t`` of length m. Entries sum to the total
        probability of linkings with a non-zero denominator (<= 1; mass of
        all-zero linkings is dropped, per the paper).
    """
    probs, indicators, m = _validate_entities(entities)
    # Pre-computation (line 1): x_{i,j} = sum_k h_{i,j,k}.
    x = [h.sum(axis=1) for h in indicators]

    r = np.zeros(m, dtype=float)
    for k in range(m):
        # M maps (numerator, denominator) -> aggregated probability.
        table: Dict[Tuple[int, int], float] = {(0, 0): 1.0}
        for p_i, h_i, x_i in zip(probs, indicators, x):
            h_ik = h_i[:, k]
            new_table: Dict[Tuple[int, int], float] = {}
            for (nm, dm), value in table.items():
                for j in range(p_i.size):
                    key = (nm + int(h_ik[j]), dm + int(x_i[j]))
                    new_table[key] = new_table.get(key, 0.0) + value * p_i[j]
            table = new_table
        total = 0.0
        for (nm, dm), value in table.items():
            if dm != 0 and nm != 0:
                total += (nm / dm) * value
        r[k] = total
    return r


def domain_vector_enumeration(
    entities: Sequence[EntityLike],
    work_limit: Optional[int] = None,
) -> np.ndarray:
    """Exponential enumeration over all linkings (the Eq. 1 baseline).

    Used only to validate Algorithm 1 and to reproduce Table 3's
    efficiency comparison. The paper reports ">1 day" at top-20
    candidates; ``work_limit`` caps the number of enumerated linkings so
    benchmarks terminate, raising :class:`WorkBudgetExceeded` (the
    reproduction's analogue of the paper's timeout).

    Args:
        entities: the task's linked entities.
        work_limit: maximum number of linkings to enumerate (None =
            unlimited).

    Returns:
        The domain vector ``r_t`` (identical to :func:`domain_vector` up
        to floating point).
    """
    probs, indicators, m = _validate_entities(entities)
    candidate_counts = [p.size for p in probs]
    total_linkings = int(np.prod([float(c) for c in candidate_counts]))
    if work_limit is not None and total_linkings > work_limit:
        raise WorkBudgetExceeded(total_linkings, work_limit)

    r = np.zeros(m, dtype=float)
    for linking in product(*(range(c) for c in candidate_counts)):
        probability = 1.0
        aggregated = np.zeros(m, dtype=np.int64)
        for p_i, h_i, j in zip(probs, indicators, linking):
            probability *= p_i[j]
            aggregated += h_i[j]
        denominator = int(aggregated.sum())
        if denominator == 0:
            continue
        r += (aggregated / denominator) * probability
    return r


def enumeration_linking_count(entities: Sequence[EntityLike]) -> int:
    """``|Omega|`` — the number of linkings enumeration must visit."""
    probs, _, _ = _validate_entities(entities)
    return int(np.prod([float(p.size) for p in probs]))


class DomainVectorEstimator:
    """End-to-end DVE: task text -> domain vector, via a linker.

    Combines the entity-linking Step 1 with Algorithm 1's Step 2 and
    handles the degenerate cases the raw algorithm leaves to callers:

    - no detected entities -> uniform domain vector (no evidence);
    - dropped all-zero-linking mass -> renormalised to a distribution
      (conditioning on the evidence that exists).

    Args:
        linker: an object with ``link(text, top_c=None) -> entities``
            (see :class:`repro.linking.EntityLinker`).
        num_domains: m, the taxonomy size.
    """

    def __init__(self, linker, num_domains: int):
        if num_domains <= 0:
            raise ValidationError(
                f"num_domains must be positive: {num_domains}"
            )
        self._linker = linker
        self._m = num_domains

    @property
    def num_domains(self) -> int:
        """Taxonomy size m."""
        return self._m

    def estimate(self, text: str, top_c: Optional[int] = None) -> np.ndarray:
        """Estimate the domain vector of one task description.

        Returns:
            A length-m probability distribution.
        """
        entities = self._linker.link(text, top_c=top_c)
        return self.estimate_from_entities(entities)

    def estimate_from_entities(
        self, entities: Sequence[EntityLike]
    ) -> np.ndarray:
        """Domain vector from pre-linked entities, with fallbacks."""
        if not entities:
            return uniform_distribution(self._m)
        raw = domain_vector(entities)
        total = raw.sum()
        if total <= 1e-12:
            return uniform_distribution(self._m)
        return raw / total
