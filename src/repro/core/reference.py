"""Per-object reference implementation of incremental TI.

The serving path (:class:`repro.core.incremental.IncrementalTruthInference`)
updates rows of a shared :class:`repro.core.arena.StateArena` in place.
This module keeps the original one-``TaskState``-per-task formulation of
the Section 4.2 update — detached numpy arrays, no shared buffers — as an
executable specification:

- the arena/legacy equivalence suite drives both implementations through
  identical workloads and asserts identical states, qualities and HIT
  selections (``tests/core/test_arena_equivalence.py``);
- ``benchmarks/bench_perf.py`` times it as the pre-arena baseline.

It is intentionally *not* optimised; do not use it on the serving path.

Alongside the incremental updater, this module snapshots the pre-arena
*kernels* verbatim — :func:`reference_batch_benefits` /
:func:`reference_assign` (candidate-list + per-arrival stacking, 4-D
Theorem 3 tensor) and :func:`reference_infer` (per-call answer
re-indexing, ``np.add.at`` scatter loops) — so the benchmark's "legacy"
side measures exactly the code path this PR replaced, not a version
that silently inherits the new optimisations.

:func:`reference_domain_vector` is the same kind of snapshot for the
ingest plane: Algorithm 1's per-task dictionary DP over (numerator,
denominator) pairs, exactly as the paper states it. The vectorised
:func:`repro.core.dve.domain_vectors_batch` is tested for equivalence
against it and ``benchmarks/bench_perf.py`` times it as the pre-pipeline
``prepare()`` baseline.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.quality_store import WorkerQualityStore
from repro.core.truth_inference import (
    DEFAULT_INITIAL_QUALITY,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    QUALITY_CEIL,
    QUALITY_FLOOR,
    TruthInferenceResult,
)
from repro.core.types import (
    Answer,
    Task,
    TaskState,
    group_answers_by_task,
    group_answers_by_worker,
)
from repro.errors import UnknownTaskError, ValidationError
from repro.utils.math import safe_log
from repro.utils.topk import top_k_indices


class ReferenceIncrementalTruthInference:
    """The pre-arena incremental updater: one detached state per task.

    Mirrors :class:`repro.core.incremental.IncrementalTruthInference`'s
    interface and numerics exactly; state is re-materialised per task as
    standalone arrays instead of arena rows.
    """

    def __init__(self, quality_store: WorkerQualityStore):
        self._store = quality_store
        self._states: Dict[int, TaskState] = {}
        self._history: Dict[int, List[Tuple[str, int]]] = {}

    @property
    def quality_store(self) -> WorkerQualityStore:
        return self._store

    def register_task(self, task: Task) -> TaskState:
        existing = self._states.get(task.task_id)
        if existing is not None:
            return existing
        if task.domain_vector is None:
            raise ValidationError(
                f"task {task.task_id} has no domain vector; run DVE first"
            )
        state = TaskState.fresh(task, np.asarray(task.domain_vector))
        self._states[task.task_id] = state
        self._history[task.task_id] = []
        return state

    def state(self, task_id: int) -> TaskState:
        state = self._states.get(task_id)
        if state is None:
            raise UnknownTaskError(task_id)
        return state

    def states(self) -> Mapping[int, TaskState]:
        return self._states

    def answered_workers(self, task_id: int) -> List[Tuple[str, int]]:
        return list(self._history.get(task_id, []))

    def submit(self, answer: Answer) -> TaskState:
        """The Section 4.2 update on detached per-task arrays."""
        state = self.state(answer.task_id)
        ell = state.num_choices
        if not 1 <= answer.choice <= ell:
            raise ValidationError(
                f"choice {answer.choice} outside [1, {ell}] for task "
                f"{answer.task_id}"
            )
        if any(
            worker_id == answer.worker_id
            for worker_id, _ in self._history[answer.task_id]
        ):
            raise ValidationError(
                f"worker {answer.worker_id} already answered task "
                f"{answer.task_id} (a worker answers a task at most once)"
            )

        previous_s = state.s.copy()
        quality = np.clip(
            self._store.quality_or_default(answer.worker_id),
            QUALITY_FLOOR,
            QUALITY_CEIL,
        )

        # Step 1: fold the answer into the stored log numerators M-hat.
        log_correct = np.log(quality)
        log_incorrect = np.log((1.0 - quality) / (ell - 1))
        contribution = np.tile(log_incorrect[:, None], (1, ell))
        contribution[:, answer.choice - 1] = log_correct
        assert state.log_numerators is not None
        state.log_numerators += contribution
        shifted = state.log_numerators - state.log_numerators.max(
            axis=1, keepdims=True
        )
        numerator = np.exp(shifted)
        state.M = numerator / numerator.sum(axis=1, keepdims=True)
        state.s = state.r @ state.M

        # Step 2a: merge the answering worker's single-task batch.
        batch_quality = np.full_like(state.r, state.s[answer.choice - 1])
        self._store.merge(answer.worker_id, batch_quality, state.r)

        # Step 2b: refresh prior answerers' contributions.
        for worker_id, choice in self._history[answer.task_id]:
            stats = self._store.get(worker_id)
            delta = (state.s[choice - 1] - previous_s[choice - 1]) * state.r
            mask = stats.weight > 0
            updated = stats.quality.copy()
            updated[mask] += delta[mask] / stats.weight[mask]
            np.clip(updated, 0.0, 1.0, out=updated)
            self._store.set(worker_id, updated, stats.weight)

        self._history[answer.task_id].append(
            (answer.worker_id, answer.choice)
        )
        return state

    def resync_from_full_inference(
        self,
        probabilistic_truths: Mapping[int, np.ndarray],
        truth_matrices: Mapping[int, np.ndarray],
        worker_qualities: Mapping[str, np.ndarray],
        worker_weights: Mapping[str, np.ndarray],
    ) -> None:
        for task_id, truth in probabilistic_truths.items():
            state = self._states.get(task_id)
            if state is None:
                continue
            M = np.asarray(truth_matrices[task_id], dtype=float)
            state.M = M
            state.s = np.asarray(truth, dtype=float)
            state.log_numerators = np.log(np.clip(M, 1e-300, None))
        for worker_id, quality in worker_qualities.items():
            self._store.set(
                worker_id,
                np.asarray(quality, dtype=float),
                np.asarray(worker_weights[worker_id], dtype=float),
            )


def reference_domain_vector(entities) -> np.ndarray:
    """Algorithm 1 as stated in the paper: the (num, den)-pair DP.

    The executable specification for
    :func:`repro.core.dve.domain_vector` and
    :func:`repro.core.dve.domain_vectors_batch`; intentionally kept as
    per-pair Python dictionary work.
    """
    from repro.core.dve import _validate_entities

    probs, indicators, m = _validate_entities(entities)
    # Pre-computation (line 1): x_{i,j} = sum_k h_{i,j,k}.
    x = [h.sum(axis=1) for h in indicators]

    r = np.zeros(m, dtype=float)
    for k in range(m):
        # M maps (numerator, denominator) -> aggregated probability.
        table: Dict[Tuple[int, int], float] = {(0, 0): 1.0}
        for p_i, h_i, x_i in zip(probs, indicators, x):
            h_ik = h_i[:, k]
            new_table: Dict[Tuple[int, int], float] = {}
            for (nm, dm), value in table.items():
                for j in range(p_i.size):
                    key = (nm + int(h_ik[j]), dm + int(x_i[j]))
                    new_table[key] = new_table.get(key, 0.0) + value * p_i[j]
            table = new_table
        total = 0.0
        for (nm, dm), value in table.items():
            if dm != 0 and nm != 0:
                total += (nm / dm) * value
        r[k] = total
    return r


def reference_batch_benefits(
    states: Sequence[TaskState], quality: np.ndarray
) -> np.ndarray:
    """The pre-arena vectorised benefit kernel (4-D update tensor)."""
    benefits = np.empty(len(states), dtype=float)
    by_ell: Dict[int, List[int]] = defaultdict(list)
    for idx, state in enumerate(states):
        by_ell[state.num_choices].append(idx)

    q_raw = np.asarray(quality, dtype=float)
    for ell, indices in by_ell.items():
        R = np.stack([states[i].r for i in indices])           # (n, m)
        M = np.stack([states[i].M for i in indices])           # (n, m, l)
        S = np.stack([states[i].s for i in indices])           # (n, l)
        q = np.clip(q_raw, QUALITY_FLOOR, QUALITY_CEIL)        # (m,)
        wrong = (1.0 - q) / (ell - 1)                          # (m,)

        per_domain = q[None, :, None] * M + wrong[None, :, None] * (1.0 - M)
        answer_probs = np.einsum("nm,nml->nl", R, per_domain)

        factor = np.broadcast_to(
            wrong[:, None, None], (q.size, ell, ell)
        ).copy()
        eye = np.eye(ell, dtype=bool)
        factor[:, eye] = np.repeat(q[:, None], ell, axis=1)
        updated = M[:, :, :, None] * factor[None, :, :, :]
        updated /= updated.sum(axis=2, keepdims=True)
        s_given_a = np.einsum("nm,nmja->nja", R, updated)
        posterior_entropy = -np.sum(
            s_given_a * safe_log(s_given_a), axis=1
        )
        expected_posterior = np.sum(posterior_entropy * answer_probs, axis=1)
        prior_entropy = -np.sum(S * safe_log(S), axis=1)
        benefits[indices] = prior_entropy - expected_posterior
    return benefits


def reference_assign(
    states: Mapping[int, TaskState],
    worker_quality: np.ndarray,
    answered_by_worker: Optional[Set[int]] = None,
    k: int = 20,
) -> List[int]:
    """The pre-arena assignment path: build a candidate list, stack it,
    evaluate the old kernel, take the top k."""
    answered = answered_by_worker or set()
    candidates = [
        state
        for task_id, state in states.items()
        if task_id not in answered
    ]
    if not candidates:
        return []
    benefits = reference_batch_benefits(candidates, worker_quality)
    take = min(k, len(candidates))
    chosen = top_k_indices(benefits, take)
    return [candidates[i].task.task_id for i in chosen]


def reference_infer(
    tasks: Sequence[Task],
    answers: Sequence[Answer],
    initial_qualities: Optional[Mapping[str, np.ndarray]] = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    tolerance: float = DEFAULT_TOLERANCE,
    default_quality: float = DEFAULT_INITIAL_QUALITY,
    track_delta: bool = True,
) -> TruthInferenceResult:
    """The pre-arena full TI, verbatim: rebuilds every index array from
    the answer list per call and scatters with ``np.add.at``."""
    task_index: Dict[int, Task] = {}
    domain_vectors: Dict[int, np.ndarray] = {}
    m = None
    for task in tasks:
        if task.domain_vector is None:
            raise ValidationError(
                f"task {task.task_id} has no domain vector; run DVE first"
            )
        task_index[task.task_id] = task
        domain_vectors[task.task_id] = np.asarray(
            task.domain_vector, dtype=float
        )
        if m is None:
            m = domain_vectors[task.task_id].shape[0]
    if m is None:
        raise ValidationError("no tasks given")

    by_task = group_answers_by_task(answers)
    by_worker = group_answers_by_worker(answers)
    answered_ids: List[int] = list(by_task.keys())
    if not answered_ids:
        return TruthInferenceResult(
            probabilistic_truths={},
            truth_matrices={},
            worker_qualities={},
            worker_weights={},
        )
    tid_to_row = {tid: row for row, tid in enumerate(answered_ids)}
    n = len(answered_ids)
    worker_ids: List[str] = list(by_worker.keys())
    wid_to_row = {wid: row for row, wid in enumerate(worker_ids)}
    W = len(worker_ids)

    ells = np.array(
        [task_index[tid].num_choices for tid in answered_ids],
        dtype=np.int64,
    )
    ell_max = int(ells.max())
    valid = np.arange(ell_max)[None, :] < ells[:, None]
    R = np.stack([domain_vectors[tid] for tid in answered_ids])

    a_task = np.array(
        [tid_to_row[a.task_id] for a in answers], dtype=np.int64
    )
    a_worker = np.array(
        [wid_to_row[a.worker_id] for a in answers], dtype=np.int64
    )
    a_choice = np.array([a.choice - 1 for a in answers], dtype=np.int64)
    a_ell = ells[a_task]

    Q = np.full((W, m), default_quality)
    if initial_qualities:
        for wid, row in wid_to_row.items():
            if wid in initial_qualities:
                Q[row] = np.asarray(initial_qualities[wid], dtype=float)

    S = np.where(valid, 1.0, 0.0)
    S = S / S.sum(axis=1, keepdims=True)
    M = np.zeros((n, m, ell_max))

    delta_history: List[float] = []
    iterations_run = 0
    for _ in range(max_iterations):
        iterations_run += 1
        S_prev = S.copy()
        Q_prev = Q.copy()

        Qc = np.clip(Q, QUALITY_FLOOR, QUALITY_CEIL)
        log_correct = np.log(Qc)
        log_incorrect_a = np.log(
            (1.0 - Qc[a_worker]) / (a_ell - 1)[:, None]
        )
        log_correct_a = log_correct[a_worker]

        base = np.zeros((n, m))
        np.add.at(base, a_task, log_incorrect_a)
        logM = np.repeat(base[:, :, None], ell_max, axis=2)
        delta_a = log_correct_a - log_incorrect_a
        col_buffer = np.zeros((n * ell_max, m))
        np.add.at(col_buffer, a_task * ell_max + a_choice, delta_a)
        logM = logM + col_buffer.reshape(n, ell_max, m).transpose(0, 2, 1)
        logM = np.where(valid[:, None, :], logM, -np.inf)
        logM -= logM.max(axis=2, keepdims=True)
        expM = np.exp(logM)
        M = expM / expM.sum(axis=2, keepdims=True)
        S = np.einsum("nm,nml->nl", R, M)

        s_at_choice = S[a_task, a_choice]
        numerator = np.zeros((W, m))
        denominator = np.zeros((W, m))
        np.add.at(numerator, a_worker, R[a_task] * s_at_choice[:, None])
        np.add.at(denominator, a_worker, R[a_task])
        mask = denominator > 0
        Q = np.where(mask, np.divide(
            numerator, denominator, out=np.zeros_like(numerator),
            where=mask,
        ), Q)

        if track_delta or tolerance > 0:
            truth_change = float(
                (np.abs(S - S_prev).sum(axis=1) / ells).mean()
            )
            quality_change = float(np.abs(Q - Q_prev).mean()) if W else 0.0
            delta = truth_change + quality_change
            delta_history.append(delta)
            if delta < tolerance:
                break

    def _weights(worker_answers):
        weights = np.zeros(m)
        for answer in worker_answers:
            weights += domain_vectors[answer.task_id]
        return weights

    return TruthInferenceResult(
        probabilistic_truths={
            tid: S[row, : ells[row]].copy()
            for tid, row in tid_to_row.items()
        },
        truth_matrices={
            tid: M[row, :, : ells[row]].copy()
            for tid, row in tid_to_row.items()
        },
        worker_qualities={
            wid: Q[row].copy() for wid, row in wid_to_row.items()
        },
        worker_weights={
            worker_id: _weights(worker_answers)
            for worker_id, worker_answers in by_worker.items()
        },
        delta_history=delta_history,
        iterations=iterations_run,
    )
