"""Confidence-based task retirement (the paper's "stable point").

Section 6.3 observes that accuracy "remains stable as >= 8 answers are
collected" for some datasets and defers "the estimation of stable point"
to future work. This module implements that extension: a stopping rule
that *retires* a task — stops assigning it — once its probabilistic
truth is confident enough, releasing the remaining budget to tasks that
still need answers.

Two rules are provided:

- :class:`ConfidenceStoppingRule` — retire when ``max_j s_j`` crosses a
  threshold (with a minimum answer count so a single early answer cannot
  retire a task);
- :class:`EntropyStoppingRule` — retire when the truth entropy falls
  below a threshold (scale-free across different choice counts).

:class:`BudgetSavingAssigner` wraps :class:`repro.core.assignment.TaskAssigner`
with a rule, exposing the same ``assign`` interface restricted to live
tasks; :func:`savings_report` quantifies how much budget a rule would
have saved on a finished campaign.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set

import numpy as np

from repro.core.assignment import TaskAssigner
from repro.core.types import TaskState
from repro.errors import ValidationError
from repro.utils.math import entropy_unchecked


class StoppingRule(abc.ABC):
    """Decides whether a task needs more answers."""

    @abc.abstractmethod
    def should_stop(self, state: TaskState, answer_count: int) -> bool:
        """True if the task can be retired given its current state."""


class ConfidenceStoppingRule(StoppingRule):
    """Retire when the MAP probability is high enough.

    Args:
        threshold: retire once ``max_j s_j >= threshold``.
        min_answers: never retire before this many answers (guards
            against retiring on the confident-looking posterior a single
            high-quality answer produces).
    """

    def __init__(self, threshold: float = 0.95, min_answers: int = 3):
        if not 0.5 < threshold <= 1.0:
            raise ValidationError(
                f"threshold must be in (0.5, 1]: {threshold}"
            )
        if min_answers < 1:
            raise ValidationError("min_answers must be >= 1")
        self.threshold = threshold
        self.min_answers = min_answers

    def should_stop(self, state: TaskState, answer_count: int) -> bool:
        if answer_count < self.min_answers:
            return False
        return float(state.s.max()) >= self.threshold


class EntropyStoppingRule(StoppingRule):
    """Retire when the truth entropy is low enough.

    Args:
        max_entropy: retire once ``H(s) <= max_entropy`` (nats).
        min_answers: minimum answers before retirement.
    """

    def __init__(self, max_entropy: float = 0.2, min_answers: int = 3):
        if max_entropy <= 0:
            raise ValidationError("max_entropy must be positive")
        if min_answers < 1:
            raise ValidationError("min_answers must be >= 1")
        self.max_entropy = max_entropy
        self.min_answers = min_answers

    def should_stop(self, state: TaskState, answer_count: int) -> bool:
        if answer_count < self.min_answers:
            return False
        return entropy_unchecked(state.s) <= self.max_entropy


class BudgetSavingAssigner:
    """OTA with task retirement.

    Wraps a :class:`TaskAssigner`; before each assignment, tasks the
    rule retires are removed from the candidate pool. Retirement is
    monotone (a retired task stays retired) so downstream bookkeeping
    stays simple even if later full-TI re-runs soften a posterior.

    Args:
        rule: the stopping rule.
        assigner: the underlying benefit-based assigner.
    """

    def __init__(
        self,
        rule: StoppingRule,
        assigner: Optional[TaskAssigner] = None,
    ):
        self._rule = rule
        self._assigner = assigner or TaskAssigner()
        self._retired: Set[int] = set()

    @property
    def retired(self) -> Set[int]:
        """Ids of retired tasks."""
        return set(self._retired)

    def refresh(
        self,
        states: Mapping[int, TaskState],
        answer_counts: Mapping[int, int],
    ) -> Set[int]:
        """Re-evaluate the rule; returns the tasks retired by this call."""
        newly = set()
        for task_id, state in states.items():
            if task_id in self._retired:
                continue
            if self._rule.should_stop(
                state, answer_counts.get(task_id, 0)
            ):
                newly.add(task_id)
        self._retired |= newly
        return newly

    def assign(
        self,
        states: Mapping[int, TaskState],
        worker_quality: np.ndarray,
        answer_counts: Mapping[int, int],
        answered_by_worker: Optional[Set[int]] = None,
        k: Optional[int] = None,
    ) -> List[int]:
        """Assign among live (non-retired) tasks only."""
        self.refresh(states, answer_counts)
        live = {tid for tid in states if tid not in self._retired}
        if not live:
            return []
        return self._assigner.assign(
            states,
            worker_quality,
            answered_by_worker=answered_by_worker,
            k=k,
            eligible=live,
        )


@dataclass
class SavingsReport:
    """Outcome of :func:`savings_report`.

    Attributes:
        total_answers: answers actually collected.
        needed_answers: answers the rule would have kept.
        saved_fraction: fraction of the budget the rule releases.
        accuracy_full: accuracy using all answers.
        accuracy_stopped: accuracy using only the kept answers.
    """

    total_answers: int
    needed_answers: int
    saved_fraction: float
    accuracy_full: float
    accuracy_stopped: float


def savings_report(
    tasks,
    answers,
    rule: StoppingRule,
    truth_inference,
) -> SavingsReport:
    """Replay a campaign under a stopping rule and quantify savings.

    Answers are replayed in arrival order; once the rule retires a task
    (based on a running single-task posterior under the inferred final
    worker qualities), its later answers are discarded. Accuracy is then
    re-inferred from the kept answers only.

    Args:
        tasks: the task list (with domain vectors and ground truth).
        answers: the full collected answer stream.
        rule: the stopping rule to evaluate.
        truth_inference: a :class:`repro.core.truth_inference.TruthInference`.

    Returns:
        A :class:`SavingsReport`.
    """
    from repro.core.quality_store import WorkerQualityStore
    from repro.core.incremental import IncrementalTruthInference

    full = truth_inference.infer(tasks, answers)
    accuracy_full = full.accuracy(tasks)

    m = tasks[0].domain_vector.shape[0]
    store = WorkerQualityStore(m)
    for worker_id, quality in full.worker_qualities.items():
        store.set(worker_id, quality, np.ones(m))
    engine = IncrementalTruthInference(store)
    for task in tasks:
        engine.register_task(task)

    kept = []
    counts: Dict[int, int] = {}
    retired: Set[int] = set()
    for answer in answers:
        if answer.task_id in retired:
            continue
        engine.submit(answer)
        kept.append(answer)
        counts[answer.task_id] = counts.get(answer.task_id, 0) + 1
        state = engine.state(answer.task_id)
        if rule.should_stop(state, counts[answer.task_id]):
            retired.add(answer.task_id)

    stopped = truth_inference.infer(tasks, kept)
    return SavingsReport(
        total_answers=len(answers),
        needed_answers=len(kept),
        saved_fraction=1.0 - len(kept) / max(len(answers), 1),
        accuracy_full=accuracy_full,
        accuracy_stopped=stopped.accuracy(tasks),
    )
