"""Golden-task selection (Section 5.2).

Given n tasks with domain vectors and a budget of n' golden tasks, choose
per-domain counts ``n'_k`` minimising the KL divergence between the
selected distribution ``sigma = n'_k / n'`` and the aggregate task-domain
distribution ``tau_k = sum_i r_ik / n`` (Eq. 11), then take the top
``n'_k`` tasks by ``r_ik`` for each domain.

Eq. 11 is an integer program (NP-hard in general); the paper's
approximation first floors ``n'_k = floor(tau_k * n')`` and then
distributes the remaining budget greedily, each time incrementing the
domain that minimises the resulting objective. The enumeration baseline
(over all compositions of n' into m parts) reproduces Figure 7(a)'s
optimality/efficiency comparison.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.utils.math import normalize


def kl_objective(counts: np.ndarray, tau: np.ndarray, n_prime: int) -> float:
    """The Eq. 11 objective ``D(sigma || tau)`` for integer counts.

    Zero counts contribute zero; a positive count on a zero-mass domain
    yields ``inf``.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.sum() <= 0:
        return 0.0
    sigma = counts / n_prime
    mask = sigma > 0
    if np.any(tau[mask] <= 0):
        return float("inf")
    return float(
        np.sum(sigma[mask] * (np.log(sigma[mask]) - np.log(tau[mask])))
    )


def select_golden_counts(tau: Sequence[float], n_prime: int) -> np.ndarray:
    """The paper's approximation algorithm for Eq. 11.

    Args:
        tau: the aggregate domain distribution (length m, sums to 1).
        n_prime: the golden-task budget.

    Returns:
        Integer counts ``n'_k`` summing to ``n_prime``.
    """
    tau_arr = np.asarray(tau, dtype=float)
    if n_prime < 0:
        raise ValidationError(f"n_prime must be non-negative: {n_prime}")
    if tau_arr.ndim != 1 or tau_arr.size == 0:
        raise ValidationError("tau must be a non-empty vector")
    if np.any(tau_arr < -1e-12) or not np.isclose(tau_arr.sum(), 1.0, atol=1e-6):
        raise ValidationError("tau must be a probability distribution")
    m = tau_arr.size

    counts = np.floor(tau_arr * n_prime).astype(int)
    remaining = n_prime - int(counts.sum())
    # The floor bound guarantees remaining <= m (see the paper's
    # complexity analysis), so this loop runs at most m times.
    for _ in range(remaining):
        best_k = -1
        best_value = float("inf")
        for k in range(m):
            if tau_arr[k] <= 0:
                continue
            trial = counts.copy()
            trial[k] += 1
            value = kl_objective(trial, tau_arr, n_prime)
            if value < best_value:
                best_value = value
                best_k = k
        if best_k < 0:
            # All mass-zero domains: dump the remainder on the largest tau
            # (only reachable with degenerate tau due to the checks above).
            best_k = int(np.argmax(tau_arr))
        counts[best_k] += 1
    return counts


def _compositions(total: int, parts: int) -> Iterator[Tuple[int, ...]]:
    """All compositions of ``total`` into ``parts`` non-negative ints."""
    if parts == 1:
        yield (total,)
        return
    for head in range(total + 1):
        for rest in _compositions(total - head, parts - 1):
            yield (head,) + rest


def enumerate_golden_counts(
    tau: Sequence[float], n_prime: int
) -> Tuple[np.ndarray, float]:
    """Brute-force optimum of Eq. 11 over all compositions.

    Exponential in practice (``C(n' + m - 1, m - 1)`` cases); used only
    for the Figure 7(a) comparison and for verifying the approximation
    ratio gamma on small instances.

    Returns:
        (optimal counts, optimal objective value).
    """
    tau_arr = np.asarray(tau, dtype=float)
    best_counts: Optional[np.ndarray] = None
    best_value = float("inf")
    for composition in _compositions(n_prime, tau_arr.size):
        counts = np.array(composition, dtype=int)
        value = kl_objective(counts, tau_arr, n_prime)
        if value < best_value:
            best_value = value
            best_counts = counts
    assert best_counts is not None
    return best_counts, best_value


def aggregate_domain_distribution(
    domain_vectors: Sequence[np.ndarray],
) -> np.ndarray:
    """``tau_k = sum_i r_ik / n`` — the task pool's domain distribution."""
    if not domain_vectors:
        raise ValidationError("no domain vectors given")
    stacked = np.stack([np.asarray(r, dtype=float) for r in domain_vectors])
    return normalize(stacked.sum(axis=0))


def select_golden_tasks(
    domain_vectors: Sequence[np.ndarray],
    n_prime: int,
) -> List[int]:
    """Full golden-task selection: counts via Eq. 11, then top tasks.

    For each domain k (descending ``n'_k``), pick the ``n'_k`` not-yet-
    selected tasks with the highest ``r_ik`` (guideline 1 of Section 5.2);
    a task is selected at most once even if it tops several domains.

    Args:
        domain_vectors: one length-m domain vector per task (task index =
            position).
        n_prime: number of golden tasks to select (must be <= n).

    Returns:
        Selected task indices (into ``domain_vectors``).
    """
    n = len(domain_vectors)
    if n_prime > n:
        raise ValidationError(
            f"cannot select {n_prime} golden tasks from {n} tasks"
        )
    if n_prime == 0:
        return []
    tau = aggregate_domain_distribution(domain_vectors)
    counts = select_golden_counts(tau, n_prime)
    R = np.stack([np.asarray(r, dtype=float) for r in domain_vectors])

    selected: List[int] = []
    taken = np.zeros(n, dtype=bool)
    # Fill high-demand domains first so collisions steal from domains with
    # spare depth.
    for k in np.argsort(-counts):
        need = int(counts[k])
        if need == 0:
            continue
        order = np.argsort(-R[:, k], kind="stable")
        for task_idx in order:
            if need == 0:
                break
            if taken[task_idx]:
                continue
            taken[task_idx] = True
            selected.append(int(task_idx))
            need -= 1
    return selected
