"""Core data types: tasks, answers, and per-task inference state.

Conventions (following the paper):

- Answers are 1-based: ``1 <= v <= l_ti`` (Definition 4).
- Domain vectors ``r`` are length-m probability distributions
  (Definition 2).
- ``M`` is the m x l matrix of Eq. 3: row k is the truth distribution
  conditioned on the task's true domain being ``d_k``.
- ``s = r @ M`` is the task's probabilistic truth (Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.utils.math import is_distribution


@dataclass
class Task:
    """A multiple-choice crowdsourcing task (Definition 2).

    Attributes:
        task_id: unique id within a task set.
        text: natural-language description shown to workers and consumed
            by DVE.
        num_choices: number of possible answers ``l_ti`` (>= 2).
        domain_vector: the estimated domain distribution ``r_ti`` (set by
            DVE; may be None before estimation).
        ground_truth: the true answer ``v*_i`` (1-based) when known —
            used for evaluation and for golden tasks.
        true_domain: the task's actual domain index (dataset ground truth,
            used to evaluate domain detection and to drive the simulated
            workers' behaviour).
        distractor: a plausible-but-wrong choice (1-based). When set,
            simulated wrong answers concentrate on it instead of
            spreading uniformly — modelling multi-choice tasks whose
            options come from real QA systems (SFV) where one wrong
            candidate looks convincing.
        behavior_domains: the task's *actual* soft domain mixture
            (length-m distribution) governing simulated worker behaviour.
            Real tasks are rarely purely one domain (Section 6.2's
            multi-domain analysis); when set, a worker's effective
            accuracy on this task mixes her per-domain qualities by this
            distribution. ``true_domain`` remains the primary label used
            for detection evaluation and hard-topic baselines.
    """

    task_id: int
    text: str
    num_choices: int
    domain_vector: Optional[np.ndarray] = None
    ground_truth: Optional[int] = None
    true_domain: Optional[int] = None
    distractor: Optional[int] = None
    behavior_domains: Optional[np.ndarray] = None

    @classmethod
    def rehydrate(
        cls,
        task_id: int,
        text: str,
        num_choices: int,
        domain_vector: Optional[np.ndarray] = None,
        ground_truth: Optional[int] = None,
        true_domain: Optional[int] = None,
        distractor: Optional[int] = None,
    ) -> "Task":
        """Reconstruct a task from previously persisted values.

        Skips ``__post_init__``'s per-field numpy validation — the
        values already passed it when the task was first built, and
        re-checking one task at a time dominates bulk catalogue loads
        (the resume path decodes the whole catalogue). Callers are
        expected to batch-validate decoded domain vectors instead (see
        ``repro.platform.sqlite_storage``). ``behavior_domains`` is a
        simulation-only field that is never persisted, so it is always
        ``None`` here.
        """
        task = cls.__new__(cls)
        task.task_id = task_id
        task.text = text
        task.num_choices = num_choices
        task.domain_vector = domain_vector
        task.ground_truth = ground_truth
        task.true_domain = true_domain
        task.distractor = distractor
        task.behavior_domains = None
        return task

    def __post_init__(self) -> None:
        if self.num_choices < 2:
            raise ValidationError(
                f"task {self.task_id}: num_choices must be >= 2, "
                f"got {self.num_choices}"
            )
        if self.ground_truth is not None and not (
            1 <= self.ground_truth <= self.num_choices
        ):
            raise ValidationError(
                f"task {self.task_id}: ground truth {self.ground_truth} "
                f"outside [1, {self.num_choices}]"
            )
        if self.distractor is not None and not (
            1 <= self.distractor <= self.num_choices
        ):
            raise ValidationError(
                f"task {self.task_id}: distractor {self.distractor} "
                f"outside [1, {self.num_choices}]"
            )
        if self.domain_vector is not None:
            self.domain_vector = np.asarray(self.domain_vector, dtype=float)
            if not is_distribution(self.domain_vector):
                raise ValidationError(
                    f"task {self.task_id}: domain vector is not a "
                    "probability distribution"
                )
        if self.behavior_domains is not None:
            self.behavior_domains = np.asarray(
                self.behavior_domains, dtype=float
            )
            if not is_distribution(self.behavior_domains):
                raise ValidationError(
                    f"task {self.task_id}: behavior_domains is not a "
                    "probability distribution"
                )


@dataclass(frozen=True)
class Answer:
    """One worker's answer to one task (Definition 4).

    Attributes:
        worker_id: the answering worker.
        task_id: the answered task.
        choice: the selected choice, 1-based.
    """

    worker_id: str
    task_id: int
    choice: int

    def __post_init__(self) -> None:
        if self.choice < 1:
            raise ValidationError(
                f"answer choice must be >= 1, got {self.choice}"
            )


@dataclass
class TaskState:
    """Mutable per-task inference state held by TI/OTA.

    Attributes:
        task: the underlying task.
        r: domain vector (length m).
        M: conditional truth matrix of shape (m, l) — Eq. 3.
        s: probabilistic truth of length l — Eq. 2, ``s = r @ M``.
        log_numerators: running per-(domain, choice) log numerators of
            Eq. 3, maintained by the incremental updater (Section 4.2's
            "M-hat").
    """

    task: Task
    r: np.ndarray
    M: np.ndarray
    s: np.ndarray
    log_numerators: Optional[np.ndarray] = None

    @classmethod
    def fresh(cls, task: Task, r: np.ndarray) -> "TaskState":
        """Initial state before any answers: uniform M rows and s."""
        m = r.shape[0]
        ell = task.num_choices
        M = np.full((m, ell), 1.0 / ell)
        s = r @ M
        return cls(
            task=task,
            r=np.asarray(r, dtype=float),
            M=M,
            s=s,
            log_numerators=np.zeros((m, ell)),
        )

    @property
    def num_choices(self) -> int:
        """Number of answer choices ``l``."""
        return self.task.num_choices

    def inferred_truth(self) -> int:
        """Current MAP truth ``argmax_j s_j`` (1-based)."""
        return int(np.argmax(self.s)) + 1


def group_answers_by_task(
    answers: Sequence[Answer],
) -> "dict[int, list[Answer]]":
    """Index answers by task id, preserving arrival order (the V(i) sets)."""
    grouped: dict[int, list[Answer]] = {}
    for answer in answers:
        grouped.setdefault(answer.task_id, []).append(answer)
    return grouped


def group_answers_by_worker(
    answers: Sequence[Answer],
) -> "dict[str, list[Answer]]":
    """Index answers by worker id (the T(w) sets)."""
    grouped: dict[str, list[Answer]] = {}
    for answer in answers:
        grouped.setdefault(answer.worker_id, []).append(answer)
    return grouped
