"""Shared-memory state arena: the hot state, mapped for N processes.

:class:`repro.core.arena.StateArena` made the serving path O(n) in
ndarray work; this module makes the *n* shareable. A
:class:`SharedStateArena` is a drop-in ``StateArena`` whose buffers —
the per-group ``R`` / ``M`` / ``S`` / ``logN`` / ``H`` / ``dirty`` /
``global_rows`` blocks plus the registration-ordered global buffers and
per-row write epochs — are numpy views over
``multiprocessing.shared_memory`` segments instead of process-heap
allocations. Sibling processes (the
:class:`repro.system.parallel.ServingPool` workers) map the same
segments and compute Eq. 8 benefits on the owner's live state with zero
copies and zero serialisation: every ndarray op runs on the same bytes
the owner writes, so the numeric results are bit-identical to a
single-process :class:`~repro.core.arena.StateArena` fed the same
operations.

**Ownership.** Exactly one process — the one that constructed the arena
— owns the segments: it creates them, grows them, and unlinks them
(:meth:`SharedStateArena.close`). Everyone else *attaches*: either
implicitly by ``fork`` (the serving pool's workers inherit the owner's
mappings and call :meth:`SharedStateArena.become_worker`) or explicitly
by name (:meth:`SharedStateArena.attach`). Attached arenas are
read-only by convention: the coherence protocol (below) has no story
for multi-writer races, and nothing in the serving plane needs one —
workers *read* state and keep their derived caches private.

**Growth = re-map + generation bump.** Buffers still grow by geometric
doubling, but a shared segment cannot be resized in place under other
processes' mappings. Growth therefore allocates a *new* segment,
copies the live rows, swaps the owner's views, unlinks the old name
(the memory itself lives until every process drops its mapping, so
stale views held across growth stay readable — the same semantics a
heap arena gives), and bumps a **generation counter** in the control
block. Readers call :meth:`SharedStateArena.refresh_attachment` before
each use: a generation match is one shared-memory load; a mismatch
re-opens exactly the segments whose per-group generation advanced.
Segment names are derived deterministically from the arena's base name,
the group's choice count, and the generation, so re-attachment needs no
side channel.

**Coherence.** The arena's per-row write epochs (PR 5) live in the
shared global segment, so a worker's
:class:`~repro.core.serving.AssignmentIndex` sees exactly the rows the
owner dirtied and repairs only those. Epochs order *values*, not
*bytes*: a reader racing a writer mid-row could still see a torn row,
which is why the serving pool quiesces workers (drains in-flight
requests) before the owner writes — see
:mod:`repro.system.parallel` for the SERVING/QUIESCING/WRITING state
machine. Within that discipline the epoch protocol is the whole
invalidation story, exactly as in-process.

**Leak safety.** Segments are named, so an unclean exit could orphan
files under ``/dev/shm``. Three lines of defence, exercised by the
fault suite: the owner unlinks every live and superseded segment in
:meth:`close` (superseded segments are already unlinked at growth
time); workers never create segments, so a killed worker has nothing
to leak; and a killed *owner* is covered by the stdlib
``resource_tracker`` — creation registers every segment with the
tracker process, which unlinks anything still registered when the
owning process dies. ``close`` unlinks first (which unregisters), so a
clean shutdown leaves the tracker nothing to warn about.
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.arena import INITIAL_CAPACITY, ChoiceGroup, StateArena
from repro.errors import ValidationError

#: Control-block magic: attaching to a segment that was not written by
#: a SharedStateArena owner fails fast instead of mis-reading garbage.
_MAGIC = 0xD0C5A7E4A

#: Control-block slot indices (int64 words).
_C_MAGIC = 0
_C_NUM_DOMAINS = 1
_C_GEN = 2          #: structural generation (any re-map / new group)
_C_CLOCK = 3        #: the arena-wide monotone write clock
_C_COUNT = 4        #: global live-row count
_C_GLOBAL_GEN = 5   #: generation of the global-buffer segment
_C_GLOBAL_CAP = 6   #: capacity of the global-buffer segment
_C_NUM_GROUPS = 7   #: live choice-group slots
_C_SLOT0 = 8        #: first group slot
_SLOT_STRIDE = 4    #: int64 words per group slot
_S_ELL = 0
_S_GEN = 1
_S_CAP = 2
_S_COUNT = 3

#: Choice-group slots reserved in the control block. Choice counts are
#: tiny in practice (the paper's datasets use one or two distinct l);
#: 62 slots keep the control block at one 2 KiB segment.
MAX_GROUPS = 62
_CTRL_WORDS = _C_SLOT0 + MAX_GROUPS * _SLOT_STRIDE

#: The buffers every choice group maps, in segment-layout order
#: (8-byte dtypes first so only the 1-byte dirty column is unaligned,
#: which bool loads tolerate).
_GROUP_BUFFERS = ("R", "M", "S", "logN", "H", "global_rows", "dirty")


def _group_layout(
    capacity: int, m: int, ell: int
) -> Tuple[Dict[str, Tuple[Tuple[int, ...], np.dtype, int]], int]:
    """Per-buffer (shape, dtype, byte offset) for one group segment."""
    specs = {
        "R": ((capacity, m), np.dtype(np.float64)),
        "M": ((capacity, m, ell), np.dtype(np.float64)),
        "S": ((capacity, ell), np.dtype(np.float64)),
        "logN": ((capacity, m, ell), np.dtype(np.float64)),
        "H": ((capacity,), np.dtype(np.float64)),
        "global_rows": ((capacity,), np.dtype(np.int64)),
        "dirty": ((capacity,), np.dtype(np.bool_)),
    }
    layout: Dict[str, Tuple[Tuple[int, ...], np.dtype, int]] = {}
    offset = 0
    for name in _GROUP_BUFFERS:
        shape, dtype = specs[name]
        layout[name] = (shape, dtype, offset)
        offset += int(np.prod(shape)) * dtype.itemsize
    return layout, offset


def _global_layout(
    capacity: int, m: int
) -> Tuple[Dict[str, Tuple[Tuple[int, ...], np.dtype, int]], int]:
    """(shape, dtype, offset) for the registration-ordered buffers."""
    layout: Dict[str, Tuple[Tuple[int, ...], np.dtype, int]] = {}
    offset = 0
    for name, shape, dtype in (
        ("_R_all", (capacity, m), np.dtype(np.float64)),
        ("_ells", (capacity,), np.dtype(np.int64)),
        ("_group_rows", (capacity,), np.dtype(np.int64)),
        ("_epochs", (capacity,), np.dtype(np.int64)),
    ):
        layout[name] = (shape, dtype, offset)
        offset += int(np.prod(shape)) * dtype.itemsize
    return layout, offset


def _view(
    shm: shared_memory.SharedMemory,
    shape: Tuple[int, ...],
    dtype: np.dtype,
    offset: int,
) -> np.ndarray:
    return np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)


class _SharedChoiceGroup(ChoiceGroup):
    """A :class:`ChoiceGroup` whose buffers live in one shared segment.

    The live-row ``count`` is promoted into the arena's control block so
    attached processes observe appends; everything else — ``append``,
    ``extend_fresh``, ``refresh_entropies``, the scratch buffers — is
    inherited unchanged and therefore operation-for-operation identical
    to the heap group.
    """

    def __init__(
        self,
        arena: "SharedStateArena",
        num_domains: int,
        ell: int,
        slot: int,
    ):
        # The control-block back-references must exist before
        # ChoiceGroup.__init__ assigns ``count`` through the property.
        self._arena = arena
        self._slot = slot
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._gen = -1
        ctrl = arena._ctrl
        ctrl[slot + _S_ELL] = ell
        ctrl[slot + _S_GEN] = 0
        ctrl[slot + _S_COUNT] = 0
        super().__init__(num_domains, ell)
        # Re-home the freshly allocated (empty) buffers into a segment.
        self._map(create=True, capacity=INITIAL_CAPACITY, generation=0)
        ctrl[slot + _S_CAP] = INITIAL_CAPACITY

    @classmethod
    def _attach(
        cls,
        arena: "SharedStateArena",
        num_domains: int,
        ell: int,
        slot: int,
        capacity: int,
        generation: int,
    ) -> "_SharedChoiceGroup":
        """Map an existing group segment from a non-owner process."""
        group = cls.__new__(cls)
        group._arena = arena
        group._slot = slot
        group._shm = None
        group._gen = -1
        group.ell = ell
        group._m = num_domains
        group.task_ids = []
        group._scratch = None
        group._map(create=False, capacity=capacity, generation=generation)
        return group

    @property
    def count(self) -> int:  # type: ignore[override]
        return int(self._arena._ctrl[self._slot + _S_COUNT])

    @count.setter
    def count(self, value: int) -> None:
        self._arena._ctrl[self._slot + _S_COUNT] = value

    def _segment_name(self, generation: int) -> str:
        return f"{self._arena.base_name}-e{self.ell}g{generation}"

    def _map(self, create: bool, capacity: int, generation: int) -> None:
        layout, nbytes = _group_layout(capacity, self._m, self.ell)
        shm = self._arena._open_segment(
            self._segment_name(generation), nbytes, create
        )
        for name in _GROUP_BUFFERS:
            shape, dtype, offset = layout[name]
            setattr(self, name, _view(shm, shape, dtype, offset))
        self._shm = shm
        self._gen = generation

    def _reserve(self, needed: int) -> None:
        """Grow via segment re-map: new segment, copy, generation bump."""
        if needed <= self.capacity:
            return
        new = self.capacity
        while new < needed:
            new *= 2
        old_shm = self._shm
        old = {name: getattr(self, name) for name in _GROUP_BUFFERS}
        count = self.count
        self._map(create=True, capacity=new, generation=self._gen + 1)
        for name in _GROUP_BUFFERS:
            getattr(self, name)[:count] = old[name][:count]
        ctrl = self._arena._ctrl
        ctrl[self._slot + _S_CAP] = new
        ctrl[self._slot + _S_GEN] = self._gen
        self._arena._retire_segment(old_shm)
        self._arena._bump_generation()

    def _remap_attached(self, capacity: int, generation: int) -> None:
        """Follow an owner-side re-map from an attached process."""
        old_shm = self._shm
        self._map(create=False, capacity=capacity, generation=generation)
        self._arena._retire_segment(old_shm)


class SharedStateArena(StateArena):
    """A :class:`StateArena` whose buffers live in OS shared memory.

    Same API, same numerics (every inherited method runs the same
    ndarray operations on views instead of heap arrays); see the module
    docstring for the ownership, growth, and coherence protocol.

    Args:
        num_domains: the taxonomy size m.
        base_name: segment-name prefix; defaults to a unique
            pid-plus-token name. Segments appear under ``/dev/shm`` as
            ``<base_name>-ctrl``, ``<base_name>-gl<gen>``, and
            ``<base_name>-e<ell>g<gen>``.
    """

    def __init__(self, num_domains: int, *, base_name: Optional[str] = None):
        if num_domains <= 0:
            raise ValidationError("num_domains must be positive")
        self._base = base_name or (
            f"docsarena-{os.getpid()}-{secrets.token_hex(4)}"
        )
        self._owner = True
        self._closed = False
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        #: Superseded segments: unlinked (owner) but kept mapped so
        #: views handed out before a growth re-map stay readable —
        #: matching the heap arena's stale-view semantics.
        self._graveyard: List[shared_memory.SharedMemory] = []
        ctrl_shm = self._open_segment(
            f"{self._base}-ctrl", _CTRL_WORDS * 8, create=True
        )
        self._ctrl = _view(ctrl_shm, (_CTRL_WORDS,), np.dtype(np.int64), 0)
        self._ctrl[_C_MAGIC] = _MAGIC
        self._ctrl[_C_NUM_DOMAINS] = num_domains
        self._global_shm: Optional[shared_memory.SharedMemory] = None
        self._global_gen = -1
        self._attached_gen = 0
        super().__init__(num_domains)
        # Re-home the heap global buffers (still empty) into a segment.
        self._map_global(create=True, capacity=INITIAL_CAPACITY, generation=0)
        self._ctrl[_C_GLOBAL_CAP] = INITIAL_CAPACITY
        self._ctrl[_C_GLOBAL_GEN] = 0

    # -- shared-state plumbing -------------------------------------------

    @property
    def base_name(self) -> str:
        """The segment-name prefix (what :meth:`attach` needs)."""
        return self._base

    @property
    def is_owner(self) -> bool:
        """Whether this process owns (created, will unlink) the segments."""
        return self._owner

    @property
    def generation(self) -> int:
        """The structural generation counter (bumped on every re-map)."""
        return int(self._ctrl[_C_GEN])

    def segment_names(self) -> List[str]:
        """Names of the live segments (the leak suite audits these)."""
        return sorted(self._segments)

    # ``_count`` and ``_clock`` are promoted into the control block so
    # attached processes observe registrations and write epochs; the
    # base class reads and writes them as plain attributes.

    @property
    def _count(self) -> int:  # type: ignore[override]
        return int(self._ctrl[_C_COUNT])

    @_count.setter
    def _count(self, value: int) -> None:
        self._ctrl[_C_COUNT] = value

    @property
    def _clock(self) -> int:  # type: ignore[override]
        return int(self._ctrl[_C_CLOCK])

    @_clock.setter
    def _clock(self, value: int) -> None:
        self._ctrl[_C_CLOCK] = value

    def _open_segment(
        self, name: str, nbytes: int, create: bool
    ) -> shared_memory.SharedMemory:
        if self._closed:
            raise ValidationError(
                f"shared arena {self._base!r} is closed"
            )
        shm = shared_memory.SharedMemory(
            name=name, create=create, size=nbytes if create else 0
        )
        self._segments[name] = shm
        return shm

    def _retire_segment(
        self, shm: Optional[shared_memory.SharedMemory]
    ) -> None:
        """Unlink (owner) a superseded segment but keep it mapped."""
        if shm is None:
            return
        self._segments.pop(shm.name, None)
        if self._owner:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._graveyard.append(shm)

    def _bump_generation(self) -> None:
        self._ctrl[_C_GEN] += 1

    def _map_global(
        self, create: bool, capacity: int, generation: int
    ) -> None:
        layout, nbytes = _global_layout(capacity, self._m)
        shm = self._open_segment(
            f"{self._base}-gl{generation}", nbytes, create
        )
        for name, (shape, dtype, offset) in layout.items():
            setattr(self, name, _view(shm, shape, dtype, offset))
        self._global_shm = shm
        self._global_gen = generation

    def _reserve_global(self, needed: int) -> None:
        capacity = self._R_all.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        old_shm = self._global_shm
        old = (self._R_all, self._ells, self._group_rows, self._epochs)
        count = self._count
        self._map_global(
            create=True, capacity=capacity, generation=self._global_gen + 1
        )
        for view, previous in zip(
            (self._R_all, self._ells, self._group_rows, self._epochs), old
        ):
            view[:count] = previous[:count]
        self._ctrl[_C_GLOBAL_CAP] = capacity
        self._ctrl[_C_GLOBAL_GEN] = self._global_gen
        self._retire_segment(old_shm)
        self._bump_generation()

    def _make_group(self, ell: int) -> ChoiceGroup:
        num = int(self._ctrl[_C_NUM_GROUPS])
        if num >= MAX_GROUPS:
            raise ValidationError(
                f"shared arena supports at most {MAX_GROUPS} distinct "
                f"choice counts; got a {num + 1}th (ell={ell})"
            )
        slot = _C_SLOT0 + num * _SLOT_STRIDE
        group = _SharedChoiceGroup(self, self._m, ell, slot)
        self._ctrl[_C_NUM_GROUPS] = num + 1
        self._bump_generation()
        return group

    # -- attach / refresh -------------------------------------------------

    @classmethod
    def attach(cls, base_name: str) -> "SharedStateArena":
        """Map an existing owner's segments from another process.

        The attached arena serves the numeric read paths (group
        iteration, benefits, epochs, entropies); the id-keyed
        registration maps are owner-side Python state and stay empty —
        the serving pool routes ids on the owner and rows to workers.

        Raises:
            ValidationError: if the control segment was not written by
                a :class:`SharedStateArena` owner.
        """
        arena = cls.__new__(cls)
        arena._base = base_name
        arena._owner = False
        arena._closed = False
        arena._segments = {}
        arena._graveyard = []
        ctrl_shm = arena._open_segment(f"{base_name}-ctrl", 0, create=False)
        arena._ctrl = _view(
            ctrl_shm, (_CTRL_WORDS,), np.dtype(np.int64), 0
        )
        if int(arena._ctrl[_C_MAGIC]) != _MAGIC:
            raise ValidationError(
                f"segment {base_name!r}-ctrl is not a shared-arena "
                "control block"
            )
        arena._m = int(arena._ctrl[_C_NUM_DOMAINS])
        arena._groups = {}
        arena._loc = {}
        arena._views = {}
        arena._order = []
        arena._global_shm = None
        arena._global_gen = -1
        arena._attached_gen = -1
        arena.refresh_attachment()
        return arena

    def become_worker(self) -> None:
        """Demote a fork-inherited copy of the owner to an attachment.

        Serving-pool workers inherit the owner object (mappings and
        all) through ``fork``; this flips ownership off so the worker
        can never unlink segments it does not own, and arms
        :meth:`refresh_attachment` at the fork-time generation.
        """
        self._owner = False
        self._attached_gen = int(self._ctrl[_C_GEN])

    def refresh_attachment(self) -> None:
        """Follow owner-side re-maps; no-op for the owner.

        One shared-memory load when nothing changed; on a generation
        mismatch, re-opens exactly the segments whose recorded
        generation moved (deterministic names — no side channel) and
        retires the superseded mappings.
        """
        if self._owner:
            return
        generation = int(self._ctrl[_C_GEN])
        if generation == self._attached_gen:
            return
        global_gen = int(self._ctrl[_C_GLOBAL_GEN])
        if self._global_shm is None or self._global_gen != global_gen:
            old = self._global_shm
            self._map_global(
                create=False,
                capacity=int(self._ctrl[_C_GLOBAL_CAP]),
                generation=global_gen,
            )
            self._retire_segment(old)
        for index in range(int(self._ctrl[_C_NUM_GROUPS])):
            slot = _C_SLOT0 + index * _SLOT_STRIDE
            ell = int(self._ctrl[slot + _S_ELL])
            slot_gen = int(self._ctrl[slot + _S_GEN])
            slot_cap = int(self._ctrl[slot + _S_CAP])
            group = self._groups.get(ell)
            if group is None:
                self._groups[ell] = _SharedChoiceGroup._attach(
                    self, self._m, ell, slot, slot_cap, slot_gen
                )
            elif group._gen != slot_gen:
                group._remap_attached(slot_cap, slot_gen)
        self._attached_gen = generation

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release every mapping; the owner also unlinks the segments.

        Idempotent. Unlink runs first — it is what removes the
        ``/dev/shm`` entries and unregisters the segments from the
        stdlib resource tracker — so even a mapping that cannot close
        yet (live numpy views exported from it) cannot leak a file.
        """
        if self._closed:
            return
        self._closed = True
        everything = list(self._segments.values()) + self._graveyard
        self._segments.clear()
        self._graveyard.clear()
        for shm in everything:
            if self._owner:
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
            try:
                shm.close()
            except BufferError:
                # Live views still reference the mapping; the name is
                # already gone, the memory goes when the views do.
                pass

    def __del__(self):  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass
