"""Iterative Truth Inference (Section 4.1).

Alternates two steps until convergence:

- **Step 1 (q -> s)**: for each task, build the conditional truth matrix
  ``M(i)`` (Eqs. 3-4) from the current worker qualities and the answer set
  ``V(i)``, then ``s_i = r_ti @ M(i)`` (Eq. 2).
- **Step 2 (s -> q)**: for each worker and domain,
  ``q^w_k = sum_i r_ik * s_{i, v^w_i} / sum_i r_ik`` over the worker's
  answered tasks (Eq. 5).

Numerics: Eq. 3's numerator is a product over answers, so it is computed
in log space; qualities are clipped into ``[QUALITY_FLOOR, QUALITY_CEIL]``
inside Eq. 4 only (reported qualities are unclipped) so a momentarily
perfect worker cannot produce ``log 0``.

Two entry points share one solver:

- :meth:`TruthInference.infer` — answer *lists* in, dict-keyed result
  out. Builds its index arrays from Python objects each call; used by
  offline experiments and the competitor engines.
- :meth:`TruthInference.infer_from_log` — an arena-backed
  :class:`repro.core.arena.AnswerLog` in, :class:`ArenaInferenceResult`
  out. The log already holds the index arrays append-only, so the every-z
  serving-path re-run skips the O(answers) Python re-indexing and the
  domain-vector re-stacking entirely. Both paths feed the solver
  identically-ordered inputs and therefore return identical results.
"""

from __future__ import annotations

import multiprocessing
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.arena import AnswerLog
from repro.core.types import (
    Answer,
    Task,
    group_answers_by_task,
    group_answers_by_worker,
)
from repro.errors import ValidationError

#: Clipping bounds applied to qualities inside likelihoods. Wide enough to
#: preserve strong signals, tight enough to keep logs finite.
QUALITY_FLOOR = 1e-3
QUALITY_CEIL = 1.0 - 1e-3

#: Quality assumed for a worker with no golden-task initialisation. The
#: paper initialises from golden tasks; 0.7 is the standard "better than
#: random but imperfect" prior used by EM-style inference when cold.
DEFAULT_INITIAL_QUALITY = 0.7

#: The paper observes convergence within ~10 iterations and terminates
#: within 20 in practice.
DEFAULT_MAX_ITERATIONS = 20
DEFAULT_TOLERANCE = 1e-6


def conditional_truth_matrix(
    task: Task,
    r: np.ndarray,
    answers: Sequence[Answer],
    qualities: Mapping[str, np.ndarray],
) -> np.ndarray:
    """Compute ``M(i)`` (Eqs. 3-4) for one task.

    Row k is the posterior distribution over the task's choices given that
    the true domain is ``d_k``, under independent worker answers and a
    uniform prior over choices.

    Args:
        task: the task (supplies ``l``).
        r: unused except for shape (m); kept for interface symmetry.
        answers: the answer set ``V(i)``.
        qualities: worker id -> length-m quality vector.

    Returns:
        Matrix of shape (m, l); each row sums to 1.
    """
    m = r.shape[0]
    ell = task.num_choices
    log_numerator = np.zeros((m, ell))
    for answer in answers:
        q = np.clip(qualities[answer.worker_id], QUALITY_FLOOR, QUALITY_CEIL)
        log_correct = np.log(q)
        log_incorrect = np.log((1.0 - q) / (ell - 1))
        # For each domain k: the answered choice contributes log q_k to
        # column (v-1) and log((1-q_k)/(l-1)) to every other column.
        contribution = np.tile(log_incorrect[:, None], (1, ell))
        contribution[:, answer.choice - 1] = log_correct
        log_numerator += contribution
    # Normalise each row in log space (softmax).
    log_numerator -= log_numerator.max(axis=1, keepdims=True)
    numerator = np.exp(log_numerator)
    return numerator / numerator.sum(axis=1, keepdims=True)


@dataclass
class TruthInferenceResult:
    """Output of :meth:`TruthInference.infer`.

    Attributes:
        probabilistic_truths: task id -> probabilistic truth ``s_i``.
        truth_matrices: task id -> conditional matrix ``M(i)``.
        worker_qualities: worker id -> quality vector ``q^w``.
        worker_weights: worker id -> per-domain expected answer counts
            ``u^w_k = sum_i r_ik`` (the Theorem 1 weights).
        delta_history: parameter change Delta per iteration (the Fig. 4(a)
            convergence series).
        iterations: iterations actually run.
    """

    probabilistic_truths: Dict[int, np.ndarray]
    truth_matrices: Dict[int, np.ndarray]
    worker_qualities: Dict[str, np.ndarray]
    worker_weights: Dict[str, np.ndarray]
    delta_history: List[float] = field(default_factory=list)
    iterations: int = 0

    def truths(self) -> Dict[int, int]:
        """MAP truth per task: ``v*_i = argmax_j s_{i,j}`` (1-based)."""
        return {
            task_id: int(np.argmax(s)) + 1
            for task_id, s in self.probabilistic_truths.items()
        }

    def accuracy(self, tasks: Sequence[Task]) -> float:
        """Fraction of tasks whose inferred truth matches ground truth.

        Tasks without ground truth are skipped.
        """
        truths = self.truths()
        correct = 0
        counted = 0
        for task in tasks:
            if task.ground_truth is None or task.task_id not in truths:
                continue
            counted += 1
            if truths[task.task_id] == task.ground_truth:
                correct += 1
        if counted == 0:
            raise ValidationError("no ground-truth tasks to score")
        return correct / counted


@dataclass
class ArenaInferenceResult:
    """Output of :meth:`TruthInference.infer_from_log`: array layout.

    Rows follow the log's compact (first-answer) task order; workers
    follow first-submission order. Invalid (padded) choice columns carry
    zero probability.

    Attributes:
        task_rows: (n,) arena global rows of the answered tasks.
        task_ids: the same tasks as ids.
        ells: (n,) choice counts.
        S: (n, L) probabilistic truths, L = max choice count.
        M: (n, m, L) conditional truth matrices.
        worker_ids: worker id per quality row.
        qualities: (W, m) worker qualities ``q^w``.
        weights: (W, m) Theorem 1 weights ``u^w``.
        delta_history: per-iteration parameter change Delta.
        iterations: iterations actually run.
    """

    task_rows: np.ndarray
    task_ids: List[int]
    ells: np.ndarray
    S: np.ndarray
    M: np.ndarray
    worker_ids: List[str]
    qualities: np.ndarray
    weights: np.ndarray
    delta_history: List[float] = field(default_factory=list)
    iterations: int = 0

    def truths(self) -> Dict[int, int]:
        """MAP truth per answered task (1-based), vectorised."""
        if len(self.task_ids) == 0:
            return {}
        ell_max = self.S.shape[1]
        valid = np.arange(ell_max)[None, :] < self.ells[:, None]
        best = np.argmax(np.where(valid, self.S, -1.0), axis=1) + 1
        return {
            task_id: int(choice)
            for task_id, choice in zip(self.task_ids, best)
        }

    def worker_qualities(self) -> Dict[str, np.ndarray]:
        """Worker id -> quality vector (copies)."""
        return {
            worker_id: self.qualities[row].copy()
            for row, worker_id in enumerate(self.worker_ids)
        }


def _scatter_rows(
    idx: np.ndarray, weights: np.ndarray, num_rows: int
) -> np.ndarray:
    """Row-indexed scatter-add: ``out[idx[i]] += weights[i]``.

    Column-wise ``np.bincount`` is bit-identical to ``np.add.at`` (both
    accumulate sequentially in element order) at a fraction of the cost.
    """
    out = np.empty((num_rows, weights.shape[1]))
    for k in range(weights.shape[1]):
        out[:, k] = np.bincount(
            idx, weights=weights[:, k], minlength=num_rows
        )
    return out


def _run_em(
    R: np.ndarray,
    ells: np.ndarray,
    valid: np.ndarray,
    a_task: np.ndarray,
    a_worker: np.ndarray,
    a_choice: np.ndarray,
    Q: np.ndarray,
    max_iterations: int,
    tolerance: float,
    track_delta: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[float], int]:
    """The Section 4.1 iteration on prepared index arrays.

    Everything that is constant across iterations — the per-answer
    domain-vector gather, the Eq. 5 denominator, the flat (task, column)
    scatter index, the per-choice-count answer partition — is hoisted
    out of the loop; per-worker log tables replace per-answer logs.
    Each transformation preserves the operation order on identical
    values, so results are bit-identical to the original formulation.

    Args:
        R: (n, m) domain vectors of the answered tasks.
        ells: (n,) choice counts; ``valid`` is the (n, L) column mask.
        a_task / a_worker / a_choice: per-answer row indices (choice
            0-based), arrival-ordered.
        Q: (W, m) initial qualities (mutated-by-replacement inside).

    Returns:
        (S, M, Q, delta_history, iterations).
    """
    n, ell_max = valid.shape
    W, m = Q.shape
    A = a_task.shape[0]
    a_ell = ells[a_task]

    # ---- Iteration-invariant precomputation --------------------------
    Ra = R[a_task]                                           # (A, m)
    flat_cols = a_task * ell_max + a_choice                  # (A,)
    denominator = _scatter_rows(a_worker, Ra, W)             # (W, m)
    q_mask = denominator > 0
    #: Answers partitioned by their task's choice count, so per-answer
    #: log-likelihood terms can be built from (W, m) per-worker tables.
    ell_groups = [
        (int(e), np.flatnonzero(a_ell == e))
        for e in np.unique(a_ell)
    ]

    S = np.where(valid, 1.0, 0.0)
    S = S / S.sum(axis=1, keepdims=True)                     # (n, L)
    M = np.zeros((n, m, ell_max))

    delta_history: List[float] = []
    iterations_run = 0
    for _ in range(max_iterations):
        iterations_run += 1
        S_prev = S.copy()
        Q_prev = Q.copy()

        # Step 1 (q -> s): accumulate Eq. 3's log numerators. The
        # per-answer log terms are gathered from per-(worker, l) tables.
        Qc = np.clip(Q, QUALITY_FLOOR, QUALITY_CEIL)
        log_correct = np.log(Qc)                             # (W, m)
        if len(ell_groups) == 1:
            li = np.log((1.0 - Qc) / (ell_groups[0][0] - 1))  # (W, m)
            log_incorrect_a = li[a_worker]
            delta_a = (log_correct - li)[a_worker]
        else:
            log_incorrect_a = np.empty((A, m))
            delta_a = np.empty((A, m))
            for ell_value, sel in ell_groups:
                li = np.log((1.0 - Qc) / (ell_value - 1))
                log_incorrect_a[sel] = li[a_worker[sel]]
                delta_a[sel] = (log_correct - li)[a_worker[sel]]

        base = _scatter_rows(a_task, log_incorrect_a, n)     # (n, m)
        col_buffer = _scatter_rows(flat_cols, delta_a, n * ell_max)
        # logM[t, k, j] = base[t, k] + the answered-column deltas.
        logM = base[:, :, None] + col_buffer.reshape(
            n, ell_max, m
        ).transpose(0, 2, 1)
        logM = np.where(valid[:, None, :], logM, -np.inf)
        logM -= logM.max(axis=2, keepdims=True)
        expM = np.exp(logM)
        M = expM / expM.sum(axis=2, keepdims=True)
        # The broadcast against the transposed column view above leaves
        # everything in (n, l, m)-major layout, which is fastest for the
        # elementwise chain — but einsum's contraction order follows
        # strides, so normalise the layout before it (values unchanged).
        M = np.ascontiguousarray(M)
        S = np.einsum("nm,nml->nl", R, M)

        # Step 2 (s -> q): Eq. 5 as scatter-adds over workers.
        s_at_choice = S[a_task, a_choice]                    # (A,)
        numerator = _scatter_rows(
            a_worker, Ra * s_at_choice[:, None], W
        )
        Q = np.where(q_mask, np.divide(
            numerator, denominator, out=np.zeros_like(numerator),
            where=q_mask,
        ), Q)

        if track_delta or tolerance > 0:
            truth_change = float(
                (np.abs(S - S_prev).sum(axis=1) / ells).mean()
            ) if n else 0.0
            quality_change = (
                float(np.abs(Q - Q_prev).mean()) if W else 0.0
            )
            delta = truth_change + quality_change
            delta_history.append(delta)
            if delta < tolerance:
                break

    return S, M, Q, delta_history, iterations_run


class _ShardFailure(Exception):
    """A rerun shard process died; the caller falls back in-process."""


def _em_shard_worker(
    conn,
    R: np.ndarray,
    ells: np.ndarray,
    valid: np.ndarray,
    a_task: np.ndarray,
    a_worker: np.ndarray,
    a_choice: np.ndarray,
    W: int,
) -> None:
    """One rerun shard: Step 1 over a contiguous task slice.

    Protocol (parent drives): receive ``Q`` -> run Step 1 on the
    shard's tasks -> reply ``(partial Step-2 numerator, partial truth
    delta)``; receive ``None`` -> reply the final ``(S, M)`` blocks and
    exit. Step 1 is task-local given ``Q``, so the shard math is the
    exact :func:`_run_em` Step 1 on the slice.
    """
    from repro.platform import faults

    try:
        faults.fire("parallel.rerun.shard")
        n, ell_max = valid.shape
        A = a_task.shape[0]
        m = R.shape[1]
        a_ell = ells[a_task]
        Ra = R[a_task]
        flat_cols = a_task * ell_max + a_choice
        ell_groups = [
            (int(e), np.flatnonzero(a_ell == e))
            for e in np.unique(a_ell)
        ]
        S = np.where(valid, 1.0, 0.0)
        if n:
            S = S / S.sum(axis=1, keepdims=True)
        M = np.zeros((n, m, ell_max))
        while True:
            Q = conn.recv()
            if Q is None:
                conn.send((S, M))
                conn.close()
                return
            S_prev = S.copy()
            Qc = np.clip(Q, QUALITY_FLOOR, QUALITY_CEIL)
            log_correct = np.log(Qc)
            if len(ell_groups) == 1:
                li = np.log((1.0 - Qc) / (ell_groups[0][0] - 1))
                log_incorrect_a = li[a_worker]
                delta_a = (log_correct - li)[a_worker]
            else:
                log_incorrect_a = np.empty((A, m))
                delta_a = np.empty((A, m))
                for ell_value, sel in ell_groups:
                    li = np.log((1.0 - Qc) / (ell_value - 1))
                    log_incorrect_a[sel] = li[a_worker[sel]]
                    delta_a[sel] = (log_correct - li)[a_worker[sel]]
            base = _scatter_rows(a_task, log_incorrect_a, n)
            col_buffer = _scatter_rows(flat_cols, delta_a, n * ell_max)
            logM = base[:, :, None] + col_buffer.reshape(
                n, ell_max, m
            ).transpose(0, 2, 1)
            logM = np.where(valid[:, None, :], logM, -np.inf)
            logM -= logM.max(axis=2, keepdims=True)
            expM = np.exp(logM)
            M = expM / expM.sum(axis=2, keepdims=True)
            M = np.ascontiguousarray(M)
            S = np.einsum("nm,nml->nl", R, M)
            s_at_choice = S[a_task, a_choice]
            numerator = _scatter_rows(
                a_worker, Ra * s_at_choice[:, None], W
            )
            truth_partial = (
                float((np.abs(S - S_prev).sum(axis=1) / ells).sum())
                if n
                else 0.0
            )
            conn.send((numerator, truth_partial))
    except Exception:
        # Injected crashes and real shard failures look the same to the
        # parent: a dead pipe. Exit quietly; the parent falls back.
        try:
            conn.close()
        finally:
            sys.exit(1)


def _run_em_sharded(
    R: np.ndarray,
    ells: np.ndarray,
    valid: np.ndarray,
    a_task: np.ndarray,
    a_worker: np.ndarray,
    a_choice: np.ndarray,
    Q: np.ndarray,
    max_iterations: int,
    tolerance: float,
    track_delta: bool,
    shards: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[float], int]:
    """:func:`_run_em` fanned across a process pool by task slice.

    Tasks are partitioned into ``shards`` contiguous slices; each shard
    process owns Step 1 (task-local) for its slice and returns the
    Step-2 scatter *partials*, which the parent merges in shard order
    against the globally precomputed Eq. 5 denominator. Shard processes
    are forked, so the (read-only) index arrays are inherited without
    copies; per-iteration traffic is one (W, m) quality broadcast down
    and one (W, m) partial numerator up per shard.

    Numerics: each Step 1 runs the exact single-process operations on
    its slice, but the Step-2 numerator is a sum of per-shard partial
    scatters whose floating-point accumulation order differs from the
    flat scatter. Qualities — and through the Q feedback, ``S``/``M``
    on later iterations — therefore match the in-process solver to
    accumulation-order rounding (the caveat any parallel reduction
    carries), not bit-for-bit.

    Raises:
        _ShardFailure: a shard process died (crash fault, OOM-kill);
            the caller retries in-process.
    """
    n, ell_max = valid.shape
    W, m = Q.shape
    ctx = multiprocessing.get_context("fork")
    bounds = np.linspace(0, n, shards + 1).astype(np.int64)
    children: List[Tuple[object, object]] = []
    try:
        for index in range(shards):
            lo, hi = int(bounds[index]), int(bounds[index + 1])
            sel = np.flatnonzero((a_task >= lo) & (a_task < hi))
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_em_shard_worker,
                args=(
                    child_conn,
                    R[lo:hi],
                    ells[lo:hi],
                    valid[lo:hi],
                    a_task[sel] - lo,
                    a_worker[sel],
                    a_choice[sel],
                    W,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            children.append((process, parent_conn))

        denominator = _scatter_rows(a_worker, R[a_task], W)
        q_mask = denominator > 0
        delta_history: List[float] = []
        iterations_run = 0
        try:
            for _ in range(max_iterations):
                iterations_run += 1
                Q_prev = Q.copy()
                for _, conn in children:
                    conn.send(Q)
                numerator = np.zeros((W, m))
                truth_sum = 0.0
                for _, conn in children:
                    partial, truth_partial = conn.recv()
                    numerator = numerator + partial
                    truth_sum += truth_partial
                Q = np.where(q_mask, np.divide(
                    numerator, denominator, out=np.zeros_like(numerator),
                    where=q_mask,
                ), Q)
                if track_delta or tolerance > 0:
                    truth_change = truth_sum / n if n else 0.0
                    quality_change = (
                        float(np.abs(Q - Q_prev).mean()) if W else 0.0
                    )
                    delta = truth_change + quality_change
                    delta_history.append(delta)
                    if delta < tolerance:
                        break
            S_parts: List[np.ndarray] = []
            M_parts: List[np.ndarray] = []
            for _, conn in children:
                conn.send(None)
            for _, conn in children:
                S_shard, M_shard = conn.recv()
                S_parts.append(S_shard)
                M_parts.append(M_shard)
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise _ShardFailure(str(exc)) from exc
        S = np.concatenate(S_parts) if S_parts else np.zeros((0, ell_max))
        M = (
            np.concatenate(M_parts)
            if M_parts
            else np.zeros((0, m, ell_max))
        )
        return S, M, Q, delta_history, iterations_run
    finally:
        for process, conn in children:
            try:
                conn.close()
            except OSError:
                pass
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - hang guard
                process.terminate()
                process.join(timeout=5.0)


class TruthInference:
    """The iterative TI algorithm of Section 4.1.

    Args:
        max_iterations: iteration cap (paper: converges within ~10, capped
            at 20 in practice).
        tolerance: stop when the parameter change Delta falls below this.
        default_quality: per-domain quality assumed for workers with no
            initial estimate.
    """

    def __init__(
        self,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        tolerance: float = DEFAULT_TOLERANCE,
        default_quality: float = DEFAULT_INITIAL_QUALITY,
    ):
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        if not 0.0 < default_quality < 1.0:
            raise ValidationError("default_quality must be in (0, 1)")
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        self._default_quality = default_quality

    def infer(
        self,
        tasks: Sequence[Task],
        answers: Sequence[Answer],
        initial_qualities: Optional[Mapping[str, np.ndarray]] = None,
        track_delta: bool = True,
    ) -> TruthInferenceResult:
        """Run TI to convergence over answer lists.

        Args:
            tasks: tasks with domain vectors set (``task.domain_vector``).
            answers: all collected answers.
            initial_qualities: optional worker id -> quality vector map
                (e.g. from golden tasks / the quality store). Workers not
                present start at ``default_quality`` across all domains.
            track_delta: record the Delta series (Fig. 4(a)); small cost.

        Returns:
            A :class:`TruthInferenceResult`.
        """
        task_index: Dict[int, Task] = {}
        domain_vectors: Dict[int, np.ndarray] = {}
        m = None
        for task in tasks:
            if task.domain_vector is None:
                raise ValidationError(
                    f"task {task.task_id} has no domain vector; run DVE "
                    "first"
                )
            task_index[task.task_id] = task
            domain_vectors[task.task_id] = np.asarray(
                task.domain_vector, dtype=float
            )
            if m is None:
                m = domain_vectors[task.task_id].shape[0]
            elif domain_vectors[task.task_id].shape[0] != m:
                raise ValidationError("inconsistent domain vector sizes")
        if m is None:
            raise ValidationError("no tasks given")

        by_task = group_answers_by_task(answers)
        by_worker = group_answers_by_worker(answers)
        unknown = set(by_task) - set(task_index)
        if unknown:
            raise ValidationError(
                f"answers reference unknown tasks: {sorted(unknown)[:5]}"
            )

        # ---- Vectorised layout -----------------------------------------
        # Only answered tasks participate in the iterations. Columns are
        # padded to the maximum choice count; invalid columns are masked
        # with -inf log-numerators so they carry zero probability.
        answered_ids: List[int] = list(by_task.keys())
        if not answered_ids:
            return TruthInferenceResult(
                probabilistic_truths={},
                truth_matrices={},
                worker_qualities={},
                worker_weights={},
            )
        tid_to_row = {tid: row for row, tid in enumerate(answered_ids)}
        n = len(answered_ids)
        worker_ids: List[str] = list(by_worker.keys())
        wid_to_row = {wid: row for row, wid in enumerate(worker_ids)}
        W = len(worker_ids)

        ells = np.array(
            [task_index[tid].num_choices for tid in answered_ids],
            dtype=np.int64,
        )
        ell_max = int(ells.max()) if n else 0
        valid = np.arange(ell_max)[None, :] < ells[:, None]     # (n, L)
        R = np.stack([domain_vectors[tid] for tid in answered_ids])  # (n, m)

        a_task = np.array(
            [tid_to_row[a.task_id] for a in answers], dtype=np.int64
        )
        a_worker = np.array(
            [wid_to_row[a.worker_id] for a in answers], dtype=np.int64
        )
        a_choice = np.array([a.choice - 1 for a in answers], dtype=np.int64)

        Q = self._initial_q(W, m, worker_ids, initial_qualities)

        S, M, Q, delta_history, iterations_run = _run_em(
            R,
            ells,
            valid,
            a_task,
            a_worker,
            a_choice,
            Q,
            self._max_iterations,
            self._tolerance,
            track_delta,
        )

        truths = {
            tid: S[row, : ells[row]].copy()
            for tid, row in tid_to_row.items()
        }
        matrices = {
            tid: M[row, :, : ells[row]].copy()
            for tid, row in tid_to_row.items()
        }
        qualities = {wid: Q[row].copy() for wid, row in wid_to_row.items()}

        return TruthInferenceResult(
            probabilistic_truths=truths,
            truth_matrices=matrices,
            worker_qualities=qualities,
            worker_weights={
                worker_id: _worker_weights(worker_answers, domain_vectors)
                for worker_id, worker_answers in by_worker.items()
            },
            delta_history=delta_history,
            iterations=iterations_run,
        )

    def infer_from_log(
        self,
        log: AnswerLog,
        initial_qualities: Optional[Mapping[str, np.ndarray]] = None,
        track_delta: bool = True,
        shards: int = 0,
    ) -> ArenaInferenceResult:
        """Run TI over an arena-backed append-only answer log.

        The log's growing index arrays are consumed directly: the only
        per-call work before the solver is one fancy-indexed gather of
        the answered tasks' domain vectors. Produces the same inference
        as :meth:`infer` on the equivalent answer list.

        Args:
            log: the :class:`repro.core.arena.AnswerLog` to infer from.
            initial_qualities: as in :meth:`infer`.
            track_delta: as in :meth:`infer`.
            shards: fan the solver across this many forked shard
                processes (:func:`_run_em_sharded`); ``0``/``1`` — or a
                pool too small to split, a platform without ``fork``,
                or a mid-run shard death — run (or fall back)
                in-process. Results match the in-process solver to
                parallel-reduction rounding (see
                :func:`_run_em_sharded`).

        Returns:
            An :class:`ArenaInferenceResult` (empty when no answers).
        """
        arena = log.arena
        m = arena.num_domains
        task_rows = log.answered_rows()
        n = task_rows.size
        if n == 0:
            return ArenaInferenceResult(
                task_rows=task_rows,
                task_ids=[],
                ells=np.zeros(0, dtype=np.int64),
                S=np.zeros((0, 0)),
                M=np.zeros((0, m, 0)),
                worker_ids=[],
                qualities=np.zeros((0, m)),
                weights=np.zeros((0, m)),
            )
        # Compact the global rows: answered tasks only, first-answer
        # order (the same row order `infer` derives from answer lists).
        inverse = np.empty(len(arena), dtype=np.int64)
        inverse[task_rows] = np.arange(n)
        a_task = inverse[log.task_rows]
        a_worker = log.worker_rows
        a_choice = log.choices

        R = arena.domain_matrix()[task_rows]                    # (n, m)
        ells = arena.choice_counts()[task_rows]
        ell_max = int(ells.max())
        valid = np.arange(ell_max)[None, :] < ells[:, None]

        worker_ids = log.worker_ids
        Q = self._initial_q(len(worker_ids), m, worker_ids, initial_qualities)

        em_args = (
            R,
            ells,
            valid,
            a_task,
            a_worker,
            a_choice,
            Q,
            self._max_iterations,
            self._tolerance,
            track_delta,
        )
        use_shards = (
            shards > 1
            and n >= 2 * shards
            and "fork" in multiprocessing.get_all_start_methods()
        )
        if use_shards:
            try:
                S, M, Q, delta_history, iterations_run = _run_em_sharded(
                    *em_args, shards
                )
            except _ShardFailure:
                # A shard died mid-rerun (injected crash, kill). The
                # rerun is a pure function of the log — degrade to the
                # in-process solver rather than surfacing a fault.
                S, M, Q, delta_history, iterations_run = _run_em(*em_args)
        else:
            S, M, Q, delta_history, iterations_run = _run_em(*em_args)

        weights = _scatter_rows(a_worker, R[a_task], len(worker_ids))

        return ArenaInferenceResult(
            task_rows=task_rows,
            task_ids=[arena.task_id_at(int(row)) for row in task_rows],
            ells=ells,
            S=S,
            M=M,
            worker_ids=worker_ids,
            qualities=Q,
            weights=weights,
            delta_history=delta_history,
            iterations=iterations_run,
        )

    def _initial_q(
        self,
        W: int,
        m: int,
        worker_ids: Sequence[str],
        initial_qualities: Optional[Mapping[str, np.ndarray]],
    ) -> np.ndarray:
        """The (W, m) starting qualities, defaulting unseen workers."""
        Q = np.full((W, m), self._default_quality)
        if initial_qualities:
            for row, worker_id in enumerate(worker_ids):
                if worker_id in initial_qualities:
                    q = np.asarray(
                        initial_qualities[worker_id], dtype=float
                    )
                    if q.shape != (m,):
                        raise ValidationError(
                            f"initial quality for {worker_id} has shape "
                            f"{q.shape}, expected ({m},)"
                        )
                    Q[row] = q
        return Q


def _worker_weights(
    worker_answers: Sequence[Answer],
    domain_vectors: Mapping[int, np.ndarray],
) -> np.ndarray:
    """``u^w_k = sum_{t_i in T(w)} r_ik`` (Section 4.2)."""
    first = next(iter(domain_vectors.values()))
    weights = np.zeros_like(first)
    for answer in worker_answers:
        weights += domain_vectors[answer.task_id]
    return weights
