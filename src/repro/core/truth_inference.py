"""Iterative Truth Inference (Section 4.1).

Alternates two steps until convergence:

- **Step 1 (q -> s)**: for each task, build the conditional truth matrix
  ``M(i)`` (Eqs. 3-4) from the current worker qualities and the answer set
  ``V(i)``, then ``s_i = r_ti @ M(i)`` (Eq. 2).
- **Step 2 (s -> q)**: for each worker and domain,
  ``q^w_k = sum_i r_ik * s_{i, v^w_i} / sum_i r_ik`` over the worker's
  answered tasks (Eq. 5).

Numerics: Eq. 3's numerator is a product over answers, so it is computed
in log space; qualities are clipped into ``[QUALITY_FLOOR, QUALITY_CEIL]``
inside Eq. 4 only (reported qualities are unclipped) so a momentarily
perfect worker cannot produce ``log 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.types import (
    Answer,
    Task,
    group_answers_by_task,
    group_answers_by_worker,
)
from repro.errors import ValidationError

#: Clipping bounds applied to qualities inside likelihoods. Wide enough to
#: preserve strong signals, tight enough to keep logs finite.
QUALITY_FLOOR = 1e-3
QUALITY_CEIL = 1.0 - 1e-3

#: Quality assumed for a worker with no golden-task initialisation. The
#: paper initialises from golden tasks; 0.7 is the standard "better than
#: random but imperfect" prior used by EM-style inference when cold.
DEFAULT_INITIAL_QUALITY = 0.7

#: The paper observes convergence within ~10 iterations and terminates
#: within 20 in practice.
DEFAULT_MAX_ITERATIONS = 20
DEFAULT_TOLERANCE = 1e-6


def conditional_truth_matrix(
    task: Task,
    r: np.ndarray,
    answers: Sequence[Answer],
    qualities: Mapping[str, np.ndarray],
) -> np.ndarray:
    """Compute ``M(i)`` (Eqs. 3-4) for one task.

    Row k is the posterior distribution over the task's choices given that
    the true domain is ``d_k``, under independent worker answers and a
    uniform prior over choices.

    Args:
        task: the task (supplies ``l``).
        r: unused except for shape (m); kept for interface symmetry.
        answers: the answer set ``V(i)``.
        qualities: worker id -> length-m quality vector.

    Returns:
        Matrix of shape (m, l); each row sums to 1.
    """
    m = r.shape[0]
    ell = task.num_choices
    log_numerator = np.zeros((m, ell))
    for answer in answers:
        q = np.clip(qualities[answer.worker_id], QUALITY_FLOOR, QUALITY_CEIL)
        log_correct = np.log(q)
        log_incorrect = np.log((1.0 - q) / (ell - 1))
        # For each domain k: the answered choice contributes log q_k to
        # column (v-1) and log((1-q_k)/(l-1)) to every other column.
        contribution = np.tile(log_incorrect[:, None], (1, ell))
        contribution[:, answer.choice - 1] = log_correct
        log_numerator += contribution
    # Normalise each row in log space (softmax).
    log_numerator -= log_numerator.max(axis=1, keepdims=True)
    numerator = np.exp(log_numerator)
    return numerator / numerator.sum(axis=1, keepdims=True)


@dataclass
class TruthInferenceResult:
    """Output of :meth:`TruthInference.infer`.

    Attributes:
        probabilistic_truths: task id -> probabilistic truth ``s_i``.
        truth_matrices: task id -> conditional matrix ``M(i)``.
        worker_qualities: worker id -> quality vector ``q^w``.
        worker_weights: worker id -> per-domain expected answer counts
            ``u^w_k = sum_i r_ik`` (the Theorem 1 weights).
        delta_history: parameter change Delta per iteration (the Fig. 4(a)
            convergence series).
        iterations: iterations actually run.
    """

    probabilistic_truths: Dict[int, np.ndarray]
    truth_matrices: Dict[int, np.ndarray]
    worker_qualities: Dict[str, np.ndarray]
    worker_weights: Dict[str, np.ndarray]
    delta_history: List[float] = field(default_factory=list)
    iterations: int = 0

    def truths(self) -> Dict[int, int]:
        """MAP truth per task: ``v*_i = argmax_j s_{i,j}`` (1-based)."""
        return {
            task_id: int(np.argmax(s)) + 1
            for task_id, s in self.probabilistic_truths.items()
        }

    def accuracy(self, tasks: Sequence[Task]) -> float:
        """Fraction of tasks whose inferred truth matches ground truth.

        Tasks without ground truth are skipped.
        """
        truths = self.truths()
        correct = 0
        counted = 0
        for task in tasks:
            if task.ground_truth is None or task.task_id not in truths:
                continue
            counted += 1
            if truths[task.task_id] == task.ground_truth:
                correct += 1
        if counted == 0:
            raise ValidationError("no ground-truth tasks to score")
        return correct / counted


class TruthInference:
    """The iterative TI algorithm of Section 4.1.

    Args:
        max_iterations: iteration cap (paper: converges within ~10, capped
            at 20 in practice).
        tolerance: stop when the parameter change Delta falls below this.
        default_quality: per-domain quality assumed for workers with no
            initial estimate.
    """

    def __init__(
        self,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        tolerance: float = DEFAULT_TOLERANCE,
        default_quality: float = DEFAULT_INITIAL_QUALITY,
    ):
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        if not 0.0 < default_quality < 1.0:
            raise ValidationError("default_quality must be in (0, 1)")
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        self._default_quality = default_quality

    def infer(
        self,
        tasks: Sequence[Task],
        answers: Sequence[Answer],
        initial_qualities: Optional[Mapping[str, np.ndarray]] = None,
        track_delta: bool = True,
    ) -> TruthInferenceResult:
        """Run TI to convergence.

        Args:
            tasks: tasks with domain vectors set (``task.domain_vector``).
            answers: all collected answers.
            initial_qualities: optional worker id -> quality vector map
                (e.g. from golden tasks / the quality store). Workers not
                present start at ``default_quality`` across all domains.
            track_delta: record the Delta series (Fig. 4(a)); small cost.

        Returns:
            A :class:`TruthInferenceResult`.
        """
        task_index: Dict[int, Task] = {}
        domain_vectors: Dict[int, np.ndarray] = {}
        m = None
        for task in tasks:
            if task.domain_vector is None:
                raise ValidationError(
                    f"task {task.task_id} has no domain vector; run DVE "
                    "first"
                )
            task_index[task.task_id] = task
            domain_vectors[task.task_id] = np.asarray(
                task.domain_vector, dtype=float
            )
            if m is None:
                m = domain_vectors[task.task_id].shape[0]
            elif domain_vectors[task.task_id].shape[0] != m:
                raise ValidationError("inconsistent domain vector sizes")
        if m is None:
            raise ValidationError("no tasks given")

        by_task = group_answers_by_task(answers)
        by_worker = group_answers_by_worker(answers)
        unknown = set(by_task) - set(task_index)
        if unknown:
            raise ValidationError(
                f"answers reference unknown tasks: {sorted(unknown)[:5]}"
            )

        # ---- Vectorised layout -----------------------------------------
        # Only answered tasks participate in the iterations. Columns are
        # padded to the maximum choice count; invalid columns are masked
        # with -inf log-numerators so they carry zero probability.
        answered_ids: List[int] = list(by_task.keys())
        if not answered_ids:
            return TruthInferenceResult(
                probabilistic_truths={},
                truth_matrices={},
                worker_qualities={},
                worker_weights={},
            )
        tid_to_row = {tid: row for row, tid in enumerate(answered_ids)}
        n = len(answered_ids)
        worker_ids: List[str] = list(by_worker.keys())
        wid_to_row = {wid: row for row, wid in enumerate(worker_ids)}
        W = len(worker_ids)

        ells = np.array(
            [task_index[tid].num_choices for tid in answered_ids],
            dtype=np.int64,
        )
        ell_max = int(ells.max()) if n else 0
        valid = np.arange(ell_max)[None, :] < ells[:, None]     # (n, L)
        R = np.stack([domain_vectors[tid] for tid in answered_ids])  # (n, m)

        a_task = np.array(
            [tid_to_row[a.task_id] for a in answers], dtype=np.int64
        )
        a_worker = np.array(
            [wid_to_row[a.worker_id] for a in answers], dtype=np.int64
        )
        a_choice = np.array([a.choice - 1 for a in answers], dtype=np.int64)
        a_ell = ells[a_task]

        Q = np.full((W, m), self._default_quality)
        if initial_qualities:
            for wid, row in wid_to_row.items():
                if wid in initial_qualities:
                    q = np.asarray(initial_qualities[wid], dtype=float)
                    if q.shape != (m,):
                        raise ValidationError(
                            f"initial quality for {wid} has shape "
                            f"{q.shape}, expected ({m},)"
                        )
                    Q[row] = q

        S = np.where(valid, 1.0, 0.0)
        S = S / S.sum(axis=1, keepdims=True)                     # (n, L)
        M = np.zeros((n, m, ell_max))

        delta_history: List[float] = []
        iterations_run = 0
        for _ in range(self._max_iterations):
            iterations_run += 1
            S_prev = S.copy()
            Q_prev = Q.copy()

            # Step 1 (q -> s): accumulate Eq. 3's log numerators.
            Qc = np.clip(Q, QUALITY_FLOOR, QUALITY_CEIL)
            log_correct = np.log(Qc)                             # (W, m)
            # (answers, m): per-answer log-prob of a wrong specific pick.
            log_incorrect_a = np.log(
                (1.0 - Qc[a_worker]) / (a_ell - 1)[:, None]
            )
            log_correct_a = log_correct[a_worker]

            base = np.zeros((n, m))
            np.add.at(base, a_task, log_incorrect_a)
            logM = np.repeat(base[:, :, None], ell_max, axis=2)  # (n, m, L)
            # Add (log_correct - log_incorrect) at each answered column.
            delta_a = log_correct_a - log_incorrect_a            # (A, m)
            # Build flat index (task, column) -> add into (n*L, m) buffer.
            col_buffer = np.zeros((n * ell_max, m))
            np.add.at(col_buffer, a_task * ell_max + a_choice, delta_a)
            logM = logM + col_buffer.reshape(n, ell_max, m).transpose(
                0, 2, 1
            )
            logM = np.where(valid[:, None, :], logM, -np.inf)
            logM -= logM.max(axis=2, keepdims=True)
            expM = np.exp(logM)
            M = expM / expM.sum(axis=2, keepdims=True)
            S = np.einsum("nm,nml->nl", R, M)

            # Step 2 (s -> q): Eq. 5 as scatter-adds over workers.
            s_at_choice = S[a_task, a_choice]                    # (A,)
            numerator = np.zeros((W, m))
            denominator = np.zeros((W, m))
            np.add.at(numerator, a_worker, R[a_task] * s_at_choice[:, None])
            np.add.at(denominator, a_worker, R[a_task])
            mask = denominator > 0
            Q = np.where(mask, np.divide(
                numerator, denominator, out=np.zeros_like(numerator),
                where=mask,
            ), Q)

            if track_delta or self._tolerance > 0:
                truth_change = float(
                    (np.abs(S - S_prev).sum(axis=1) / ells).mean()
                ) if n else 0.0
                quality_change = (
                    float(np.abs(Q - Q_prev).mean()) if W else 0.0
                )
                delta = truth_change + quality_change
                delta_history.append(delta)
                if delta < self._tolerance:
                    break

        truths = {
            tid: S[row, : ells[row]].copy()
            for tid, row in tid_to_row.items()
        }
        matrices = {
            tid: M[row, :, : ells[row]].copy()
            for tid, row in tid_to_row.items()
        }
        qualities = {wid: Q[row].copy() for wid, row in wid_to_row.items()}

        return TruthInferenceResult(
            probabilistic_truths=truths,
            truth_matrices=matrices,
            worker_qualities=qualities,
            worker_weights={
                worker_id: _worker_weights(worker_answers, domain_vectors)
                for worker_id, worker_answers in by_worker.items()
            },
            delta_history=delta_history,
            iterations=iterations_run,
        )


def _worker_weights(
    worker_answers: Sequence[Answer],
    domain_vectors: Mapping[int, np.ndarray],
) -> np.ndarray:
    """``u^w_k = sum_{t_i in T(w)} r_ik`` (Section 4.2)."""
    first = next(iter(domain_vectors.values()))
    weights = np.zeros_like(first)
    for answer in worker_answers:
        weights += domain_vectors[answer.task_id]
    return weights


def _parameter_change(
    truths: Mapping[int, np.ndarray],
    previous_truths: Mapping[int, np.ndarray],
    qualities: Mapping[str, np.ndarray],
    previous_qualities: Mapping[str, np.ndarray],
) -> float:
    """The paper's Delta: mean absolute change of s plus that of q."""
    truth_change = 0.0
    for task_id, s in truths.items():
        truth_change += float(
            np.abs(s - previous_truths[task_id]).sum() / s.size
        )
    if truths:
        truth_change /= len(truths)

    quality_change = 0.0
    for worker_id, q in qualities.items():
        quality_change += float(
            np.abs(q - previous_qualities[worker_id]).sum() / q.size
        )
    if qualities:
        quality_change /= len(qualities)
    return truth_change + quality_change
