"""Online Task Assignment (Section 5.1).

For a coming worker with quality ``q`` and a candidate task with state
``(r, M, s)``:

- **Theorem 2** predicts the worker's answer distribution:
  ``Pr(v = a) = sum_k r_k [ q_k M_{k,a} + (1-q_k)/(l-1) (1 - M_{k,a}) ]``.
- **Theorem 3** gives the Bayesian update ``M|a`` of ``M`` if the worker
  answers ``a``.
- **Definition 5 / Eq. 8** define the benefit as the expected entropy
  reduction ``B(t) = H(s) - sum_a H(r @ M|a) Pr(v = a)``.
- **Theorem 4** shows the benefit of a k-task set is the sum of individual
  benefits, so the optimal HIT is the top-k by benefit — selected in
  linear time (:func:`repro.utils.topk.top_k_indices`).

Four implementations are provided, all returning identical benefits:

- :func:`task_benefit` — the readable per-task reference path;
- :func:`batch_benefits` — vectorised over a list of detached
  :class:`repro.core.types.TaskState` objects (stacks them per call);
- :func:`arena_benefits` — the full-pool path: computes straight on a
  :class:`repro.core.arena.StateArena`'s persistent choice-grouped
  buffers. No candidate list is built and nothing is stacked — prior
  entropies come from the arena's dirty-row cache and ineligible tasks
  are masked with a boolean row mask, which is what keeps a worker
  arrival O(n) in ndarray work (Fig. 8(c)) instead of O(n) in Python
  object traffic;
- :func:`arena_benefits_rows` — the same kernel over an explicit row
  subset (gathered per choice group). Row-for-row bit-identical to
  :func:`arena_benefits` — the kernel is elementwise/per-slice, so a
  row's result does not depend on which other rows share the batch —
  which is what lets the serving plane evaluate only dirty or
  budget-eligible rows and still make brute-force-identical picks.

:class:`TaskAssigner` picks the serving strategy per arrival: a small
eligible set (a budget-capped campaign tail) gets the row-subset
kernel, an attached :class:`repro.core.serving.AssignmentIndex` serves
warm workers from cached benefit columns, and the full-pool evaluation
remains both the fallback and the equivalence oracle.

Every kernel invocation adds the rows it evaluated to a module-level
counter (:func:`kernel_rows_evaluated`), so tests can assert that a
serving strategy did sub-O(n) work rather than merely returning the
right answer quickly.
"""

from __future__ import annotations

import logging
from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.arena import StateArena
from repro.core.truth_inference import QUALITY_CEIL, QUALITY_FLOOR
from repro.core.types import TaskState
from repro.errors import ServingPoolError, ValidationError
from repro.utils.math import entropy_unchecked, safe_log
from repro.utils.topk import top_k_indices

logger = logging.getLogger(__name__)

#: The paper batches k = 20 tasks per HIT on AMT (Section 5), and k = 3
#: per method in the parallel-comparison experiments (Section 6.1).
DEFAULT_HIT_SIZE = 20

#: Eligible sets smaller than this fraction of the pool are served by
#: the row-subset kernel instead of a full-pool evaluation plus mask.
DEFAULT_MASKED_FRACTION = 0.25

#: Running count of task rows pushed through the Eq. 8 kernel — the
#: serving plane's work meter (see :func:`kernel_rows_evaluated`).
_kernel_rows_evaluated = 0


def kernel_rows_evaluated() -> int:
    """Total task rows evaluated by the benefit kernel so far.

    Every (n, m, l) kernel block adds its n to this process-wide
    counter, whichever caller ran it (full-pool, row-subset, or the
    AssignmentIndex). Regression tests snapshot it before and after an
    operation to assert *how much* kernel work was done — e.g. that a
    budget-capped assignment over 10 eligible tasks evaluated ~10 rows,
    not the whole pool.
    """
    return _kernel_rows_evaluated


def predict_answer_distribution(
    r: np.ndarray, M: np.ndarray, quality: np.ndarray
) -> np.ndarray:
    """Theorem 2: the coming worker's predicted answer distribution.

    Args:
        r: domain vector (m,).
        M: conditional truth matrix (m, l).
        quality: the worker's quality vector (m,), clipped internally.

    Returns:
        Length-l probability distribution over the worker's answer.
    """
    ell = M.shape[1]
    q = np.clip(quality, QUALITY_FLOOR, QUALITY_CEIL)
    per_domain = q[:, None] * M + ((1.0 - q) / (ell - 1))[:, None] * (1.0 - M)
    return r @ per_domain


def updated_truth_matrix(
    M: np.ndarray, quality: np.ndarray, answer: int
) -> np.ndarray:
    """Theorem 3: Bayesian update ``M|a`` after observing answer ``a``.

    Args:
        M: conditional truth matrix (m, l).
        quality: worker quality vector (m,).
        answer: the observed choice (1-based).

    Returns:
        The updated matrix of the same shape, rows renormalised.
    """
    m, ell = M.shape
    if not 1 <= answer <= ell:
        raise ValidationError(f"answer {answer} outside [1, {ell}]")
    q = np.clip(quality, QUALITY_FLOOR, QUALITY_CEIL)
    factor = np.tile(((1.0 - q) / (ell - 1))[:, None], (1, ell))
    factor[:, answer - 1] = q
    updated = M * factor
    return updated / updated.sum(axis=1, keepdims=True)


def task_benefit(
    state: TaskState, quality: np.ndarray
) -> float:
    """Definition 5 + Eq. 8: expected entropy reduction of one assignment.

    Args:
        state: the task's current (r, M, s).
        quality: the coming worker's quality vector.

    Returns:
        ``B(t) = H(s) - sum_a H(r @ M|a) * Pr(v = a)``. Non-negative up to
        floating point (conditioning cannot increase expected entropy).
    """
    answer_probs = predict_answer_distribution(state.r, state.M, quality)
    expected_posterior_entropy = 0.0
    for a in range(1, state.num_choices + 1):
        M_given_a = updated_truth_matrix(state.M, quality, a)
        s_given_a = state.r @ M_given_a
        expected_posterior_entropy += (
            entropy_unchecked(s_given_a) * answer_probs[a - 1]
        )
    return entropy_unchecked(state.s) - expected_posterior_entropy


def _entropy_benefits(
    R: np.ndarray,
    M: np.ndarray,
    prior_entropy: np.ndarray,
    q: np.ndarray,
    ell: int,
    scratch: Optional[Tuple[np.ndarray, ...]] = None,
) -> np.ndarray:
    """Eq. 8 over one choice-count block, in closed form.

    The Theorem 3 row-normaliser telescopes: the unnormalised update
    ``M[k, j] * factor[k, j, a]`` sums over j to exactly Theorem 2's
    per-domain answer probability ``pd[k, a] = (q_k - w_k) M[k, a] +
    w_k`` (``w`` = wrong-pick probability). Substituting,

        s|a[j] = sum_k (r_k w_k / pd[k, a]) M[k, j]
                 + delta_{j a} * sum_k r_k (q_k - w_k) M[k, a] / pd[k, a]

    which needs only (n, m, l) intermediates — the naive form
    materialises the full (n, m, l, l) update tensor (see
    :func:`repro.core.reference.reference_batch_benefits`).

    Args:
        R: (n, m) domain vectors.
        M: (n, m, l) conditional truth matrices.
        prior_entropy: (n,) entropies H(s).
        q: clipped worker quality (m,).
        ell: the block's choice count.
        scratch: optional three preallocated (n, m, l) work buffers
            (the arena path reuses per-group scratch across arrivals).

    Returns:
        (n,) benefits.
    """
    global _kernel_rows_evaluated
    _kernel_rows_evaluated += M.shape[0]
    if scratch is None:
        scratch = tuple(np.empty_like(M) for _ in range(3))
    pd, weights, D = scratch
    wrong = (1.0 - q) / (ell - 1)                          # (m,)
    gain = q - wrong                                       # (m,)
    # Theorem 2: pd[n, k, a] = Pr(v = a | domain k) for this worker.
    np.multiply(M, gain[None, :, None], out=pd)
    pd += wrong[None, :, None]
    answer_probs = np.matmul(R[:, None, :], pd)[:, 0, :]   # (n, l)
    # Off-diagonal part of s|a: weights r_k w_k / pd[k, a]. Batched
    # matmul beats einsum ~10x on these contraction shapes.
    np.divide((R * wrong[None, :])[:, :, None], pd, out=weights)
    s_given_a = np.matmul(M.transpose(0, 2, 1), weights)   # (n, j, a)
    # Diagonal correction at j == a.
    np.divide(M, pd, out=D)
    diagonal = np.matmul((R * gain[None, :])[:, None, :], D)[:, 0, :]
    idx = np.arange(ell)
    s_given_a[:, idx, idx] += diagonal
    posterior_entropy = -np.sum(
        s_given_a * safe_log(s_given_a), axis=1
    )                                                      # (n, a)
    return prior_entropy - np.sum(posterior_entropy * answer_probs, axis=1)


def batch_benefits(
    states: Sequence[TaskState], quality: np.ndarray
) -> np.ndarray:
    """Vectorised benefits for many tasks at once.

    Groups tasks by choice count and evaluates each group with pure
    ndarray operations (no per-task Python loop), which is what makes the
    Fig. 8(c) scalability numbers (n = 10K in fractions of a second)
    achievable in Python.

    Returns:
        Array of benefits aligned with ``states``.
    """
    benefits = np.empty(len(states), dtype=float)
    by_ell: Dict[int, List[int]] = defaultdict(list)
    for idx, state in enumerate(states):
        by_ell[state.num_choices].append(idx)

    q = np.clip(
        np.asarray(quality, dtype=float), QUALITY_FLOOR, QUALITY_CEIL
    )
    for ell, indices in by_ell.items():
        R = np.stack([states[i].r for i in indices])           # (n, m)
        M = np.stack([states[i].M for i in indices])           # (n, m, l)
        S = np.stack([states[i].s for i in indices])           # (n, l)
        prior_entropy = -np.sum(S * safe_log(S), axis=1)
        benefits[indices] = _entropy_benefits(
            R, M, prior_entropy, q, ell
        )
    return benefits


def arena_benefits(arena: StateArena, quality: np.ndarray) -> np.ndarray:
    """Benefits for every arena task, straight off the persistent buffers.

    Per choice-count group, the Theorem 2/3 tensors are evaluated on the
    group's live buffer slices; the Eq. 8 prior entropies come from the
    arena's cached ``H`` column (refreshed for dirty rows first).

    Returns:
        Array of benefits indexed by arena registration order.
    """
    arena.refresh_entropies()
    q = np.clip(np.asarray(quality, dtype=float), QUALITY_FLOOR, QUALITY_CEIL)
    benefits = np.empty(len(arena), dtype=float)
    for group in arena.iter_groups():
        count = group.count
        if count == 0:
            continue
        benefits[group.global_rows[:count]] = _entropy_benefits(
            group.R[:count],
            group.M[:count],
            group.H[:count],
            q,
            group.ell,
            scratch=group.benefit_scratch(),
        )
    return benefits


def arena_benefits_rows(
    arena: StateArena, quality: np.ndarray, global_rows: np.ndarray
) -> np.ndarray:
    """Benefits for an explicit subset of arena rows.

    Gathers each choice group's ``R`` / ``M`` / ``H`` slices for only
    the requested rows and runs the same closed-form kernel, so the
    cost is O(|rows| * m * l) regardless of pool size. The kernel is
    elementwise and per-slice, so every returned value is bit-identical
    to the corresponding entry of :func:`arena_benefits` — the serving
    plane relies on this to mix cached full-pool columns with
    per-arrival subset evaluations.

    Args:
        arena: the state arena.
        quality: the coming worker's quality vector (clipped
            internally).
        global_rows: (d,) arena registration indices to evaluate.

    Returns:
        (d,) benefits aligned with ``global_rows``.
    """
    arena.refresh_entropies()
    q = np.clip(np.asarray(quality, dtype=float), QUALITY_FLOOR, QUALITY_CEIL)
    global_rows = np.asarray(global_rows, dtype=np.int64)
    benefits = np.empty(global_rows.shape[0], dtype=float)
    if global_rows.shape[0] == 0:
        return benefits
    ells = arena.choice_counts()[global_rows]
    for group in arena.iter_groups():
        compact = np.flatnonzero(ells == group.ell)
        if compact.size == 0:
            continue
        rows = arena.group_rows_at(global_rows[compact])
        benefits[compact] = _entropy_benefits(
            group.R[rows],
            group.M[rows],
            group.H[rows],
            q,
            group.ell,
        )
    return benefits


class TaskAssigner:
    """The OTA module: pick the k highest-benefit unanswered tasks.

    Args:
        hit_size: default number of tasks per HIT (k).
        strict_ids: how to treat ``eligible`` / ``answered_by_worker``
            ids that are not registered in the arena. After ``add_tasks``
            live growth an unknown id usually means the caller built its
            sets against a stale task pool; ``False`` (default) logs a
            warning and skips them, ``True`` raises ``ValidationError``
            naming the ids.
        masked_fraction: eligible sets at or below this fraction of the
            pool are served by the row-subset kernel
            (:func:`arena_benefits_rows`) instead of a full-pool
            evaluation plus mask — the budget-capped-tail fast path.
            ``0`` disables it (always evaluate the whole pool).
    """

    def __init__(
        self,
        hit_size: int = DEFAULT_HIT_SIZE,
        strict_ids: bool = False,
        masked_fraction: float = DEFAULT_MASKED_FRACTION,
    ):
        if hit_size < 1:
            raise ValidationError(f"hit_size must be >= 1: {hit_size}")
        if not 0.0 <= masked_fraction <= 1.0:
            raise ValidationError(
                f"masked_fraction must be in [0, 1]: {masked_fraction}"
            )
        self._hit_size = hit_size
        self._strict_ids = strict_ids
        self._masked_fraction = masked_fraction
        self._index = None
        self._pool = None

    @property
    def hit_size(self) -> int:
        """Default HIT size k."""
        return self._hit_size

    @property
    def strict_ids(self) -> bool:
        """Whether unknown candidate ids raise instead of being skipped."""
        return self._strict_ids

    @property
    def index(self):
        """The attached serving-plane index, if any."""
        return self._index

    def attach_index(self, index) -> None:
        """Serve arena assignments through an
        :class:`repro.core.serving.AssignmentIndex`.

        The index must be built over the same arena the assigner is
        queried with; arenas it does not cover fall back to the
        brute-force path. Pass ``None`` to detach.
        """
        self._index = index

    @property
    def pool(self):
        """The attached multi-process serving pool, if any."""
        return self._pool

    def attach_pool(self, pool) -> None:
        """Serve arena assignments through a
        :class:`repro.system.parallel.ServingPool`.

        The pool outranks an attached single-process index for
        full-pool selections (picks are bit-identical either way). A
        pool that breaks mid-request — a worker died — is detached on
        the spot and serving degrades to the local index / brute path.
        Pass ``None`` to detach.
        """
        self._pool = pool

    def assign(
        self,
        states: Union[StateArena, Mapping[int, TaskState]],
        worker_quality: np.ndarray,
        answered_by_worker: Optional[Set[int]] = None,
        k: Optional[int] = None,
        eligible: Optional[Set[int]] = None,
    ) -> List[int]:
        """Select up to k tasks for the coming worker.

        Args:
            states: the candidate pool T — either a
                :class:`repro.core.arena.StateArena` (serving path, no
                per-call state materialisation) or a task id -> state
                mapping (reference path).
            worker_quality: the worker's quality vector ``q^w``.
            answered_by_worker: task ids in T(w), excluded from
                assignment (a worker answers a task at most once).
            k: HIT size override.
            eligible: if given, restrict candidates to these task ids
                (e.g. tasks still under their answer budget).

        Returns:
            Task ids sorted by descending benefit; fewer than k if the
            candidate pool is smaller. Empty if nothing is assignable.
        """
        hit_size = k if k is not None else self._hit_size
        if hit_size < 1:
            raise ValidationError(f"k must be >= 1: {hit_size}")
        if isinstance(states, StateArena):
            return self._assign_from_arena(
                states, worker_quality, answered_by_worker, hit_size,
                eligible,
            )
        answered = answered_by_worker or set()
        candidates = [
            state
            for task_id, state in states.items()
            if task_id not in answered
            and (eligible is None or task_id in eligible)
        ]
        if not candidates:
            return []
        benefits = batch_benefits(candidates, worker_quality)
        take = min(hit_size, len(candidates))
        chosen = top_k_indices(benefits, take)
        return [candidates[i].task.task_id for i in chosen]

    def assign_many(
        self,
        arena: StateArena,
        arrivals: Sequence[
            Tuple[np.ndarray, Optional[Set[int]]]
        ],
        k: Optional[int] = None,
    ) -> List[List[int]]:
        """Serve a batch of arrivals, fanned across the serving pool.

        Each arrival is a ``(worker_quality, answered_by_worker)``
        pair. With an attached
        :class:`repro.system.parallel.ServingPool` the full-pool
        selects dispatch as one :meth:`~ServingPool.select_many` batch
        — N arrivals evaluate concurrently on N worker processes —
        while short-circuiting arrivals (empty pool, nothing
        available) resolve inline. Without a pool the arrivals are
        served one by one through the usual strategy ladder. Either
        way every pick list is bit-identical to calling
        :meth:`assign` per arrival in order.

        Args:
            arena: the candidate pool.
            arrivals: per-worker (quality vector, answered task ids).
            k: HIT size override, applied to every arrival.

        Returns:
            One task-id list per arrival, order preserved.
        """
        hit_size = k if k is not None else self._hit_size
        if hit_size < 1:
            raise ValidationError(f"k must be >= 1: {hit_size}")
        picks: List[Optional[List[int]]] = [None] * len(arrivals)
        selects: List[Tuple[int, tuple]] = []
        for position, (quality, answered) in enumerate(arrivals):
            kind, payload = self._translate_arrival(
                arena, quality, answered, hit_size, None
            )
            if kind == "picks":
                picks[position] = payload
            else:
                selects.append((position, payload))
        pool = self._pool
        if selects and pool is not None and pool.arena is arena:
            try:
                batches = pool.select_many(
                    [request for _, request in selects]
                )
            except ServingPoolError as exc:
                logger.warning(
                    "serving pool degraded to single-process: %s", exc
                )
                self._pool = None
            else:
                for (position, _), rows in zip(selects, batches):
                    picks[position] = [
                        arena.task_id_at(int(row)) for row in rows
                    ]
                return picks  # type: ignore[return-value]
        for position, request in selects:
            picks[position] = self._serve_select(arena, request)
        return picks  # type: ignore[return-value]

    def _assign_from_arena(
        self,
        arena: StateArena,
        worker_quality: np.ndarray,
        answered_by_worker: Optional[Set[int]],
        hit_size: int,
        eligible: Optional[Set[int]],
    ) -> List[int]:
        """Arena path: pick a serving strategy, all brute-identical.

        1. a small ``eligible`` set (budget-capped tail) → row-subset
           kernel over only the candidates;
        2. an attached :class:`repro.system.parallel.ServingPool`
           covering this arena → a pool worker's index serves it;
        3. an attached :class:`repro.core.serving.AssignmentIndex`
           covering this arena → cached benefit columns patched on
           dirty rows only;
        4. otherwise → the brute-force oracle: full-pool kernel plus
           row mask.
        """
        kind, payload = self._translate_arrival(
            arena, worker_quality, answered_by_worker, hit_size,
            eligible,
        )
        if kind == "picks":
            return payload
        return self._serve_select(arena, payload)

    def _translate_arrival(
        self,
        arena: StateArena,
        worker_quality: np.ndarray,
        answered_by_worker: Optional[Set[int]],
        hit_size: int,
        eligible: Optional[Set[int]],
    ):
        """Translate an id-level arrival into a row-level select.

        Returns ``("picks", task_ids)`` when the arrival resolves
        inline — empty pool, nothing assignable, or the small-eligible
        row-subset fast path — else ``("select", request)`` where
        ``request`` is the ``(quality, take, excluded_rows,
        eligible_rows, available)`` tuple every select-level server
        (pool worker, local index, brute oracle) understands.
        """
        n = len(arena)
        if n == 0:
            return "picks", []
        excluded: Set[int] = set()
        if answered_by_worker:
            excluded = set(
                _arena_rows(
                    arena,
                    answered_by_worker,
                    strict=self._strict_ids,
                    label="answered_by_worker",
                )
            )
        eligible_rows: Optional[Set[int]] = None
        if eligible is not None:
            eligible_rows = set(
                _arena_rows(
                    arena,
                    eligible,
                    strict=self._strict_ids,
                    label="eligible",
                )
            )
        if eligible_rows is not None:
            candidates = eligible_rows - excluded
            available = len(candidates)
        else:
            candidates = None
            available = n - len(excluded)
        if available == 0:
            return "picks", []
        take = min(hit_size, available)

        if (
            candidates is not None
            and available <= self._masked_fraction * n
        ):
            # Budget-capped tail: evaluate the kernel for only the
            # candidate rows. Ascending row order keeps tie-breaking
            # identical to the full-pool path (ascending global row).
            rows = np.fromiter(
                sorted(candidates), dtype=np.int64, count=available
            )
            benefits = arena_benefits_rows(arena, worker_quality, rows)
            chosen = rows[top_k_indices(benefits, take)]
            return "picks", [
                arena.task_id_at(int(row)) for row in chosen
            ]
        return "select", (
            worker_quality, take, excluded, eligible_rows, available
        )

    def _serve_select(self, arena: StateArena, request) -> List[int]:
        """Serve one row-level select: pool, then index, then brute."""
        worker_quality, take, excluded, eligible_rows, available = (
            request
        )
        pool = self._pool
        if pool is not None and pool.arena is arena:
            try:
                chosen = pool.select(
                    worker_quality, take, excluded, eligible_rows,
                    available,
                )
                return [arena.task_id_at(int(row)) for row in chosen]
            except ServingPoolError as exc:
                # A worker died (or the pool closed under us): detach
                # and keep serving single-process — same picks, fewer
                # cores (mirrors the storage plane's degraded mode).
                logger.warning(
                    "serving pool degraded to single-process: %s", exc
                )
                self._pool = None

        index = self._index
        if index is not None and index.arena is arena:
            chosen = index.select(
                worker_quality, take, excluded, eligible_rows, available
            )
            return [arena.task_id_at(int(row)) for row in chosen]

        return self._assign_brute(
            arena, worker_quality, excluded, eligible_rows, take
        )

    def _assign_brute(
        self,
        arena: StateArena,
        worker_quality: np.ndarray,
        excluded: Set[int],
        eligible_rows: Optional[Set[int]],
        take: int,
    ) -> List[int]:
        """The equivalence oracle: full-pool benefits + row mask."""
        benefits = arena_benefits(arena, worker_quality)
        chosen = masked_top_k(benefits, take, excluded, eligible_rows)
        return [arena.task_id_at(int(row)) for row in chosen]


def masked_top_k(
    benefits: np.ndarray,
    take: int,
    excluded_rows: Set[int],
    eligible_rows: Optional[Set[int]],
) -> np.ndarray:
    """-inf-mask a benefit array and pick its top ``take`` rows.

    The one shared selection tail of the brute-force oracle and the
    index's full-column fallback — kept single so the two paths cannot
    drift apart on masking or tie-breaking semantics (the exactness
    contract depends on them being identical). ``benefits`` is masked
    **in place**; pass a copy to keep the original.
    """
    if excluded_rows:
        benefits[
            np.fromiter(
                excluded_rows, dtype=np.int64, count=len(excluded_rows)
            )
        ] = -np.inf
    if eligible_rows is not None:
        allowed = np.zeros(benefits.shape[0], dtype=bool)
        allowed[
            np.fromiter(
                eligible_rows, dtype=np.int64, count=len(eligible_rows)
            )
        ] = True
        benefits[~allowed] = -np.inf
    return top_k_indices(benefits, take)


def _arena_rows(
    arena: StateArena,
    task_ids: Iterable[int],
    *,
    strict: bool = False,
    label: str = "task",
) -> List[int]:
    """Global rows of the given task ids.

    Ids not registered in the arena are a caller bug (typically a
    candidate set built against a stale pool after ``add_tasks`` live
    growth): with ``strict`` they raise, otherwise they are skipped with
    a warning naming the set and the offending ids — never silently.

    Raises:
        ValidationError: if ``strict`` and any id is unknown.
    """
    rows: List[int] = []
    unknown: List[int] = []
    for task_id in task_ids:
        if task_id in arena:
            rows.append(arena.global_row(task_id))
        else:
            unknown.append(task_id)
    if unknown:
        shown = sorted(unknown)[:10]
        message = (
            f"{len(unknown)} id(s) in {label} are not registered in the "
            f"arena (first: {shown}); the candidate set was likely built "
            "against a stale task pool — rebuild it after add_tasks()"
        )
        if strict:
            raise ValidationError(message)
        logger.warning("%s; skipping them", message)
    return rows
