"""Online Task Assignment (Section 5.1).

For a coming worker with quality ``q`` and a candidate task with state
``(r, M, s)``:

- **Theorem 2** predicts the worker's answer distribution:
  ``Pr(v = a) = sum_k r_k [ q_k M_{k,a} + (1-q_k)/(l-1) (1 - M_{k,a}) ]``.
- **Theorem 3** gives the Bayesian update ``M|a`` of ``M`` if the worker
  answers ``a``.
- **Definition 5 / Eq. 8** define the benefit as the expected entropy
  reduction ``B(t) = H(s) - sum_a H(r @ M|a) Pr(v = a)``.
- **Theorem 4** shows the benefit of a k-task set is the sum of individual
  benefits, so the optimal HIT is the top-k by benefit — selected in
  linear time (:func:`repro.utils.topk.top_k_indices`).

Two implementations are provided: a readable per-task path
(:func:`task_benefit`) and a fully vectorised batch path used by
:class:`TaskAssigner` (identical results; the batch path groups tasks by
choice count so mixed-``l`` task sets are supported).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.truth_inference import QUALITY_CEIL, QUALITY_FLOOR
from repro.core.types import TaskState
from repro.errors import ValidationError
from repro.utils.math import entropy_unchecked, safe_log
from repro.utils.topk import top_k_indices

#: The paper batches k = 20 tasks per HIT on AMT (Section 5), and k = 3
#: per method in the parallel-comparison experiments (Section 6.1).
DEFAULT_HIT_SIZE = 20


def predict_answer_distribution(
    r: np.ndarray, M: np.ndarray, quality: np.ndarray
) -> np.ndarray:
    """Theorem 2: the coming worker's predicted answer distribution.

    Args:
        r: domain vector (m,).
        M: conditional truth matrix (m, l).
        quality: the worker's quality vector (m,), clipped internally.

    Returns:
        Length-l probability distribution over the worker's answer.
    """
    ell = M.shape[1]
    q = np.clip(quality, QUALITY_FLOOR, QUALITY_CEIL)
    per_domain = q[:, None] * M + ((1.0 - q) / (ell - 1))[:, None] * (1.0 - M)
    return r @ per_domain


def updated_truth_matrix(
    M: np.ndarray, quality: np.ndarray, answer: int
) -> np.ndarray:
    """Theorem 3: Bayesian update ``M|a`` after observing answer ``a``.

    Args:
        M: conditional truth matrix (m, l).
        quality: worker quality vector (m,).
        answer: the observed choice (1-based).

    Returns:
        The updated matrix of the same shape, rows renormalised.
    """
    m, ell = M.shape
    if not 1 <= answer <= ell:
        raise ValidationError(f"answer {answer} outside [1, {ell}]")
    q = np.clip(quality, QUALITY_FLOOR, QUALITY_CEIL)
    factor = np.tile(((1.0 - q) / (ell - 1))[:, None], (1, ell))
    factor[:, answer - 1] = q
    updated = M * factor
    return updated / updated.sum(axis=1, keepdims=True)


def task_benefit(
    state: TaskState, quality: np.ndarray
) -> float:
    """Definition 5 + Eq. 8: expected entropy reduction of one assignment.

    Args:
        state: the task's current (r, M, s).
        quality: the coming worker's quality vector.

    Returns:
        ``B(t) = H(s) - sum_a H(r @ M|a) * Pr(v = a)``. Non-negative up to
        floating point (conditioning cannot increase expected entropy).
    """
    answer_probs = predict_answer_distribution(state.r, state.M, quality)
    expected_posterior_entropy = 0.0
    for a in range(1, state.num_choices + 1):
        M_given_a = updated_truth_matrix(state.M, quality, a)
        s_given_a = state.r @ M_given_a
        expected_posterior_entropy += (
            entropy_unchecked(s_given_a) * answer_probs[a - 1]
        )
    return entropy_unchecked(state.s) - expected_posterior_entropy


def batch_benefits(
    states: Sequence[TaskState], quality: np.ndarray
) -> np.ndarray:
    """Vectorised benefits for many tasks at once.

    Groups tasks by choice count and evaluates each group with pure
    ndarray operations (no per-task Python loop), which is what makes the
    Fig. 8(c) scalability numbers (n = 10K in fractions of a second)
    achievable in Python.

    Returns:
        Array of benefits aligned with ``states``.
    """
    benefits = np.empty(len(states), dtype=float)
    by_ell: Dict[int, List[int]] = defaultdict(list)
    for idx, state in enumerate(states):
        by_ell[state.num_choices].append(idx)

    q_raw = np.asarray(quality, dtype=float)
    for ell, indices in by_ell.items():
        R = np.stack([states[i].r for i in indices])           # (n, m)
        M = np.stack([states[i].M for i in indices])           # (n, m, l)
        S = np.stack([states[i].s for i in indices])           # (n, l)
        q = np.clip(q_raw, QUALITY_FLOOR, QUALITY_CEIL)        # (m,)
        wrong = (1.0 - q) / (ell - 1)                          # (m,)

        # Theorem 2 for all tasks: (n, l).
        per_domain = q[None, :, None] * M + wrong[None, :, None] * (1.0 - M)
        answer_probs = np.einsum("nm,nml->nl", R, per_domain)

        # Theorem 3 for all tasks and all hypothetical answers a:
        # factor[k, j, a] = q_k if j == a else wrong_k -> (m, l, l).
        factor = np.broadcast_to(
            wrong[:, None, None], (q.size, ell, ell)
        ).copy()
        eye = np.eye(ell, dtype=bool)
        factor[:, eye] = np.repeat(q[:, None], ell, axis=1)
        # updated[n, k, j, a] = M[n, k, j] * factor[k, j, a], rows (j)
        # renormalised per (n, k, a).
        updated = M[:, :, :, None] * factor[None, :, :, :]
        updated /= updated.sum(axis=2, keepdims=True)
        # s|a for each hypothetical a: (n, j, a) then entropy over j.
        s_given_a = np.einsum("nm,nmja->nja", R, updated)
        posterior_entropy = -np.sum(
            s_given_a * safe_log(s_given_a), axis=1
        )                                                      # (n, a)
        expected_posterior = np.sum(posterior_entropy * answer_probs, axis=1)
        prior_entropy = -np.sum(S * safe_log(S), axis=1)
        benefits[indices] = prior_entropy - expected_posterior
    return benefits


class TaskAssigner:
    """The OTA module: pick the k highest-benefit unanswered tasks.

    Args:
        hit_size: default number of tasks per HIT (k).
    """

    def __init__(self, hit_size: int = DEFAULT_HIT_SIZE):
        if hit_size < 1:
            raise ValidationError(f"hit_size must be >= 1: {hit_size}")
        self._hit_size = hit_size

    @property
    def hit_size(self) -> int:
        """Default HIT size k."""
        return self._hit_size

    def assign(
        self,
        states: Mapping[int, TaskState],
        worker_quality: np.ndarray,
        answered_by_worker: Optional[Set[int]] = None,
        k: Optional[int] = None,
        eligible: Optional[Set[int]] = None,
    ) -> List[int]:
        """Select up to k tasks for the coming worker.

        Args:
            states: task id -> current state (the candidate pool T).
            worker_quality: the worker's quality vector ``q^w``.
            answered_by_worker: task ids in T(w), excluded from
                assignment (a worker answers a task at most once).
            k: HIT size override.
            eligible: if given, restrict candidates to these task ids
                (e.g. tasks still under their answer budget).

        Returns:
            Task ids sorted by descending benefit; fewer than k if the
            candidate pool is smaller. Empty if nothing is assignable.
        """
        hit_size = k if k is not None else self._hit_size
        if hit_size < 1:
            raise ValidationError(f"k must be >= 1: {hit_size}")
        answered = answered_by_worker or set()
        candidates = [
            state
            for task_id, state in states.items()
            if task_id not in answered
            and (eligible is None or task_id in eligible)
        ]
        if not candidates:
            return []
        benefits = batch_benefits(candidates, worker_quality)
        take = min(hit_size, len(candidates))
        chosen = top_k_indices(benefits, take)
        return [candidates[i].task.task_id for i in chosen]
