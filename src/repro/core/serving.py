"""Sub-O(n) serving plane: incremental benefit maintenance.

Every worker arrival in DOCS ranks tasks by the Eq. 8 expected entropy
reduction (Theorems 2–4). The arena made that ranking O(n) in *ndarray*
work; this module removes the n itself from the steady state. The
observation (the same one behind incremental view maintenance in HTAP
designs such as Polynesia): one answer moves exactly one task's
``(M, s)`` row, so of the n benefit values a worker saw on her last
arrival, all but a handful are still exact. :class:`AssignmentIndex`
therefore keeps, per worker-quality bucket, a **maintained benefit
column** over the arena and repairs it instead of recomputing it:

- **benefit columns** — a full-pool benefit array computed once per
  distinct quality vector, stamped row-by-row with the arena's write
  epochs (:meth:`repro.core.arena.StateArena.row_epochs`). On the next
  arrival a vectorised stamp comparison yields exactly the dirty rows,
  and only those go through the Eq. 8 kernel
  (:func:`repro.core.assignment.arena_benefits_rows`).
- **quality buckets** — columns are keyed by the worker's quality
  vector *quantised* to a configurable granularity, which bounds the
  number of live columns (similar workers share one slot; an LRU cap
  bounds the total). Exactness is never traded: a column is reused
  only when the incoming quality is bit-identical to the one it was
  computed with — a quantisation-mate with a different exact quality
  evicts and recomputes the slot.
- **lazy top-k frontier** — per column, the rows of the top-F benefits
  plus a threshold ``tau`` with the invariant *every row outside the
  frontier has benefit <= tau*. Dirty rows whose fresh benefit exceeds
  ``tau`` join the frontier; selection then argpartitions only the
  frontier instead of the pool, and falls back to a full-column
  selection (zero kernel work — the column is already repaired)
  whenever the frontier cannot *prove* the pick is exact: fewer
  eligible frontier rows than requested, or a k-th benefit that does
  not strictly beat ``tau`` (a tie at ``tau`` could hide a lower-index
  row outside the frontier). Every fallback doubles as a frontier
  rebuild, so a drifting benefit landscape re-tightens ``tau``.

Invalidation is entirely epoch-driven, so the index never needs to be
told what happened: an incremental-TI submit dirties one row, a
full-TI resync dirties the rows it rewrote, ``StateArena.grow`` stamps
the new block, and a snapshot overlay stamps everything it restored.
When most of the pool is dirty (right after a full-TI re-run) the
repair degenerates to one full-pool evaluation — exactly the
brute-force cost, never more than a constant factor of it.

**Exactness contract.** For identical arena state, quality, exclusion
sets, and k, :meth:`AssignmentIndex.select` returns bit-identical
picks, in the same order, as the brute-force
``arena_benefits`` + mask + ``top_k_indices`` path — including
tie-breaking (ascending global row). The property suite
(``tests/core/test_serving_equivalence.py``) drives both paths through
random answer streams, live growth, quality drift, and snapshot resume
to hold that line.
"""

from __future__ import annotations

import os
import secrets
from collections import OrderedDict
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.arena import StateArena
from repro.core.assignment import (
    arena_benefits,
    arena_benefits_rows,
    masked_top_k,
)
from repro.core.truth_inference import QUALITY_CEIL, QUALITY_FLOOR
from repro.errors import ValidationError
from repro.utils.topk import top_k_indices

#: Default quantisation step for quality-bucket keys.
DEFAULT_BUCKET_GRANULARITY = 0.05
#: Default frontier size F (rows kept per cached column).
DEFAULT_FRONTIER_SIZE = 64
#: Default cap on live cached columns (LRU beyond it).
DEFAULT_MAX_BUCKETS = 16


#: Bytes per row in a benefit-column slot: float64 benefits +
#: int64 stamps + bool frontier membership.
_COLUMN_ROW_BYTES = 8 + 8 + 1


class SharedMemoryColumnAllocator:
    """Fixed-slot shared-memory backing for benefit columns.

    The serving pool's workers keep their :class:`AssignmentIndex`
    columns in one pre-created shared-memory segment instead of the
    process heap: the parent creates the segment *before* forking (so
    workers never create — and can therefore never leak — segments of
    their own), the worker carves per-column slots out of it, and the
    parent unlinks it at pool shutdown regardless of how the worker
    died. Columns that outgrow a slot, or arrive when every slot is
    taken, silently fall back to heap arrays — the allocator is an
    placement optimisation, never a capacity limit.

    Args:
        slot_rows: row capacity of one slot (columns up to this many
            arena rows fit; bigger columns go to the heap).
        num_slots: slots in the segment; sized to the index's
            ``max_buckets`` so steady-state serving never falls back.
        base_name: segment name; defaults to a unique token.
    """

    def __init__(
        self,
        slot_rows: int,
        num_slots: int,
        *,
        base_name: Optional[str] = None,
    ):
        if slot_rows < 1 or num_slots < 1:
            raise ValidationError(
                "slot_rows and num_slots must be positive"
            )
        self.slot_rows = slot_rows
        self.num_slots = num_slots
        self.name = base_name or (
            f"docscols-{os.getpid()}-{secrets.token_hex(4)}"
        )
        self._slot_bytes = slot_rows * _COLUMN_ROW_BYTES
        self._shm: Optional[shared_memory.SharedMemory] = (
            shared_memory.SharedMemory(
                name=self.name,
                create=True,
                size=self._slot_bytes * num_slots,
            )
        )
        self._free = list(range(num_slots - 1, -1, -1))
        self.heap_fallbacks = 0

    def allocate(
        self, capacity: int
    ) -> Optional[Tuple[int, np.ndarray, np.ndarray, np.ndarray]]:
        """Carve a zeroed (benefits, stamps, in_frontier) slot.

        Returns ``None`` — caller goes to the heap — when the request
        exceeds the slot size or no slot is free. Zeroing matters:
        a recycled slot's stale stamps must read as dirty.
        """
        if self._shm is None or capacity > self.slot_rows or not self._free:
            self.heap_fallbacks += 1
            return None
        slot = self._free.pop()
        base = slot * self._slot_bytes
        rows = self.slot_rows
        benefits = np.ndarray(
            (rows,), dtype=np.float64, buffer=self._shm.buf, offset=base
        )
        stamps = np.ndarray(
            (rows,),
            dtype=np.int64,
            buffer=self._shm.buf,
            offset=base + rows * 8,
        )
        in_frontier = np.ndarray(
            (rows,),
            dtype=np.bool_,
            buffer=self._shm.buf,
            offset=base + rows * 16,
        )
        benefits[:] = 0.0
        stamps[:] = 0
        in_frontier[:] = False
        return slot, benefits, stamps, in_frontier

    def release(self, slot: int) -> None:
        """Return a slot to the free list (evicted / outgrown column)."""
        if self._shm is not None:
            self._free.append(slot)

    def close(self, *, unlink: bool = True) -> None:
        """Drop the mapping; ``unlink`` removes the segment (owner)."""
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        self._free = []
        if unlink:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        try:
            shm.close()
        except BufferError:
            # A live column still views the mapping; the name is gone,
            # the memory goes when the column does.
            pass


class _BenefitColumn:
    """One cached full-pool benefit column for one exact quality.

    Attributes:
        quality: the exact (clipped) quality vector the column was
            computed with.
        quality_bytes: its byte image — the reuse guard.
        benefits: (capacity,) cached benefits, valid for rows whose
            ``stamps`` entry matches the arena's current epoch.
        stamps: (capacity,) arena write epochs at computation time.
        in_frontier: (capacity,) membership mask of the lazy top-k
            frontier.
        frontier_count: live frontier rows.
        tau: upper bound on every non-frontier row's benefit
            (``-inf`` when the frontier covers the whole pool).
    """

    __slots__ = (
        "quality",
        "quality_bytes",
        "benefits",
        "stamps",
        "in_frontier",
        "frontier_count",
        "tau",
        "_allocator",
        "_slot",
    )

    def __init__(
        self,
        quality: np.ndarray,
        capacity: int,
        allocator: Optional[SharedMemoryColumnAllocator] = None,
    ):
        self.quality = quality
        self.quality_bytes = quality.tobytes()
        self._allocator = allocator
        self._slot: Optional[int] = None
        block = allocator.allocate(capacity) if allocator else None
        if block is not None:
            self._slot, self.benefits, self.stamps, self.in_frontier = block
        else:
            self.benefits = np.zeros(capacity, dtype=float)
            self.stamps = np.zeros(capacity, dtype=np.int64)
            self.in_frontier = np.zeros(capacity, dtype=bool)
        self.frontier_count = 0
        self.tau = -np.inf

    def reserve(self, needed: int) -> None:
        """Grow the per-row arrays (zero-stamped, so new rows read as
        dirty — arena epochs start at 1). A column outgrowing its
        shared-memory slot migrates to the heap and frees the slot."""
        capacity = self.benefits.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("benefits", "stamps", "in_frontier"):
            old = getattr(self, name)
            grown = np.zeros(capacity, dtype=old.dtype)
            grown[: old.shape[0]] = old
            setattr(self, name, grown)
        self.release()

    def release(self) -> None:
        """Return the shared-memory slot, if any, to its allocator."""
        if self._slot is not None and self._allocator is not None:
            self._allocator.release(self._slot)
            self._slot = None


class AssignmentIndex:
    """Maintained benefit columns + lazy top-k over a state arena.

    Args:
        arena: the arena whose rows are indexed; the index reads the
            arena's buffers and write epochs but never writes them.
        bucket_granularity: quality quantisation step for bucket keys.
            Smaller keeps more distinct columns alive (more reuse,
            more memory); larger makes similar workers share one slot.
        frontier_size: F, the rows cached in each column's top-k
            frontier. Must comfortably exceed the typical HIT size k —
            a too-small frontier stays exact but falls back to
            full-column selection more often.
        max_buckets: live column cap; least-recently-used columns are
            evicted beyond it.
        allocator: optional :class:`SharedMemoryColumnAllocator`;
            columns draw their per-row arrays from its shared-memory
            slots (heap fallback when a column outgrows a slot or the
            slots run out). Used by the serving pool so worker columns
            live in parent-owned segments.
    """

    def __init__(
        self,
        arena: StateArena,
        *,
        bucket_granularity: float = DEFAULT_BUCKET_GRANULARITY,
        frontier_size: int = DEFAULT_FRONTIER_SIZE,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
        allocator: Optional[SharedMemoryColumnAllocator] = None,
    ):
        if bucket_granularity <= 0:
            raise ValidationError("bucket_granularity must be positive")
        if frontier_size < 1:
            raise ValidationError("frontier_size must be >= 1")
        if max_buckets < 1:
            raise ValidationError("max_buckets must be >= 1")
        self._arena = arena
        self._granularity = bucket_granularity
        self._frontier_size = frontier_size
        #: Fallbacks rebuild the frontier, so growth past this only
        #: happens between fallbacks; cap it to bound candidate scans.
        self._frontier_limit = 2 * frontier_size
        self._max_buckets = max_buckets
        self._allocator = allocator
        self._columns: "OrderedDict[bytes, _BenefitColumn]" = OrderedDict()
        #: Telemetry, surfaced via :meth:`stats`.
        self._cold_builds = 0
        self._warm_hits = 0
        self._rows_repaired = 0
        self._full_selections = 0
        self._frontier_selections = 0

    @property
    def arena(self) -> StateArena:
        """The indexed arena."""
        return self._arena

    def stats(self) -> Dict[str, int]:
        """Counters for observability and tests.

        ``cold_builds`` (full-column computations), ``warm_hits``
        (arrivals served from a cached column), ``rows_repaired``
        (dirty rows re-evaluated on warm hits), ``frontier_selections``
        vs ``full_selections`` (which top-k path picked), and
        ``buckets`` (live cached columns).
        """
        return {
            "cold_builds": self._cold_builds,
            "warm_hits": self._warm_hits,
            "rows_repaired": self._rows_repaired,
            "frontier_selections": self._frontier_selections,
            "full_selections": self._full_selections,
            "buckets": len(self._columns),
        }

    def close(self) -> None:
        """Drop every cached column, returning shared-memory slots.

        The allocator itself is owned by whoever constructed it (the
        serving pool) and is not closed here.
        """
        while self._columns:
            _, column = self._columns.popitem(last=False)
            column.release()

    # -- column maintenance ----------------------------------------------

    def _bucket_key(self, quality: np.ndarray) -> bytes:
        return np.floor(quality / self._granularity).astype(
            np.int64
        ).tobytes()

    def _build_frontier(self, column: _BenefitColumn, n: int) -> None:
        """(Re)compute the exact top-F frontier and its ``tau``."""
        column.in_frontier[:] = False
        if n <= self._frontier_size:
            column.in_frontier[:n] = True
            column.frontier_count = n
            column.tau = -np.inf
            return
        benefits = column.benefits[:n]
        top = np.argpartition(benefits, n - self._frontier_size)[
            n - self._frontier_size:
        ]
        column.in_frontier[top] = True
        column.frontier_count = top.shape[0]
        column.tau = float(benefits[top].min())

    def _column_for(self, quality: np.ndarray) -> _BenefitColumn:
        """Return a fully repaired column for this exact quality."""
        arena = self._arena
        n = len(arena)
        q = np.clip(
            np.asarray(quality, dtype=float), QUALITY_FLOOR, QUALITY_CEIL
        )
        key = self._bucket_key(q)
        column = self._columns.get(key)
        epochs = arena.row_epochs()
        if column is not None and (
            column.quality_bytes == q.tobytes()
        ):
            self._columns.move_to_end(key)
            column.reserve(n)
            dirty = np.flatnonzero(column.stamps[:n] != epochs)
            if dirty.size:
                self._repair(column, dirty, epochs, n)
            self._warm_hits += 1
            return column
        # Cold: compute the whole column for this exact quality (also
        # the path for a quantisation-mate with a different quality —
        # it takes over the bucket slot).
        if column is not None:
            column.release()
        column = _BenefitColumn(q, max(n, 1), self._allocator)
        column.benefits[:n] = arena_benefits(arena, q)
        column.stamps[:n] = epochs
        self._build_frontier(column, n)
        self._columns[key] = column
        self._columns.move_to_end(key)
        while len(self._columns) > self._max_buckets:
            _, evicted = self._columns.popitem(last=False)
            evicted.release()
        self._cold_builds += 1
        return column

    def _repair(
        self,
        column: _BenefitColumn,
        dirty: np.ndarray,
        epochs: np.ndarray,
        n: int,
    ) -> None:
        """Re-evaluate only the dirty rows and patch the frontier."""
        arena = self._arena
        if dirty.size >= n // 2:
            # Most of the pool moved (a full-TI resync): one full-pool
            # pass beats many gathers, and the frontier is stale anyway.
            column.benefits[:n] = arena_benefits(arena, column.quality)
            column.stamps[:n] = epochs
            self._build_frontier(column, n)
            self._rows_repaired += n
            return
        fresh = arena_benefits_rows(arena, column.quality, dirty)
        column.benefits[dirty] = fresh
        column.stamps[dirty] = epochs[dirty]
        self._rows_repaired += int(dirty.size)
        # Frontier upkeep: a repaired row whose benefit now exceeds tau
        # must join (the invariant covers only non-frontier rows <= tau;
        # rows already inside stay — values may drop, membership may
        # not, or the invariant would silently break for them).
        if column.tau == -np.inf and column.frontier_count >= n:
            return
        rising = dirty[fresh > column.tau]
        if rising.size:
            newcomers = rising[~column.in_frontier[rising]]
            if newcomers.size:
                column.in_frontier[newcomers] = True
                column.frontier_count += int(newcomers.size)

    # -- selection --------------------------------------------------------

    def select(
        self,
        quality: np.ndarray,
        take: int,
        excluded_rows: Set[int],
        eligible_rows: Optional[Set[int]],
        available: int,
    ) -> List[int]:
        """Top-``take`` arena rows by benefit, brute-force identical.

        Args:
            quality: the arriving worker's quality vector.
            take: rows to return (the caller already clamped it to the
                available candidate count).
            excluded_rows: arena rows the worker may not receive
                (already-answered tasks).
            eligible_rows: if given, restrict candidates to these rows.
            available: |candidates| as the caller computed it — used to
                prove the frontier saw every candidate.

        Returns:
            Global rows sorted by descending benefit (ties: ascending
            row), exactly as the brute-force path would order them.
        """
        if take <= 0:
            return []
        column = self._column_for(quality)
        n = len(self._arena)
        if column.frontier_count > self._frontier_limit:
            return self._select_full(
                column, take, excluded_rows, eligible_rows, n
            )
        cand = np.flatnonzero(column.in_frontier[:n])
        if excluded_rows or eligible_rows is not None:
            keep = [
                int(row)
                for row in cand
                if row not in excluded_rows
                and (eligible_rows is None or row in eligible_rows)
            ]
            cand = np.asarray(keep, dtype=np.int64)
        if cand.shape[0] < take:
            return self._select_full(
                column, take, excluded_rows, eligible_rows, n
            )
        values = column.benefits[cand]
        order = top_k_indices(values, take)
        kth = float(values[order[-1]])
        # Exact unless a non-frontier row could tie or beat the k-th
        # pick: impossible when the frontier covers every candidate, or
        # when the k-th benefit strictly beats the frontier bound.
        proven = (
            column.tau == -np.inf
            or cand.shape[0] == available
            or kth > column.tau
        )
        if not proven:
            return self._select_full(
                column, take, excluded_rows, eligible_rows, n
            )
        self._frontier_selections += 1
        return [int(cand[i]) for i in order]

    def _select_full(
        self,
        column: _BenefitColumn,
        take: int,
        excluded_rows: Set[int],
        eligible_rows: Optional[Set[int]],
        n: int,
    ) -> List[int]:
        """Full-column selection (no kernel work) + frontier rebuild."""
        self._full_selections += 1
        self._build_frontier(column, n)
        chosen = masked_top_k(
            column.benefits[:n].copy(), take, excluded_rows, eligible_rows
        )
        return [int(row) for row in chosen]
