"""Core DOCS algorithms: DVE (Algorithm 1), TI (Section 4), OTA (Section 5).

Public surface:

- :func:`repro.core.dve.domain_vector` / :class:`repro.core.dve.DomainVectorEstimator`
- :class:`repro.core.arena.StateArena` / :class:`repro.core.arena.AnswerLog`
- :class:`repro.core.truth_inference.TruthInference`
- :class:`repro.core.incremental.IncrementalTruthInference`
- :class:`repro.core.quality_store.WorkerQualityStore`
- :class:`repro.core.assignment.TaskAssigner`
- :class:`repro.core.serving.AssignmentIndex`
- :func:`repro.core.golden.select_golden_tasks`
"""

from repro.core.types import Answer, Task, TaskState
from repro.core.arena import AnswerLog, ArenaTaskState, StateArena
from repro.core.dve import (
    DomainVectorEstimator,
    domain_vector,
    domain_vector_enumeration,
    domain_vectors_batch,
)
from repro.core.truth_inference import (
    ArenaInferenceResult,
    TruthInference,
    TruthInferenceResult,
)
from repro.core.incremental import IncrementalTruthInference
from repro.core.quality_store import WorkerQualityStore
from repro.core.assignment import (
    TaskAssigner,
    arena_benefits,
    arena_benefits_rows,
    kernel_rows_evaluated,
    task_benefit,
)
from repro.core.serving import AssignmentIndex
from repro.core.golden import select_golden_tasks, select_golden_counts

__all__ = [
    "Answer",
    "AnswerLog",
    "ArenaInferenceResult",
    "ArenaTaskState",
    "StateArena",
    "Task",
    "TaskState",
    "arena_benefits",
    "arena_benefits_rows",
    "AssignmentIndex",
    "kernel_rows_evaluated",
    "DomainVectorEstimator",
    "domain_vector",
    "domain_vector_enumeration",
    "domain_vectors_batch",
    "TruthInference",
    "TruthInferenceResult",
    "IncrementalTruthInference",
    "WorkerQualityStore",
    "TaskAssigner",
    "task_benefit",
    "select_golden_tasks",
    "select_golden_counts",
]
