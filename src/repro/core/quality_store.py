"""Worker-quality maintenance across requesters (Section 4.2, Theorem 1).

DOCS persists, per worker and domain, two statistics:

- ``q^w_k`` — the quality estimate, and
- ``u^w_k`` — its *weight*, the expected number of answered tasks related
  to domain k (``sum_i r_ik``).

Theorem 1: merging an old estimate ``(q-hat, u-hat)`` with a batch of new
tasks ``(q, u)`` as a weight-proportional average,

    q <- (q-hat * u-hat + q * u) / (u-hat + u),    u <- u-hat + u,

yields exactly the quality that full recomputation over all tasks would
give, because Eq. 5 is itself a weighted mean with weights ``r_ik``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.errors import UnknownWorkerError, ValidationError


def _fold_batch_delta(
    existing: Optional["WorkerStats"],
    delta_mass: np.ndarray,
    delta_weight: np.ndarray,
    default_quality: float,
) -> "WorkerStats":
    """The mass-form Theorem-1 fold shared by both store backends.

    ``quality = (q·u + Δmass) / (u + Δu)`` per domain, defaulting where
    the resulting weight is zero. The result is clamped into [0, 1] as
    a final guard: with baselines maintained correctly the fold never
    leaves the range (every exported prefix is a convex mix of in-range
    campaign estimates), so the clamp only bites on malformed deltas —
    e.g. a revision delta sent against a store that never received the
    worker's base mass.
    """
    if existing is None:
        mass = delta_mass
        weight = delta_weight.copy()
    else:
        mass = existing.quality * existing.weight + delta_mass
        weight = existing.weight + delta_weight
    quality = np.full(weight.shape, default_quality)
    positive = weight > 0
    quality[positive] = mass[positive] / weight[positive]
    np.clip(quality, 0.0, 1.0, out=quality)
    return WorkerStats(quality, weight)


def _blend(
    quality: np.ndarray,
    weight: np.ndarray,
    pseudo_weight: float,
    default_quality: float,
) -> np.ndarray:
    """Weight-shrunk quality ``(q u + default p) / (u + p)``.

    Zero-total domains (``u_k + p == 0``) fall back to the default
    quality instead of dividing 0/0 into NaN — shared by the in-memory
    and SQLite stores.
    """
    denominator = weight + pseudo_weight
    blended = np.full(quality.shape, default_quality)
    np.divide(
        quality * weight + default_quality * pseudo_weight,
        denominator,
        out=blended,
        where=denominator > 0,
    )
    return blended


@dataclass
class WorkerStats:
    """Persisted per-worker statistics.

    Attributes:
        quality: length-m quality vector ``q^w``.
        weight: length-m weight vector ``u^w``.
    """

    quality: np.ndarray
    weight: np.ndarray

    def copy(self) -> "WorkerStats":
        return WorkerStats(self.quality.copy(), self.weight.copy())


class WorkerQualityStore:
    """The database-backed worker model (here: in-memory).

    Args:
        num_domains: m, the taxonomy size.
        default_quality: quality reported for domains with zero weight
            (no evidence yet).
    """

    def __init__(self, num_domains: int, default_quality: float = 0.7):
        if num_domains <= 0:
            raise ValidationError("num_domains must be positive")
        if not 0.0 < default_quality < 1.0:
            raise ValidationError("default_quality must be in (0, 1)")
        self._m = num_domains
        self._default_quality = default_quality
        self._stats: Dict[str, WorkerStats] = {}

    @property
    def num_domains(self) -> int:
        """Taxonomy size m."""
        return self._m

    def known_workers(self) -> Iterable[str]:
        """Ids of workers with stored statistics."""
        return self._stats.keys()

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._stats

    def get(self, worker_id: str) -> WorkerStats:
        """Stored stats for a worker.

        Raises:
            UnknownWorkerError: if the worker has no record.
        """
        stats = self._stats.get(worker_id)
        if stats is None:
            raise UnknownWorkerError(worker_id)
        return stats

    def quality_or_default(self, worker_id: str) -> np.ndarray:
        """The worker's quality vector, defaulting per-domain when the
        stored weight is zero and globally when the worker is unknown."""
        stats = self._stats.get(worker_id)
        if stats is None:
            return np.full(self._m, self._default_quality)
        quality = stats.quality.copy()
        quality[stats.weight <= 0] = self._default_quality
        return quality

    def blended_quality(
        self, worker_id: str, pseudo_weight: float = 1.0
    ) -> np.ndarray:
        """Weight-shrunk quality: ``(q u + default p) / (u + p)``.

        Domains where the worker has answered almost nothing carry tiny
        weights ``u_k``; their raw quality values are dominated by one
        or two noisy incremental updates. Blending toward the default in
        proportion to the missing evidence keeps low-evidence domains
        near the prior while leaving well-observed domains untouched —
        important for OTA, which reads qualities across *all* domains.

        Domains with no evidence at all (``u_k + p == 0``, which happens
        with ``pseudo_weight=0`` on a never-answered domain) report the
        default quality rather than the 0/0 the blend formula would
        produce.
        """
        if pseudo_weight < 0:
            raise ValidationError("pseudo_weight must be non-negative")
        stats = self._stats.get(worker_id)
        if stats is None:
            return np.full(self._m, self._default_quality)
        return _blend(
            stats.quality, stats.weight, pseudo_weight, self._default_quality
        )

    def set(
        self, worker_id: str, quality: np.ndarray, weight: np.ndarray
    ) -> None:
        """Overwrite a worker's stats (used for golden-task bootstrap)."""
        quality = np.asarray(quality, dtype=float)
        weight = np.asarray(weight, dtype=float)
        if quality.shape != (self._m,) or weight.shape != (self._m,):
            raise ValidationError(
                f"quality/weight must have shape ({self._m},)"
            )
        if np.any(weight < 0):
            raise ValidationError("weights must be non-negative")
        self._stats[worker_id] = WorkerStats(quality.copy(), weight.copy())

    def merge(
        self, worker_id: str, quality: np.ndarray, weight: np.ndarray
    ) -> WorkerStats:
        """Theorem 1 update: merge a new batch estimate into the store.

        Args:
            worker_id: the worker.
            quality: batch quality ``q`` over the new tasks.
            weight: batch weights ``u = sum_i r_ik`` over the new tasks.

        Returns:
            The merged stats now stored.
        """
        quality = np.asarray(quality, dtype=float)
        weight = np.asarray(weight, dtype=float)
        if quality.shape != (self._m,) or weight.shape != (self._m,):
            raise ValidationError(
                f"quality/weight must have shape ({self._m},)"
            )
        if np.any(weight < 0):
            raise ValidationError("weights must be non-negative")
        existing = self._stats.get(worker_id)
        if existing is None:
            merged = WorkerStats(quality.copy(), weight.copy())
        else:
            total = existing.weight + weight
            merged_quality = existing.quality.copy()
            mask = total > 0
            merged_quality[mask] = (
                existing.quality[mask] * existing.weight[mask]
                + quality[mask] * weight[mask]
            ) / total[mask]
            merged = WorkerStats(merged_quality, total)
        self._stats[worker_id] = merged
        return merged

    def apply_batch_delta(
        self, worker_id: str, delta_mass: np.ndarray,
        delta_weight: np.ndarray,
    ) -> WorkerStats:
        """Theorem 1 update in *mass form*: fold ``Δ(q·u)`` and ``Δu``.

        Equivalent to :meth:`merge` for a genuinely new batch
        (``delta_mass = q·u``), but also expresses *revisions*: a full
        iterative TI re-run re-estimates a worker's quality on old
        evidence, so between two re-runs a domain's mass ``q_k u_k``
        can change while its weight ``u_k`` does not — a delta no
        non-negative-weight batch can carry. Folding mass and weight
        separately keeps repeated exports exactly equal to one export
        of the final campaign estimate (the weighted mean telescopes).

        Args:
            worker_id: the worker.
            delta_mass: per-domain change of ``q_k u_k``.
            delta_weight: per-domain change of ``u_k`` (non-negative).

        Returns:
            The updated stats now stored.
        """
        delta_mass = np.asarray(delta_mass, dtype=float)
        delta_weight = np.asarray(delta_weight, dtype=float)
        if delta_mass.shape != (self._m,) or (
            delta_weight.shape != (self._m,)
        ):
            raise ValidationError(
                f"delta_mass/delta_weight must have shape ({self._m},)"
            )
        if np.any(delta_weight < 0):
            raise ValidationError("delta weights must be non-negative")
        merged = _fold_batch_delta(
            self._stats.get(worker_id),
            delta_mass,
            delta_weight,
            self._default_quality,
        )
        self._stats[worker_id] = merged
        return merged

    def initialize_from_golden(
        self,
        worker_id: str,
        golden_answers: Mapping[int, int],
        golden_truths: Mapping[int, int],
        domain_vectors: Mapping[int, np.ndarray],
        shrinkage: float = 1.0,
    ) -> WorkerStats:
        """Bootstrap a new worker's quality from golden-task answers.

        For each golden task the worker answered, correctness is known
        exactly; applying Eq. 5 with ``s_{i,v} = 1{v == truth}`` gives

            q_k = sum_i r_ik * 1{correct_i} / sum_i r_ik,   u_k = sum r_ik.

        A pseudo-observation of weight ``shrinkage`` at the default
        quality regularises the estimate: a 5-for-5 golden streak should
        yield a high quality, not a degenerate 1.0 that would make every
        later answer of that worker irrefutable in Eq. 4's likelihood.

        Args:
            worker_id: the worker.
            golden_answers: task id -> worker's choice.
            golden_truths: task id -> ground-truth choice.
            domain_vectors: task id -> domain vector.
            shrinkage: pseudo-count pulling toward the default quality.

        Returns:
            The stored stats.
        """
        if shrinkage < 0:
            raise ValidationError("shrinkage must be non-negative")
        numerator = np.zeros(self._m)
        denominator = np.zeros(self._m)
        for task_id, choice in golden_answers.items():
            if task_id not in golden_truths:
                raise ValidationError(
                    f"golden task {task_id} has no recorded truth"
                )
            r = np.asarray(domain_vectors[task_id], dtype=float)
            correct = 1.0 if choice == golden_truths[task_id] else 0.0
            numerator += r * correct
            denominator += r
        quality = np.full(self._m, self._default_quality)
        mask = denominator > 0
        quality[mask] = (
            numerator[mask] + shrinkage * self._default_quality
        ) / (denominator[mask] + shrinkage)
        stats = WorkerStats(quality, denominator)
        self._stats[worker_id] = stats
        return stats

    def snapshot(self) -> Dict[str, WorkerStats]:
        """A deep copy of all stored stats (for persistence/inspection)."""
        return {wid: stats.copy() for wid, stats in self._stats.items()}
