"""Structure-of-arrays engine arena: the system's hot state.

The serving path of DOCS touches three kinds of state on every request:
domain vectors ``r`` (Definition 2), conditional truth matrices ``M``
(Eq. 3) with their running log numerators ("M-hat", Section 4.2), and
probabilistic truths ``s = r @ M`` (Eq. 2). Holding that state as one
Python object per task makes every worker arrival O(n) in *object*
traffic — attribute loads, list builds, ``np.stack`` — before a single
benefit is computed, which swamps the paper's linear-time OTA bound
(Theorem 4) long before the arithmetic does.

:class:`StateArena` instead owns the state as contiguous numpy buffers,
grouped by choice count ``l`` so each group is a dense rectangular block:

- ``R``    — (n_g, m)      domain vectors,
- ``M``    — (n_g, m, l)   conditional truth matrices,
- ``S``    — (n_g, l)      probabilistic truths,
- ``logN`` — (n_g, m, l)   Eq. 3 log numerators,
- ``H``    — (n_g,)        cached prior entropies ``H(s)`` (Eq. 8's
  first term, revalidated lazily via the dirty-row protocol).

Alongside the per-group blocks the arena keeps registration-ordered
global buffers (``R`` and choice counts over all tasks) so full truth
inference can gather its working set with fancy indexing instead of
re-stacking Python lists.

**Dirty-row protocol.** Writers (the incremental updater, full-TI
resyncs) mutate rows in place and mark them dirty; readers that depend
on derived values (the cached entropies) call
:meth:`StateArena.refresh_entropies` first, which recomputes exactly the
dirty rows in one vectorised pass. See ``docs/performance.md``.

**Write epochs.** The dirty flags are consumed by the first entropy
refresh, so consumers that maintain *their own* derived state (the
serving plane's :class:`repro.core.serving.AssignmentIndex` caches
per-worker benefit columns) instead watch the arena's per-row write
epochs: every in-place row write — an incremental-TI submit, a full-TI
resync, a growth block, a snapshot overlay — advances a monotone write
clock and stamps the touched rows with it
(:meth:`StateArena.note_write` / :meth:`StateArena.note_writes`).
A consumer that remembers the epoch at which it last derived a row's
value can find exactly the rows that changed since with one vectorised
comparison against :meth:`StateArena.row_epochs`.

:class:`AnswerLog` is the arena's append-only companion: the growing
``(task_row, worker_row, choice)`` arrays that let the every-z full TI
re-run (Section 4.2) start from ready-made index arrays instead of
re-indexing every answer and re-stacking every domain vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.types import Answer, Task
from repro.errors import UnknownTaskError, ValidationError
from repro.utils.math import safe_log

#: Initial per-group row capacity; buffers double when full, so
#: registration is amortised O(1) regardless of task-set size.
INITIAL_CAPACITY = 64


@dataclass
class GroupState:
    """One choice group's live rows, detached from the arena buffers.

    The unit of arena snapshotting (``DocsSystem.snapshot``): all live
    rows ``[:count]`` of every buffer, deep-copied so the snapshot stays
    stable while the campaign keeps mutating the arena. ``dirty`` rides
    along so a restored arena reproduces the entropy cache exactly —
    including which rows were stale — keeping resumed assignment
    bit-identical.

    Attributes:
        ell: the group's choice count.
        count: number of live rows captured.
        R: (count, m) domain vectors.
        M: (count, m, ell) conditional truth matrices.
        S: (count, ell) probabilistic truths.
        logN: (count, m, ell) Eq. 3 log numerators.
        H: (count,) cached entropies.
        dirty: (count,) stale-entropy flags.
    """

    ell: int
    count: int
    R: np.ndarray
    M: np.ndarray
    S: np.ndarray
    logN: np.ndarray
    H: np.ndarray
    dirty: np.ndarray


@dataclass
class AnswerLogState:
    """The :class:`AnswerLog` index columns, detached for snapshotting.

    The index-carrying snapshot payload: with these columns persisted,
    resume installs the answer log (and derives every other in-memory
    answer index lazily from it) instead of re-reading the archived
    journal prefix — the O(snapshot + tail) resume path.

    Attributes:
        task_rows: (n,) per-answer arena global rows, arrival order.
        worker_rows: (n,) per-answer worker rows, aligned.
        choices: (n,) 0-based answered choices, aligned.
        worker_ids: worker ids by row (first-submission order).
    """

    task_rows: np.ndarray
    worker_rows: np.ndarray
    choices: np.ndarray
    worker_ids: List[str]


class ChoiceGroup:
    """The dense buffers for all tasks sharing one choice count ``l``.

    Rows ``[:count]`` are live; the remainder is growth headroom. All
    arrays are row-major, so one task's slice of any buffer is a
    contiguous block.

    Attributes:
        ell: the group's choice count.
        count: number of live rows.
        R: (capacity, m) domain vectors.
        M: (capacity, m, ell) conditional truth matrices.
        S: (capacity, ell) probabilistic truths.
        logN: (capacity, m, ell) Eq. 3 log numerators.
        H: (capacity,) cached entropies of S rows.
        dirty: (capacity,) rows whose H is stale.
        global_rows: (capacity,) each row's arena-wide registration index.
        task_ids: task id per row (list, row-indexed).
    """

    def __init__(self, num_domains: int, ell: int):
        self.ell = ell
        self.count = 0
        self._m = num_domains
        capacity = INITIAL_CAPACITY
        self.R = np.zeros((capacity, num_domains))
        self.M = np.zeros((capacity, num_domains, ell))
        self.S = np.zeros((capacity, ell))
        self.logN = np.zeros((capacity, num_domains, ell))
        self.H = np.zeros(capacity)
        self.dirty = np.zeros(capacity, dtype=bool)
        self.global_rows = np.zeros(capacity, dtype=np.int64)
        self.task_ids: List[int] = []
        self._scratch: Optional[Tuple[np.ndarray, ...]] = None

    @property
    def capacity(self) -> int:
        return self.H.shape[0]

    def _grow(self) -> None:
        self._reserve(self.capacity + 1)

    def _reserve(self, needed: int) -> None:
        """Ensure capacity for ``needed`` rows (geometric doubling)."""
        if needed <= self.capacity:
            return
        new = self.capacity
        while new < needed:
            new *= 2
        for name in ("R", "M", "S", "logN", "H", "dirty", "global_rows"):
            old = getattr(self, name)
            grown = np.zeros((new,) + old.shape[1:], dtype=old.dtype)
            grown[: self.count] = old[: self.count]
            setattr(self, name, grown)

    def append(
        self,
        task_id: int,
        global_row: int,
        r: np.ndarray,
        M: Optional[np.ndarray],
    ) -> int:
        """Add one task's row; returns the row index."""
        if self.count == self.capacity:
            self._grow()
        row = self.count
        self.count += 1
        self.R[row] = r
        if M is None:
            # Fresh state: uniform M rows, zero log numerators
            # (matching :meth:`repro.core.types.TaskState.fresh`).
            self.M[row] = 1.0 / self.ell
            self.logN[row] = 0.0
        else:
            M = np.asarray(M, dtype=float)
            if M.shape != (self._m, self.ell):
                raise ValidationError(
                    f"M must have shape ({self._m}, {self.ell}), "
                    f"got {M.shape}"
                )
            self.M[row] = M
            self.logN[row] = np.log(np.clip(M, 1e-300, None))
        self.S[row] = self.R[row] @ self.M[row]
        self.dirty[row] = True
        self.global_rows[row] = global_row
        self.task_ids.append(task_id)
        return row

    def extend_fresh(
        self,
        task_ids: Sequence[int],
        global_rows: np.ndarray,
        R_block: np.ndarray,
    ) -> np.ndarray:
        """Append many fresh-state rows in one block write.

        The bulk counterpart of :meth:`append` with ``M=None``: uniform
        conditional truth matrices, zero log numerators, ``S = R @ M``.

        Returns:
            The new row indices, ``count`` long before the call.
        """
        n_new = len(task_ids)
        self._reserve(self.count + n_new)
        rows = np.arange(self.count, self.count + n_new)
        self.count += n_new
        self.R[rows] = R_block
        self.M[rows] = 1.0 / self.ell
        self.logN[rows] = 0.0
        self.S[rows] = R_block @ np.full((self._m, self.ell), 1.0 / self.ell)
        self.dirty[rows] = True
        self.global_rows[rows] = global_rows
        self.task_ids.extend(task_ids)
        return rows

    def refresh_entropies(self) -> None:
        """Recompute ``H`` for dirty rows only (vectorised)."""
        stale = np.flatnonzero(self.dirty[: self.count])
        if stale.size == 0:
            return
        S = self.S[stale]
        self.H[stale] = -np.sum(S * safe_log(S), axis=1)
        self.dirty[stale] = False

    def benefit_scratch(self) -> Tuple[np.ndarray, ...]:
        """Three (count, m, l) work buffers, reused across arrivals
        while the live row count is stable."""
        if (
            self._scratch is None
            or self._scratch[0].shape[0] != self.count
        ):
            shape = (self.count, self._m, self.ell)
            self._scratch = tuple(np.empty(shape) for _ in range(3))
        return self._scratch


class ArenaTaskState:
    """A lightweight row view over the arena's buffers.

    Duck-type compatible with :class:`repro.core.types.TaskState`:
    exposes ``task``, ``r``, ``M``, ``s``, ``log_numerators``,
    ``num_choices`` and ``inferred_truth``. Attribute reads resolve into
    the arena's current buffers on every access, so views stay valid
    across buffer growth; writing *through* a returned array (e.g.
    ``state.M[:] = ...``) mutates the arena — callers doing so must mark
    the row dirty via :meth:`StateArena.mark_dirty`.
    """

    __slots__ = ("task", "_group", "_row")

    def __init__(self, task: Task, group: ChoiceGroup, row: int):
        self.task = task
        self._group = group
        self._row = row

    @property
    def r(self) -> np.ndarray:
        return self._group.R[self._row]

    @property
    def M(self) -> np.ndarray:
        return self._group.M[self._row]

    @property
    def s(self) -> np.ndarray:
        return self._group.S[self._row]

    @property
    def log_numerators(self) -> np.ndarray:
        return self._group.logN[self._row]

    @property
    def num_choices(self) -> int:
        return self._group.ell

    def inferred_truth(self) -> int:
        """Current MAP truth ``argmax_j s_j`` (1-based)."""
        return int(np.argmax(self.s)) + 1


class _StatesView(Mapping):
    """Read-only task id -> row view mapping (legacy-path adapter)."""

    def __init__(self, arena: "StateArena"):
        self._arena = arena

    def __getitem__(self, task_id: int) -> ArenaTaskState:
        return self._arena.view(task_id)

    def __iter__(self) -> Iterator[int]:
        return iter(self._arena.task_ids())

    def __len__(self) -> int:
        return len(self._arena)


class StateArena:
    """Owner of the engine's hot task state (see module docstring).

    Args:
        num_domains: the taxonomy size m.
    """

    def __init__(self, num_domains: int):
        if num_domains <= 0:
            raise ValidationError("num_domains must be positive")
        self._m = num_domains
        self._groups: Dict[int, ChoiceGroup] = {}
        #: task id -> (group, row).
        self._loc: Dict[int, Tuple[ChoiceGroup, int]] = {}
        self._views: Dict[int, ArenaTaskState] = {}
        self._order: List[int] = []
        #: Registration-ordered global buffers (grown geometrically).
        self._R_all = np.zeros((INITIAL_CAPACITY, num_domains))
        self._ells = np.zeros(INITIAL_CAPACITY, dtype=np.int64)
        self._group_rows = np.zeros(INITIAL_CAPACITY, dtype=np.int64)
        self._count = 0
        #: Per-row write epochs (global-row indexed) + the write clock.
        self._epochs = np.zeros(INITIAL_CAPACITY, dtype=np.int64)
        self._clock = 0

    def _make_group(self, ell: int) -> ChoiceGroup:
        """Build the buffers for a new choice group.

        The allocation hook subclasses override to place group buffers
        somewhere other than the process heap (the shared-memory arena
        maps them into OS shared memory so sibling processes can serve
        from them).
        """
        return ChoiceGroup(self._m, ell)

    # -- registration ----------------------------------------------------

    def add(
        self,
        task: Task,
        r: Optional[np.ndarray] = None,
        M: Optional[np.ndarray] = None,
    ) -> ArenaTaskState:
        """Register a task and return its row view.

        Args:
            task: the task; ``task.num_choices`` selects the group.
            r: domain vector; defaults to ``task.domain_vector``.
            M: optional initial conditional truth matrix (m, l); fresh
                uniform state when omitted.

        Raises:
            ValidationError: on duplicate ids or missing domain vector.
        """
        if task.task_id in self._loc:
            raise ValidationError(
                f"task {task.task_id} already registered in arena"
            )
        if r is None:
            r = task.domain_vector
        if r is None:
            raise ValidationError(
                f"task {task.task_id} has no domain vector; run DVE first"
            )
        r = np.asarray(r, dtype=float)
        if r.shape != (self._m,):
            raise ValidationError(
                f"domain vector must have shape ({self._m},), got {r.shape}"
            )
        group = self._groups.get(task.num_choices)
        if group is None:
            group = self._make_group(task.num_choices)
            self._groups[task.num_choices] = group

        global_row = self._count
        self._reserve_global(global_row + 1)
        self._R_all[global_row] = r
        self._ells[global_row] = task.num_choices
        self._clock += 1
        self._epochs[global_row] = self._clock
        self._count += 1
        self._order.append(task.task_id)

        row = group.append(task.task_id, global_row, r, M)
        self._group_rows[global_row] = row
        self._loc[task.task_id] = (group, row)
        view = ArenaTaskState(task, group, row)
        self._views[task.task_id] = view
        return view

    def _reserve_global(self, needed: int) -> None:
        """Ensure global-buffer capacity (geometric doubling)."""
        capacity = self._R_all.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown_R = np.zeros((capacity, self._m))
        grown_R[: self._count] = self._R_all[: self._count]
        self._R_all = grown_R
        for name in ("_ells", "_group_rows", "_epochs"):
            old = getattr(self, name)
            grown = np.zeros(capacity, dtype=np.int64)
            grown[: self._count] = old[: self._count]
            setattr(self, name, grown)

    def grow(
        self,
        tasks: Sequence[Task],
        R: Optional[np.ndarray] = None,
    ) -> List[ArenaTaskState]:
        """Register a batch of fresh tasks with block buffer writes.

        The live-growth entry point (``DocsSystem.add_tasks`` /
        the ingest pipeline's stage 4): per choice-count group one
        :meth:`ChoiceGroup.extend_fresh` block write, one global-buffer
        reservation for the whole batch — no per-task appends. Existing
        rows, views, and the answer log are untouched, so serving
        (assignment masks, incremental TI, full-TI reruns) continues
        seamlessly over the enlarged pool.

        Args:
            tasks: the new tasks; all ids must be unused.
            R: optional (len(tasks), m) domain-vector matrix; defaults
                to each task's ``domain_vector``.

        Returns:
            The new row views, aligned with ``tasks``.

        Raises:
            ValidationError: on duplicate ids (within the batch or
                against registered tasks), missing domain vectors, or a
                shape mismatch.
        """
        if not tasks:
            return []
        seen: set = set()
        for task in tasks:
            if task.task_id in self._loc:
                raise ValidationError(
                    f"task {task.task_id} already registered in arena"
                )
            if task.task_id in seen:
                raise ValidationError(
                    f"duplicate task id {task.task_id} in growth batch"
                )
            seen.add(task.task_id)
        if R is None:
            vectors = []
            for task in tasks:
                if task.domain_vector is None:
                    raise ValidationError(
                        f"task {task.task_id} has no domain vector; "
                        "run DVE first"
                    )
                vectors.append(task.domain_vector)
            R = np.stack(vectors).astype(float, copy=False)
        else:
            R = np.asarray(R, dtype=float)
        if R.shape != (len(tasks), self._m):
            raise ValidationError(
                f"domain matrix must have shape ({len(tasks)}, {self._m}), "
                f"got {R.shape}"
            )

        base = self._count
        self._reserve_global(base + len(tasks))
        self._R_all[base:base + len(tasks)] = R
        self._clock += 1
        self._epochs[base:base + len(tasks)] = self._clock
        self._count += len(tasks)

        by_ell: Dict[int, List[int]] = {}
        for idx, task in enumerate(tasks):
            global_row = base + idx
            self._ells[global_row] = task.num_choices
            self._order.append(task.task_id)
            by_ell.setdefault(task.num_choices, []).append(idx)

        views: List[Optional[ArenaTaskState]] = [None] * len(tasks)
        for ell, indices in by_ell.items():
            group = self._groups.get(ell)
            if group is None:
                group = self._make_group(ell)
                self._groups[ell] = group
            global_rows = base + np.asarray(indices, dtype=np.int64)
            rows = group.extend_fresh(
                [tasks[i].task_id for i in indices], global_rows, R[indices]
            )
            self._group_rows[global_rows] = rows
            for i, row in zip(indices, rows):
                task = tasks[i]
                self._loc[task.task_id] = (group, int(row))
                view = ArenaTaskState(task, group, int(row))
                self._views[task.task_id] = view
                views[i] = view
        return views  # type: ignore[return-value]

    # -- lookups ---------------------------------------------------------

    @property
    def num_domains(self) -> int:
        """Taxonomy size m."""
        return self._m

    def __len__(self) -> int:
        return self._count

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._loc

    def view(self, task_id: int) -> ArenaTaskState:
        """The (cached) row view of a task.

        Raises:
            UnknownTaskError: if the task was never registered.
        """
        view = self._views.get(task_id)
        if view is None:
            raise UnknownTaskError(task_id)
        return view

    def location(self, task_id: int) -> Tuple[ChoiceGroup, int]:
        """(group, row) of a task — the writer-side address."""
        loc = self._loc.get(task_id)
        if loc is None:
            raise UnknownTaskError(task_id)
        return loc

    def task_ids(self) -> List[int]:
        """Task ids in registration order."""
        return list(self._order)

    def task_id_at(self, global_row: int) -> int:
        """The task registered at a global row."""
        return self._order[global_row]

    def global_row(self, task_id: int) -> int:
        """A task's registration index (row into the global buffers)."""
        group, row = self.location(task_id)
        return int(group.global_rows[row])

    def states(self) -> Mapping[int, ArenaTaskState]:
        """Task id -> row view mapping (read-only, zero-copy)."""
        return _StatesView(self)

    def iter_groups(self) -> Iterable[ChoiceGroup]:
        """The choice-count groups, in first-registration order."""
        return self._groups.values()

    def domain_matrix(self) -> np.ndarray:
        """All domain vectors, registration-ordered: shape (n, m).

        A zero-copy view into the global buffer; treat as read-only.
        """
        return self._R_all[: self._count]

    def choice_counts(self) -> np.ndarray:
        """Per-task choice counts, registration-ordered (read-only view)."""
        return self._ells[: self._count]

    def group_rows_at(self, global_rows: np.ndarray) -> np.ndarray:
        """In-group row indices for an array of global rows."""
        return self._group_rows[global_rows]

    # -- dirty-row protocol ----------------------------------------------

    def mark_dirty(self, task_id: int) -> None:
        """Flag a row's cached entropy as stale after an in-place write."""
        group, row = self.location(task_id)
        self.note_write(group, row)

    def mark_all_dirty(self) -> None:
        """Flag every row (bulk resync from full inference)."""
        self._clock += 1
        self._epochs[: self._count] = self._clock
        for group in self._groups.values():
            group.dirty[: group.count] = True

    def note_write(self, group: ChoiceGroup, row: int) -> None:
        """Record one in-place row write at a known (group, row) address.

        The writer-side hot-path hook: flags the row's cached entropy
        stale and stamps its write epoch. Writers that already hold the
        row address (the incremental updater) call this instead of
        :meth:`mark_dirty` to skip the id lookup.
        """
        group.dirty[row] = True
        self._clock += 1
        self._epochs[group.global_rows[row]] = self._clock

    def note_writes(self, global_rows: np.ndarray) -> None:
        """Stamp a block of rows with one new write epoch.

        The bulk counterpart of :meth:`note_write` for block writers
        (full-TI resyncs); entropy dirty flags are the caller's business
        — group-level writers already set them per block.
        """
        self._clock += 1
        self._epochs[global_rows] = self._clock

    def row_epochs(self) -> np.ndarray:
        """Per-row write epochs, registration-ordered (read-only view).

        A row's epoch changes (strictly increases) whenever its state
        buffers are written in place or registered; consumers caching
        row-derived values compare remembered stamps against this view
        to find exactly the rows that changed.
        """
        return self._epochs[: self._count]

    @property
    def write_clock(self) -> int:
        """The arena-wide monotone write clock (0 before any write)."""
        return self._clock

    def refresh_entropies(self) -> None:
        """Bring every group's cached ``H(s)`` up to date."""
        for group in self._groups.values():
            group.refresh_entropies()

    # -- hot-state snapshots ---------------------------------------------

    def export_hot_state(self) -> Dict[int, GroupState]:
        """Deep-copy every group's live rows (the snapshot payload).

        Returns:
            choice count -> :class:`GroupState` for every non-empty
            group.
        """
        states: Dict[int, GroupState] = {}
        for ell, group in self._groups.items():
            count = group.count
            if count == 0:
                continue
            states[ell] = GroupState(
                ell=ell,
                count=count,
                R=group.R[:count].copy(),
                M=group.M[:count].copy(),
                S=group.S[:count].copy(),
                logN=group.logN[:count].copy(),
                H=group.H[:count].copy(),
                dirty=group.dirty[:count].copy(),
            )
        return states

    def check_hot_state(
        self, states: Mapping[int, GroupState]
    ) -> Optional[str]:
        """Can :meth:`load_hot_state` apply this snapshot to this arena?

        The snapshot's rows must be a prefix of each group's current
        rows (same registration order — verified via the ``R`` buffer,
        which registration rebuilds deterministically from the task
        catalogue). Returns a human-readable problem, or ``None`` when
        the overlay is safe.
        """
        for ell, state in states.items():
            group = self._groups.get(ell)
            if group is None:
                return f"snapshot has a choice group ell={ell} this " \
                    "arena does not"
            if state.count > group.count:
                return (
                    f"snapshot group ell={ell} holds {state.count} rows "
                    f"but only {group.count} are registered"
                )
            if state.R.shape != (state.count, self._m):
                return (
                    f"snapshot group ell={ell} R has shape "
                    f"{state.R.shape}, expected ({state.count}, {self._m})"
                )
            expected = (state.count, self._m, ell)
            if state.M.shape != expected or state.logN.shape != expected:
                return f"snapshot group ell={ell} M/logN shape mismatch"
            if state.S.shape != (state.count, ell) or (
                state.H.shape != (state.count,)
                or state.dirty.shape != (state.count,)
            ):
                return f"snapshot group ell={ell} S/H/dirty shape mismatch"
            if not np.array_equal(group.R[: state.count], state.R):
                return (
                    f"snapshot group ell={ell} domain vectors disagree "
                    "with the registered tasks (different registration "
                    "order or a different campaign)"
                )
        return None

    def load_hot_state(self, states: Mapping[int, GroupState]) -> None:
        """Overlay snapshot rows onto the registered buffers.

        Rows beyond each snapshot's ``count`` (tasks ingested after the
        snapshot was taken) keep their fresh uniform state. The caller
        must run :meth:`check_hot_state` first — the expensive R-prefix
        comparison is not repeated here (at resume scale it is the
        costliest validation pass, and ``DocsSystem`` already ran it).
        """
        for ell, state in states.items():
            group = self._groups[ell]
            count = state.count
            group.M[:count] = state.M
            group.S[:count] = state.S
            group.logN[:count] = state.logN
            group.H[:count] = state.H
            group.dirty[:count] = state.dirty
            self.note_writes(group.global_rows[:count])


class AnswerLog:
    """Append-only answer arrays over an arena (Section 4.2's rerun feed).

    Maintains, in arrival order, the growing index arrays

    - ``task_rows``   — each answer's arena global row,
    - ``worker_rows`` — each answer's worker row (first-seen order),
    - ``choices``     — 0-based answered choices,

    plus the first-answer task order. The every-z full TI re-run then
    gathers its compact working set (only answered tasks) with numpy
    fancy indexing — no per-answer Python loops, no domain-vector
    re-stacking. Row orders deliberately match what the legacy path
    derives from arrival-ordered answer lists, so both paths feed the
    iterative solver bitwise-identical inputs.
    """

    def __init__(self, arena: StateArena):
        self._arena = arena
        capacity = 1024
        self._task_rows = np.zeros(capacity, dtype=np.int64)
        self._worker_rows = np.zeros(capacity, dtype=np.int64)
        self._choices = np.zeros(capacity, dtype=np.int64)
        self._count = 0
        self._worker_row: Dict[str, int] = {}
        self._worker_ids: List[str] = []
        #: Global rows of answered tasks, in first-answer order (the
        #: compact row order the legacy path derives from dict insertion).
        self._first_order: List[int] = []
        self._answered: set = set()

    @property
    def arena(self) -> StateArena:
        return self._arena

    def __len__(self) -> int:
        return self._count

    def append(self, answer: Answer) -> None:
        """Record one answer (the task must be registered)."""
        global_row = self._arena.global_row(answer.task_id)
        if self._count == self._task_rows.shape[0]:
            for name in ("_task_rows", "_worker_rows", "_choices"):
                old = getattr(self, name)
                grown = np.zeros(2 * old.shape[0], dtype=np.int64)
                grown[: self._count] = old
                setattr(self, name, grown)
        worker_row = self._worker_row.get(answer.worker_id)
        if worker_row is None:
            worker_row = len(self._worker_ids)
            self._worker_row[answer.worker_id] = worker_row
            self._worker_ids.append(answer.worker_id)
        idx = self._count
        self._task_rows[idx] = global_row
        self._worker_rows[idx] = worker_row
        self._choices[idx] = answer.choice - 1
        self._count += 1
        if global_row not in self._answered:
            self._answered.add(global_row)
            self._first_order.append(global_row)

    def extend_restored(
        self,
        task_rows: np.ndarray,
        worker_ids: Sequence[str],
        choices: np.ndarray,
    ) -> None:
        """Bulk-append answers in one block write (resume fast path).

        The caller supplies the answers' arena global rows directly
        (the journal persisted them) instead of resolving each task id,
        and the growing arrays are written as slices. Must receive the
        answers in their original arrival order — worker rows and the
        first-answer task order are derived from it.

        Args:
            task_rows: (n,) arena global rows, arrival order.
            worker_ids: per-answer worker ids, aligned.
            choices: (n,) 1-based answered choices, aligned.
        """
        n = len(worker_ids)
        if n == 0:
            return
        task_rows = np.asarray(task_rows, dtype=np.int64)
        needed = self._count + n
        capacity = self._task_rows.shape[0]
        if needed > capacity:
            while capacity < needed:
                capacity *= 2
            for name in ("_task_rows", "_worker_rows", "_choices"):
                old = getattr(self, name)
                grown = np.zeros(capacity, dtype=np.int64)
                grown[: self._count] = old[: self._count]
                setattr(self, name, grown)
        worker_rows = np.empty(n, dtype=np.int64)
        lookup = self._worker_row
        for idx, worker_id in enumerate(worker_ids):
            row = lookup.get(worker_id)
            if row is None:
                row = len(self._worker_ids)
                lookup[worker_id] = row
                self._worker_ids.append(worker_id)
            worker_rows[idx] = row
        block = slice(self._count, needed)
        self._task_rows[block] = task_rows
        self._worker_rows[block] = worker_rows
        self._choices[block] = np.asarray(choices, dtype=np.int64) - 1
        self._count = needed
        unique_rows, first_at = np.unique(task_rows, return_index=True)
        for row in unique_rows[np.argsort(first_at)]:
            global_row = int(row)
            if global_row not in self._answered:
                self._answered.add(global_row)
                self._first_order.append(global_row)

    def export_state(self) -> AnswerLogState:
        """Deep-copy the index columns (the snapshot payload).

        The copies are stable against further appends, so the snapshot
        writer can serialise them outside the arena lock.
        """
        return AnswerLogState(
            task_rows=self._task_rows[: self._count].copy(),
            worker_rows=self._worker_rows[: self._count].copy(),
            choices=self._choices[: self._count].copy(),
            worker_ids=list(self._worker_ids),
        )

    def install_restored(self, state: AnswerLogState) -> None:
        """Install snapshot-carried columns into an empty log.

        The index-carrying resume path: the columns land as one block
        write and the worker-row table comes pre-assigned, so nothing
        is per-answer Python — only the vectorised first-answer-order
        derivation (``np.unique``) scales with the answer count.
        Produces exactly the state :meth:`extend_restored` would when
        fed the same answers in arrival order.

        Raises:
            ValidationError: if the log already holds answers, or the
                columns are inconsistent with each other.
        """
        if self._count:
            raise ValidationError(
                "install_restored needs an empty answer log"
            )
        task_rows = np.asarray(state.task_rows, dtype=np.int64)
        worker_rows = np.asarray(state.worker_rows, dtype=np.int64)
        choices = np.asarray(state.choices, dtype=np.int64)
        n = task_rows.shape[0]
        if worker_rows.shape[0] != n or choices.shape[0] != n:
            raise ValidationError(
                "answer-log columns disagree on the answer count"
            )
        if n and (
            int(worker_rows.min()) < 0
            or int(worker_rows.max()) >= len(state.worker_ids)
        ):
            raise ValidationError(
                "answer-log worker rows fall outside the worker table"
            )
        capacity = self._task_rows.shape[0]
        while capacity < n:
            capacity *= 2
        for name, column in (
            ("_task_rows", task_rows),
            ("_worker_rows", worker_rows),
            ("_choices", choices),
        ):
            buffer = np.zeros(capacity, dtype=np.int64)
            buffer[:n] = column
            setattr(self, name, buffer)
        self._count = n
        self._worker_ids = list(state.worker_ids)
        self._worker_row = {
            worker_id: row
            for row, worker_id in enumerate(self._worker_ids)
        }
        unique_rows, first_at = np.unique(task_rows, return_index=True)
        order = np.argsort(first_at)
        self._first_order = [int(r) for r in unique_rows[order]]
        self._answered = set(self._first_order)

    @property
    def task_rows(self) -> np.ndarray:
        """Per-answer arena global rows (arrival order, live view)."""
        return self._task_rows[: self._count]

    @property
    def worker_rows(self) -> np.ndarray:
        """Per-answer worker rows (arrival order, live view)."""
        return self._worker_rows[: self._count]

    @property
    def choices(self) -> np.ndarray:
        """Per-answer 0-based choices (arrival order, live view)."""
        return self._choices[: self._count]

    @property
    def worker_ids(self) -> List[str]:
        """Worker ids by row (first-submission order)."""
        return list(self._worker_ids)

    def answered_rows(self) -> np.ndarray:
        """Global rows of answered tasks, first-answer order."""
        return np.asarray(self._first_order, dtype=np.int64)
