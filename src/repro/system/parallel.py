"""Multi-process serving pool over a shared-memory arena.

The serving plane's scale-out layer: N forked worker processes, each
holding its own :class:`repro.core.serving.AssignmentIndex` attached to
the owner's :class:`repro.core.shared_arena.SharedStateArena`, serve
assignment selections concurrently. The division of labour follows the
plane split the single-process engine already enforces:

- **Owner (this process)** keeps every id-keyed structure — task and
  worker registries, answer history, quality store — and performs *all*
  arena writes. It translates an arrival into the select-level request
  the index understands (quality vector, take, excluded/eligible *rows*,
  candidate count), round-robins requests across workers, and maps the
  returned rows back to task ids.
- **Workers** hold no ids at all: they compute Eq. 8 benefits over the
  shared buffers and maintain their private benefit columns (optionally
  placed in parent-owned shared-memory slots — see
  :class:`repro.core.serving.SharedMemoryColumnAllocator`). Each
  worker's index is exact, so any worker serves any arrival and the
  pick is **bit-identical** to the single-process oracle at every
  worker count.

**Coherence = epochs + quiesce.** Workers inherit the arena's per-row
write epochs through shared memory; on each request a worker first
follows structural growth (:meth:`SharedStateArena.refresh_attachment`,
one shared load when nothing grew) and then lets its index repair
exactly the rows whose epoch advanced past its cached stamps — the
same invalidation protocol the in-process index uses, now across
address spaces. Epochs order *values*, not bytes, so the owner never
mutates the arena while a request might be reading it. The pool runs a
three-state machine:

    SERVING ──owner calls write_section()──► QUIESCING
    QUIESCING ──every worker acks the barrier──► WRITING
    WRITING ──owner's write block exits──► SERVING

``QUIESCING`` drains: a barrier token is queued behind any in-flight
requests on every worker's request queue, and the owner waits for all
acks — once they arrive, every worker is parked in a queue read, with
no arena access in flight. The owner's public API is synchronous
(requests are dispatched and collected inside one call), so the barrier
is cheap: one token round-trip per worker, no request can straddle it.

**Failure model.** A worker that dies (injected ``CrashPoint`` at
``parallel.worker.serve``, OOM-kill) surfaces as
:class:`repro.errors.ServingPoolError` on the owner; the assignment
path catches it, detaches the pool, and keeps serving single-process —
graceful degradation, identical picks, reduced throughput. Workers
never create shared-memory segments (arenas and column slots are
parent-created pre-fork), so a killed worker cannot orphan one; a
killed owner is mopped up by the stdlib resource tracker (see
:mod:`repro.core.shared_arena`).
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.serving import (
    DEFAULT_BUCKET_GRANULARITY,
    DEFAULT_FRONTIER_SIZE,
    DEFAULT_MAX_BUCKETS,
    AssignmentIndex,
    SharedMemoryColumnAllocator,
)
from repro.core.shared_arena import SharedStateArena
from repro.errors import ServingPoolError, ValidationError

#: Column-allocator slot capacity in rows; columns over pools larger
#: than this fall back to worker-heap arrays (still correct, still
#: private — just not in parent-owned memory).
DEFAULT_COLUMN_SLOT_ROWS = 1 << 17

#: Seconds between liveness checks while waiting on worker results.
_POLL_INTERVAL = 0.25

#: One select-level request: (quality, take, excluded_rows,
#: eligible_rows, available) — exactly AssignmentIndex.select's
#: signature, rows not ids.
SelectRequest = Tuple[
    np.ndarray, int, Set[int], Optional[Set[int]], int
]


def _serving_worker(
    arena: SharedStateArena,
    worker_index: int,
    requests,
    results,
    allocator: Optional[SharedMemoryColumnAllocator],
    bucket_granularity: float,
    frontier_size: int,
    max_buckets: int,
) -> None:
    """Worker loop: attach, serve selects, ack barriers, die loudly.

    An injected crash (``parallel.worker.serve``) — or any other
    unexpected error — kills the process like a real fault would; the
    owner sees a dead worker, not an exception message. Per-request
    validation errors do not exist at this layer: the owner validated
    the request before translating it to rows.
    """
    from repro.platform import faults

    arena.become_worker()
    index = AssignmentIndex(
        arena,
        bucket_granularity=bucket_granularity,
        frontier_size=frontier_size,
        max_buckets=max_buckets,
        allocator=allocator,
    )
    try:
        while True:
            message = requests.get()
            if message is None:
                return
            kind = message[0]
            if kind == "barrier":
                results.put(
                    ("ack", message[1], worker_index, index.stats())
                )
                continue
            _, request_id, quality, take, excluded, eligible, available = (
                message
            )
            faults.fire("parallel.worker.serve")
            arena.refresh_attachment()
            rows = index.select(
                quality, take, excluded, eligible, available
            )
            results.put(("rows", request_id, worker_index, rows))
    except BaseException:
        # Dead pipe-wise, not just exception-wise: the parent's
        # liveness probe is the failure signal, matching a real kill.
        os._exit(1)


class ServingPool:
    """N forked serving workers over one shared arena.

    Args:
        arena: the owner's shared arena; workers inherit it via fork.
        num_workers: worker process count (>= 1).
        bucket_granularity / frontier_size / max_buckets: per-worker
            :class:`~repro.core.serving.AssignmentIndex` tuning, same
            defaults as single-process serving.
        shared_columns: place worker benefit columns in parent-owned
            shared-memory slots (default). Off, columns live on worker
            heaps.
        column_slot_rows: row capacity per column slot.

    Raises:
        ValidationError: bad worker count, or a platform without the
            ``fork`` start method (the pool inherits arena mappings and
            index state through fork; there is no spawn path).
    """

    def __init__(
        self,
        arena: SharedStateArena,
        num_workers: int,
        *,
        bucket_granularity: float = DEFAULT_BUCKET_GRANULARITY,
        frontier_size: int = DEFAULT_FRONTIER_SIZE,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
        shared_columns: bool = True,
        column_slot_rows: int = DEFAULT_COLUMN_SLOT_ROWS,
    ):
        if num_workers < 1:
            raise ValidationError("num_workers must be >= 1")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ValidationError(
                "ServingPool requires the fork start method"
            )
        self._arena = arena
        self._closed = False
        self._next_id = 0
        self._round_robin = 0
        self._state = "serving"
        # Workers must never write shared buffers, and the lazy entropy
        # refresh is a write: hand the workers a fully refreshed arena
        # so their refresh scans find nothing dirty.
        arena.refresh_entropies()
        context = multiprocessing.get_context("fork")
        self._requests = [
            context.SimpleQueue() for _ in range(num_workers)
        ]
        self._results = context.Queue()
        self._allocators: List[Optional[SharedMemoryColumnAllocator]] = []
        for _ in range(num_workers):
            self._allocators.append(
                SharedMemoryColumnAllocator(
                    column_slot_rows, max_buckets
                )
                if shared_columns
                else None
            )
        self._processes = []
        for worker_index in range(num_workers):
            process = context.Process(
                target=_serving_worker,
                args=(
                    arena,
                    worker_index,
                    self._requests[worker_index],
                    self._results,
                    self._allocators[worker_index],
                    bucket_granularity,
                    frontier_size,
                    max_buckets,
                ),
                daemon=True,
            )
            process.start()
            self._processes.append(process)

    @property
    def arena(self) -> SharedStateArena:
        """The shared arena the pool serves from."""
        return self._arena

    @property
    def num_workers(self) -> int:
        """Live worker process count at construction."""
        return len(self._processes)

    @property
    def state(self) -> str:
        """The coherence state machine: serving / quiescing / writing."""
        return self._state

    # -- serving -----------------------------------------------------------

    def select(
        self,
        quality: np.ndarray,
        take: int,
        excluded_rows: Set[int],
        eligible_rows: Optional[Set[int]],
        available: int,
    ) -> List[int]:
        """One select, served by the next worker in round-robin order."""
        return self.select_many(
            [(quality, take, excluded_rows, eligible_rows, available)]
        )[0]

    def select_many(
        self, requests: Sequence[SelectRequest]
    ) -> List[List[int]]:
        """Fan a batch of selects across the workers, order-preserving.

        Requests are dispatched round-robin and collected by request
        id, so the result list aligns with the input regardless of
        completion order. Every pick is bit-identical to the
        single-process index — which worker served it cannot matter.

        Raises:
            ServingPoolError: the pool is closed, mid-write, or a
                worker died while holding a request.
        """
        self._ensure_serving()
        if not requests:
            return []
        pending: Dict[int, int] = {}
        for position, request in enumerate(requests):
            request_id = self._next_id
            self._next_id += 1
            worker = self._round_robin
            self._round_robin = (
                self._round_robin + 1
            ) % len(self._processes)
            self._requests[worker].put(("select", request_id) + tuple(request))
            pending[request_id] = position
        out: List[Optional[List[int]]] = [None] * len(requests)
        while pending:
            message = self._collect()
            if message[0] != "rows":  # pragma: no cover - protocol guard
                raise ServingPoolError(
                    f"unexpected worker message {message[0]!r}"
                )
            _, request_id, _, rows = message
            out[pending.pop(request_id)] = rows
        return out  # type: ignore[return-value]

    def _collect(self):
        """One result-queue read with liveness checks while waiting."""
        while True:
            try:
                return self._results.get(timeout=_POLL_INTERVAL)
            except queue_mod.Empty:
                self._check_alive()

    def _check_alive(self) -> None:
        dead = [
            index
            for index, process in enumerate(self._processes)
            if not process.is_alive()
        ]
        if dead:
            raise ServingPoolError(
                f"serving worker(s) {dead} died; pool is broken "
                "(degrade to single-process serving)"
            )

    def _ensure_serving(self) -> None:
        if self._closed:
            raise ServingPoolError("serving pool is closed")
        if self._state != "serving":
            raise ServingPoolError(
                f"serving pool is {self._state}; selects are only legal "
                "in the serving state"
            )

    # -- coherence barrier -------------------------------------------------

    def quiesce(self) -> List[Dict[str, int]]:
        """Drain every worker and park them at their request queues.

        Queues one barrier token per worker behind any in-flight work
        and waits for all acks. On return no worker is touching the
        arena, and none will until the next request is dispatched.

        Returns:
            Each worker's index stats (the ack payload) — aggregate
            serving telemetry for benches and tests.

        Raises:
            ServingPoolError: a worker died before acking.
        """
        self._ensure_serving()
        self._state = "quiescing"
        try:
            for worker, request_queue in enumerate(self._requests):
                request_queue.put(("barrier", worker))
            stats: List[Optional[Dict[str, int]]] = (
                [None] * len(self._processes)
            )
            outstanding = len(self._processes)
            while outstanding:
                message = self._collect()
                if message[0] != "ack":  # pragma: no cover - guard
                    raise ServingPoolError(
                        f"unexpected worker message {message[0]!r}"
                    )
                _, _, worker_index, worker_stats = message
                stats[worker_index] = worker_stats
                outstanding -= 1
            return stats  # type: ignore[return-value]
        finally:
            if self._state == "quiescing":
                self._state = "serving"

    @contextmanager
    def write_section(self) -> Iterator[None]:
        """The writer-side barrier: quiesce, let the owner write, resume.

        Everything that mutates the arena — incremental submits,
        ``grow`` blocks, full-TI resyncs, snapshot overlays — runs
        inside this context. On exit the pool refreshes the arena's
        entropies on the owner's side before reopening serving, so
        workers never find dirty rows to recompute — worker indices
        only ever *read* shared buffers.
        """
        self.quiesce()
        self._state = "writing"
        try:
            yield
        finally:
            self._arena.refresh_entropies()
            self._state = "serving"

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop the workers and unlink the column segments. Idempotent.

        The arena is *not* closed — it belongs to the system, which
        keeps serving single-process after the pool is gone.
        """
        if self._closed:
            return
        self._closed = True
        for request_queue in self._requests:
            try:
                request_queue.put(None)
            except (OSError, ValueError):  # pragma: no cover
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - hang guard
                process.terminate()
                process.join(timeout=5.0)
        for allocator in self._allocators:
            if allocator is not None:
                allocator.close()
        self._results.close()

    def __enter__(self) -> "ServingPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
