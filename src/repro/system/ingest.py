"""The staged batch ingest pipeline — the system's offline plane.

DOCS has two planes with opposite shapes. The *serving* plane
(assign/submit) is latency-bound and runs per request on the
:class:`repro.core.arena.StateArena` buffers. The *ingest* plane —
everything between "a requester hands over tasks" and "the tasks are
assignable" — is throughput-bound, and before this pipeline it ran one
Python object at a time: link task 1, DP task 1, insert task 1, link
task 2, ...

:class:`IngestPipeline` restructures that path into four batch-first
stages, each one pass over the whole batch:

1. **Link** — :meth:`repro.linking.EntityLinker.link_batch` resolves
   mentions for every task text against a shared candidate cache
   (candidate sets, description term bags, stacked indicator matrices
   are computed once per surface form, not once per occurrence).
2. **Estimate** — the vectorised DVE
   (:func:`repro.core.dve.domain_vectors_batch`) computes all domain
   vectors grouped by entity count as array ops; no per-(num, den)
   dictionary DP.
3. **Store** — one bulk ``add_tasks`` round-trip into the system
   database (``executemany`` on the SQLite backend).
4. **Register** — one :meth:`repro.core.arena.StateArena.grow` block
   write registers every task's arena row; assignment masks and
   incremental-TI histories pick the new rows up automatically.

The same pipeline object serves both ``DocsSystem.prepare()`` (the
initial offline build) and ``DocsSystem.add_tasks()`` (live growth
mid-campaign), so the streaming-task scenario is not a second code
path. The pipeline boundary is also where batch integrity is enforced:
duplicate task ids — within the batch or against already-ingested
tasks — are rejected up front with the offending id named, before any
stage runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.dve import DomainVectorEstimator
from repro.core.incremental import IncrementalTruthInference
from repro.core.types import Task
from repro.errors import ValidationError
from repro.linking import EntityLinker


@dataclass(frozen=True)
class IngestReport:
    """What one :meth:`IngestPipeline.ingest` call did, per stage.

    Attributes:
        tasks: tasks ingested.
        linked: tasks that went through linking + DVE (tasks arriving
            with a precomputed ``domain_vector`` skip both).
        entities: total entity mentions resolved in stage 1.
        link_seconds: wall time of stage 1 (batch linking).
        estimate_seconds: wall time of stage 2 (vectorised DVE).
        store_seconds: wall time of stage 3 (bulk database insert).
        register_seconds: wall time of stage 4 (arena block write).
    """

    tasks: int
    linked: int
    entities: int
    link_seconds: float
    estimate_seconds: float
    store_seconds: float
    register_seconds: float

    @property
    def total_seconds(self) -> float:
        """End-to-end pipeline wall time."""
        return (
            self.link_seconds
            + self.estimate_seconds
            + self.store_seconds
            + self.register_seconds
        )


class IngestPipeline:
    """Batch task ingestion: link -> estimate -> store -> register.

    Args:
        database: the system database (any object with ``add_tasks``;
            in-memory or SQLite backend).
        incremental: the serving plane's incremental TI — its arena
            receives the new rows.
        linker: the entity linker (its candidate cache is shared across
            every batch this pipeline ingests).
        estimator: optional DVE estimator; built over ``linker`` and the
            arena's taxonomy size when omitted.
    """

    def __init__(
        self,
        database,
        incremental: IncrementalTruthInference,
        linker: EntityLinker,
        estimator: Optional[DomainVectorEstimator] = None,
    ):
        self._db = database
        self._incremental = incremental
        self._linker = linker
        self._estimator = estimator or DomainVectorEstimator(
            linker, incremental.arena.num_domains
        )

    @property
    def estimator(self) -> DomainVectorEstimator:
        """The DVE stage's estimator."""
        return self._estimator

    @property
    def linker(self) -> EntityLinker:
        """The linking stage's entity linker."""
        return self._linker

    def _validate_batch(self, tasks: Sequence[Task]) -> None:
        seen: set = set()
        arena = self._incremental.arena
        for task in tasks:
            if task.task_id in seen:
                raise ValidationError(
                    f"duplicate task id {task.task_id} in ingest batch"
                )
            if task.task_id in arena:
                raise ValidationError(
                    f"task id {task.task_id} already ingested"
                )
            seen.add(task.task_id)

    def ingest(self, tasks: Sequence[Task]) -> IngestReport:
        """Run the four stages over one task batch.

        Tasks gain their ``domain_vector`` in place (stage 2) unless
        they already carry one. The batch is all-or-nothing: validation
        failures raise before any stage touches a store.

        Returns:
            An :class:`IngestReport` with per-stage wall times.

        Raises:
            ValidationError: on duplicate task ids (within the batch or
                against previously ingested tasks).
        """
        tasks = list(tasks)
        self._validate_batch(tasks)
        if not tasks:
            return IngestReport(0, 0, 0, 0.0, 0.0, 0.0, 0.0)

        # Stage 1: batch entity linking (only tasks without a vector).
        pending = [t for t in tasks if t.domain_vector is None]
        tic = time.perf_counter()
        entity_lists = self._linker.link_batch([t.text for t in pending])
        link_seconds = time.perf_counter() - tic

        # Stage 2: vectorised DVE over all linked tasks at once.
        tic = time.perf_counter()
        if pending:
            R = self._estimator.estimate_from_entities_batch(entity_lists)
            for task, r in zip(pending, R):
                task.domain_vector = r
        estimate_seconds = time.perf_counter() - tic

        # Stage 3: one bulk round-trip into the task catalogue.
        tic = time.perf_counter()
        self._db.add_tasks(tasks)
        store_seconds = time.perf_counter() - tic

        # Stage 4: one arena block write; serving state picks the new
        # rows up on the next arrival.
        tic = time.perf_counter()
        self._incremental.register_tasks(tasks)
        register_seconds = time.perf_counter() - tic

        return IngestReport(
            tasks=len(tasks),
            linked=len(pending),
            entities=int(np.sum([len(e) for e in entity_lists])),
            link_seconds=link_seconds,
            estimate_seconds=estimate_seconds,
            store_seconds=store_seconds,
            register_seconds=register_seconds,
        )
