"""The staged batch ingest pipeline — the system's offline plane.

DOCS has two planes with opposite shapes. The *serving* plane
(assign/submit) is latency-bound and runs per request on the
:class:`repro.core.arena.StateArena` buffers. The *ingest* plane —
everything between "a requester hands over tasks" and "the tasks are
assignable" — is throughput-bound, and before this pipeline it ran one
Python object at a time: link task 1, DP task 1, insert task 1, link
task 2, ...

:class:`IngestPipeline` restructures that path into four batch-first
stages, each one pass over the whole batch:

1. **Link** — :meth:`repro.linking.EntityLinker.link_batch` resolves
   mentions for every task text against a shared candidate cache
   (candidate sets, description term bags, stacked indicator matrices
   are computed once per surface form, not once per occurrence).
2. **Estimate** — the vectorised DVE
   (:func:`repro.core.dve.domain_vectors_batch`) computes all domain
   vectors grouped by entity count as array ops; no per-(num, den)
   dictionary DP.
3. **Store** — one bulk ``add_tasks`` round-trip into the system
   database (``executemany`` on the SQLite backend).
4. **Register** — one :meth:`repro.core.arena.StateArena.grow` block
   write registers every task's arena row; assignment masks and
   incremental-TI histories pick the new rows up automatically.

The same pipeline object serves both ``DocsSystem.prepare()`` (the
initial offline build) and ``DocsSystem.add_tasks()`` (live growth
mid-campaign), so the streaming-task scenario is not a second code
path. The pipeline boundary is also where batch integrity is enforced:
duplicate task ids — within the batch or against already-ingested
tasks — are rejected up front with the offending id named, before any
stage runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.dve import DomainVectorEstimator
from repro.core.incremental import IncrementalTruthInference
from repro.core.types import Task
from repro.errors import ValidationError
from repro.linking import EntityLinker


@dataclass(frozen=True)
class IngestReport:
    """What one :meth:`IngestPipeline.ingest` call did, per stage.

    Attributes:
        tasks: tasks ingested.
        linked: tasks that went through linking + DVE (tasks arriving
            with a precomputed ``domain_vector`` skip both).
        entities: total entity mentions resolved in stage 1.
        link_seconds: wall time of stage 1 (batch linking).
        estimate_seconds: wall time of stage 2 (vectorised DVE).
        store_seconds: wall time of stage 3 (bulk database insert).
        register_seconds: wall time of stage 4 (arena block write).
    """

    tasks: int
    linked: int
    entities: int
    link_seconds: float
    estimate_seconds: float
    store_seconds: float
    register_seconds: float

    @property
    def total_seconds(self) -> float:
        """End-to-end pipeline wall time."""
        return (
            self.link_seconds
            + self.estimate_seconds
            + self.store_seconds
            + self.register_seconds
        )


class IngestPipeline:
    """Batch task ingestion: link -> estimate -> store -> register.

    Args:
        database: the system database (any object with ``add_tasks``;
            in-memory or SQLite backend).
        incremental: the serving plane's incremental TI — its arena
            receives the new rows.
        linker: the entity linker (its candidate cache is shared across
            every batch this pipeline ingests). May be ``None`` for a
            replay-only pipeline (``DocsSystem.resume`` without a KB),
            in which case every ingested task must arrive with a
            precomputed ``domain_vector``.
        estimator: optional DVE estimator; built over ``linker`` and the
            arena's taxonomy size when omitted (and a linker exists).
        link_workers: fork this many processes for stage 1
            (:meth:`repro.linking.EntityLinker.link_batch` chunks the
            batch, children inherit the candidate cache copy-on-write
            and ship back what they computed). 0/1 links in-process.
    """

    def __init__(
        self,
        database,
        incremental: IncrementalTruthInference,
        linker: Optional[EntityLinker] = None,
        estimator: Optional[DomainVectorEstimator] = None,
        link_workers: int = 0,
    ):
        self._db = database
        self._incremental = incremental
        self._linker = linker
        self._estimator = estimator
        self._link_workers = link_workers
        if estimator is None and linker is not None:
            self._estimator = DomainVectorEstimator(
                linker, incremental.arena.num_domains
            )

    @property
    def estimator(self) -> Optional[DomainVectorEstimator]:
        """The DVE stage's estimator (``None`` on a linker-less pipeline)."""
        return self._estimator

    @property
    def linker(self) -> Optional[EntityLinker]:
        """The linking stage's entity linker (``None`` if replay-only)."""
        return self._linker

    def _validate_batch(self, tasks: Sequence[Task]) -> None:
        seen: set = set()
        arena = self._incremental.arena
        m = arena.num_domains
        for task in tasks:
            if task.task_id in seen:
                raise ValidationError(
                    f"duplicate task id {task.task_id} in ingest batch; "
                    "deduplicate the batch before calling prepare() or "
                    "add_tasks()"
                )
            if task.task_id in arena:
                raise ValidationError(
                    f"task id {task.task_id} already ingested; "
                    "add_tasks() accepts only new tasks — drop it from "
                    "the batch or assign a fresh id"
                )
            # Reject malformed precomputed vectors here, before any
            # stage runs: stage 4 (arena registration) must not be able
            # to fail after stage 3 has durably stored the batch.
            if task.domain_vector is not None and (
                task.domain_vector.shape != (m,)
            ):
                raise ValidationError(
                    f"task {task.task_id}: domain_vector must have "
                    f"shape ({m},), got {task.domain_vector.shape}; "
                    "fix the vector or omit it to let DVE estimate one"
                )
            seen.add(task.task_id)

    def ingest(self, tasks: Sequence[Task], store: bool = True) -> IngestReport:
        """Run the four stages over one task batch.

        Tasks gain their ``domain_vector`` in place (stage 2) unless
        they already carry one. The batch is all-or-nothing: validation
        failures raise before any stage touches a store.

        Args:
            tasks: the batch to ingest.
            store: run stage 3 (the bulk database insert). Resume passes
                ``False`` to re-register already-persisted tasks
                (replaying through stages 1-2-4 only).

        Returns:
            An :class:`IngestReport` with per-stage wall times.

        Raises:
            ValidationError: on duplicate task ids (within the batch or
                against previously ingested tasks), or if tasks need
                linking but the pipeline has no entity linker.
        """
        tasks = list(tasks)
        self._validate_batch(tasks)
        if not tasks:
            return IngestReport(0, 0, 0, 0.0, 0.0, 0.0, 0.0)

        # Stage 1: batch entity linking (only tasks without a vector).
        pending = [t for t in tasks if t.domain_vector is None]
        if pending and self._linker is None:
            raise ValidationError(
                f"{len(pending)} task(s) need entity linking but this "
                "pipeline has no linker (the system was resumed without "
                "a knowledge base); pass kb= to DocsSystem.resume(), or "
                "supply tasks with a precomputed domain_vector"
            )
        tic = time.perf_counter()
        entity_lists = (
            self._linker.link_batch(
                [t.text for t in pending], workers=self._link_workers
            )
            if pending
            else []
        )
        link_seconds = time.perf_counter() - tic

        # Stage 2: vectorised DVE over all linked tasks at once.
        tic = time.perf_counter()
        if pending:
            R = self._estimator.estimate_from_entities_batch(entity_lists)
            for task, r in zip(pending, R):
                task.domain_vector = r
        estimate_seconds = time.perf_counter() - tic

        # Stage 3: one bulk round-trip into the task catalogue.
        tic = time.perf_counter()
        if store:
            self._db.add_tasks(tasks)
        store_seconds = time.perf_counter() - tic

        # Stage 4: one arena block write; serving state picks the new
        # rows up on the next arrival. A registration failure must not
        # strand the batch in the durable catalogue (an orphan task
        # there would shift arena rows on resume and break replay), so
        # the stage-3 insert is rolled back before re-raising.
        tic = time.perf_counter()
        try:
            self._incremental.register_tasks(tasks)
        except Exception:
            if store:
                self._db.remove_tasks([t.task_id for t in tasks])
            raise
        register_seconds = time.perf_counter() - tic

        return IngestReport(
            tasks=len(tasks),
            linked=len(pending),
            entities=int(np.sum([len(e) for e in entity_lists])),
            link_seconds=link_seconds,
            estimate_seconds=estimate_seconds,
            store_seconds=store_seconds,
            register_seconds=register_seconds,
        )
