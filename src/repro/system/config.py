"""Configuration of the assembled DOCS system."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class DocsConfig:
    """Knobs of :class:`repro.system.DocsSystem`.

    Defaults follow the paper: HITs of k = 20 tasks, 20 golden tasks,
    full TI re-run every z = 100 submissions, top-20 linking candidates.

    Attributes:
        hit_size: tasks per HIT (k).
        golden_count: golden tasks selected after DVE (n').
        rerun_interval: run the full iterative TI every this many
            submissions (z); the incremental updater covers the gaps.
        top_c: linking candidates kept per entity in DVE.
        default_quality: cold-start per-domain worker quality.
        ti_max_iterations: iteration cap of the full TI.
        journal_batch_size: with sqlite storage, flush the write-behind
            answer journal every this many campaign events (a crash can
            lose at most one unflushed batch; ``checkpoint()`` flushes
            eagerly). Ignored with in-memory storage.
        snapshot_every_batches: with sqlite storage, write a compacted
            hot-state snapshot every this many flushed journal batches
            (``0`` disables the automatic trigger; ``checkpoint()`` and
            ``close()`` always snapshot). Snapshots turn resume's
            O(campaign) journal replay into an O(n) load plus a short
            tail replay. Ignored with in-memory storage.
        truncate_journal: with sqlite storage, archive journal rows at
            or below each snapshot's watermark after the snapshot
            commits (``AnswerJournal.truncate_through``): pre-watermark
            answers move to a compact archive table, so resume-time CRC
            validation and replay walk only the tail. Once truncated,
            a campaign can only be resumed through a snapshot — the
            full-replay fallback needs the journal rows the truncation
            removed — so this trades the fallback for O(tail) resume.
        snapshot_carry_index: with sqlite storage, serialise the
            ``AnswerLog``'s per-answer index columns inside every
            snapshot (schema v2), so ``resume()`` installs them
            directly instead of re-reading the archived answer prefix
            — O(snapshot + tail) regardless of campaign age
            (``resume_info["restore_path"] == "index-carry"``).
            Disable to write v1-shaped snapshots readable by older
            builds; resume then falls back to the archive scan.
        busy_timeout_ms: with sqlite storage, ``PRAGMA busy_timeout``
            (and the connection-open timeout) in milliseconds — SQLite
            spin-waits this long on a held write lock below the
            statement before surfacing ``database is locked``. ``0``
            surfaces contention immediately (the configuration the
            retry tests use to exercise the Python-level backoff).
        commit_retry_attempts: total tries (including the first) the
            journal-flush / snapshot / shared-store-export retry policy
            makes against a transient ``database is locked`` before the
            error propagates (and, on serving paths, the campaign drops
            to degraded mode).
        commit_retry_base_delay: first backoff delay in seconds of the
            commit retry policy (doubles per attempt, jittered).
        commit_retry_max_delay: backoff ceiling in seconds of the
            commit retry policy.
        serve_index: maintain an
            :class:`repro.core.serving.AssignmentIndex` over the arena
            and serve ``assign`` through it (cached per-quality benefit
            columns repaired on dirty rows only; picks stay
            bit-identical to the brute-force path). Disable to always
            evaluate the full pool per arrival.
        serve_bucket_granularity: quality quantisation step for the
            index's bucket keys (bounds how many distinct cached
            columns stay live; reuse still requires an exact quality
            match).
        serve_frontier_size: rows kept in each cached column's lazy
            top-k frontier; must comfortably exceed ``hit_size``.
        serve_max_buckets: cached benefit columns kept alive (LRU
            eviction beyond it).
        workers: multi-process scale-out degree. ``0`` (default) keeps
            everything single-process. ``>= 1`` moves the hot state
            into a :class:`repro.core.shared_arena.SharedStateArena`
            and serves arrivals from a
            :class:`repro.system.parallel.ServingPool` of this many
            worker processes (picks bit-identical at every count);
            ``>= 2`` additionally fans the every-z full-TI rerun across
            this many shard processes and stage-1 ingest linking across
            this many link workers. Requires the ``fork`` start method
            (Linux/macOS); needs ``serve_index``.
        serve_resync_precision: full-TI resyncs skip re-stamping arena
            rows whose ``(M, S)`` moved by at most this much (so the
            serving index skips repairing them). ``0.0`` skips only
            bit-unchanged rows — exact; positive values trade bounded
            benefit staleness for fewer post-rerun repairs.
        engine: registry name of the inference engine the campaign
            shell hosts (see :mod:`repro.engines`). The default
            ``"docs"`` is the production serving core; any other
            registered engine (baselines, ``"batched-em"``, the
            brute-force ``"oracle"``) runs through the same campaign
            surface — engines without the hot-state capability run
            memory-only, with raw answers journaled for replay-based
            resume under sqlite storage.
        seed: seed for any internal randomness.
    """

    hit_size: int = 20
    golden_count: int = 20
    rerun_interval: int = 100
    top_c: int = 20
    default_quality: float = 0.7
    ti_max_iterations: int = 20
    journal_batch_size: int = 256
    snapshot_every_batches: int = 16
    truncate_journal: bool = False
    snapshot_carry_index: bool = True
    busy_timeout_ms: int = 5000
    commit_retry_attempts: int = 5
    commit_retry_base_delay: float = 0.05
    commit_retry_max_delay: float = 1.0
    serve_index: bool = True
    serve_bucket_granularity: float = 0.05
    serve_frontier_size: int = 64
    serve_max_buckets: int = 16
    workers: int = 0
    serve_resync_precision: float = 0.0
    engine: str = "docs"
    seed: SeedLike = 0

    def validate(self) -> None:
        """Check every knob's range.

        Raises:
            ValidationError: naming the first out-of-range field.
        """
        if self.hit_size < 1:
            raise ValidationError("hit_size must be >= 1")
        if self.golden_count < 0:
            raise ValidationError("golden_count must be >= 0")
        if self.rerun_interval < 1:
            raise ValidationError("rerun_interval must be >= 1")
        if self.top_c < 1:
            raise ValidationError("top_c must be >= 1")
        if not 0.0 < self.default_quality < 1.0:
            raise ValidationError("default_quality must be in (0, 1)")
        if self.ti_max_iterations < 1:
            raise ValidationError("ti_max_iterations must be >= 1")
        if self.journal_batch_size < 1:
            raise ValidationError("journal_batch_size must be >= 1")
        if self.snapshot_every_batches < 0:
            raise ValidationError(
                "snapshot_every_batches must be >= 0 (0 disables the "
                "automatic trigger)"
            )
        if self.busy_timeout_ms < 0:
            raise ValidationError("busy_timeout_ms must be >= 0")
        if self.commit_retry_attempts < 1:
            raise ValidationError("commit_retry_attempts must be >= 1")
        if self.commit_retry_base_delay < 0:
            raise ValidationError(
                "commit_retry_base_delay must be >= 0"
            )
        if self.commit_retry_max_delay < self.commit_retry_base_delay:
            raise ValidationError(
                "commit_retry_max_delay must be >= commit_retry_base_delay"
            )
        if self.serve_bucket_granularity <= 0:
            raise ValidationError(
                "serve_bucket_granularity must be positive"
            )
        if self.serve_frontier_size < 1:
            raise ValidationError("serve_frontier_size must be >= 1")
        if self.serve_max_buckets < 1:
            raise ValidationError("serve_max_buckets must be >= 1")
        if self.workers < 0:
            raise ValidationError("workers must be >= 0")
        if self.workers and not self.serve_index:
            raise ValidationError(
                "workers requires serve_index (the pool's workers each "
                "hold an AssignmentIndex)"
            )
        if self.serve_resync_precision < 0:
            raise ValidationError(
                "serve_resync_precision must be >= 0"
            )
        if not self.engine or not isinstance(self.engine, str):
            raise ValidationError(
                "engine must be a non-empty registry name"
            )
